//! Snapshots, the interval policy, and the campaign-facing store.
//!
//! A [`Snapshot`] is a forkable point in a golden run: core state by
//! value, main memory as interned [`Page`]s, plus the checker state —
//! restoring one and stepping forward is bit-identical to having run from
//! cold boot (the contract of
//! [`argus_machine::SnapshotState`], enforced by this crate's property
//! tests).
//!
//! [`SnapshotBuilder`] implements the interval policy: the golden run
//! calls [`SnapshotBuilder::maybe_capture`] after every step and a
//! checkpoint is taken whenever at least `every` cycles have elapsed
//! since the previous one. [`SnapshotStore`] is the finished, read-only
//! result that campaign workers share: `run_injection` asks for the
//! nearest snapshot at or before its arm cycle and replays only the
//! residue.

use crate::page::{Page, PageStore, PAGE_WORDS};
use crate::workspace::Workspace;
use argus_core::{Argus, ArgusConfig, ArgusState};
use argus_machine::snapshot::{CoreState, Fnv64, SnapshotState};
use argus_machine::Machine;
use std::sync::Arc;

/// One forkable checkpoint of a golden run.
#[derive(Debug, Clone)]
pub struct Snapshot {
    cycle: u64,
    fingerprint: u64,
    acfg: ArgusConfig,
    core: CoreState,
    checker: ArgusState,
    pages: Vec<Arc<Page>>,
    mem_words: usize,
}

/// Combined machine + checker fingerprint: the identity a fork must match.
pub fn combined_fingerprint(m: &Machine, argus: &Argus) -> u64 {
    let mut h = Fnv64::new();
    h.mix(m.state_fingerprint());
    h.mix(argus.state_fingerprint());
    h.finish()
}

impl Snapshot {
    /// Captures the simulator at the current step boundary, interning
    /// memory pages in `pool`.
    pub fn capture(m: &Machine, argus: &Argus, pool: &mut PageStore) -> Self {
        let words = m.mem().memory().words();
        let tags = m.mem().memory().tags();
        Self {
            cycle: m.cycle(),
            fingerprint: combined_fingerprint(m, argus),
            acfg: argus.config(),
            core: m.capture_core(),
            checker: argus.capture_state(),
            pages: pool.intern_image(words, tags),
            mem_words: words.len(),
        }
    }

    /// Cycle stamp (step boundary the capture was taken at).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Combined machine + checker fingerprint at capture time.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Checker configuration at capture time.
    pub fn argus_config(&self) -> ArgusConfig {
        self.acfg
    }

    /// Core state at capture time.
    pub fn core(&self) -> &CoreState {
        &self.core
    }

    /// Checker state at capture time.
    pub fn checker(&self) -> &ArgusState {
        &self.checker
    }

    /// Total main-memory payload words the page list reassembles to.
    pub fn mem_words(&self) -> usize {
        self.mem_words
    }

    /// Number of page slots in this snapshot's page table (one per
    /// [`crate::page::PAGE_WORDS`]-word chunk of the memory image).
    pub fn page_slots(&self) -> usize {
        self.pages.len()
    }

    /// Reassembles the full memory image (standalone files, tests).
    pub fn materialize_memory(&self) -> (Vec<u32>, Vec<bool>) {
        let mut words = Vec::with_capacity(self.mem_words);
        let mut tags = Vec::with_capacity(self.mem_words);
        for p in &self.pages {
            words.extend_from_slice(&p.words);
            tags.extend_from_slice(&p.tags);
        }
        (words, tags)
    }

    /// Restores this checkpoint into an existing machine + checker pair
    /// (built with the same configurations), verifying the result against
    /// the capture-time fingerprint under `debug_assertions`.
    ///
    /// Callers on a verify-once path (the campaign engine's per-snapshot
    /// verified bitmap) should use [`Snapshot::restore_fresh`] /
    /// [`Snapshot::restore_into`], which skip the redundant digest.
    ///
    /// # Panics
    ///
    /// Panics if `m` or `argus` were built with a different configuration
    /// than the captured pair.
    pub fn restore(&self, m: &mut Machine, argus: &mut Argus) {
        self.restore_unverified(m, argus);
        debug_assert_eq!(
            combined_fingerprint(m, argus),
            self.fingerprint,
            "restored state does not match capture fingerprint"
        );
    }

    fn restore_unverified(&self, m: &mut Machine, argus: &mut Argus) {
        m.restore_core(&self.core);
        let mut base = 0usize;
        for p in &self.pages {
            m.mem_mut().memory_mut().restore_words(base, &p.words, &p.tags);
            base += p.words.len();
        }
        assert_eq!(base, self.mem_words, "page list does not cover memory");
        argus.restore_state(&self.checker);
    }

    /// Builds a fresh machine + checker pair and restores into it — the
    /// cold fork operation. Trusts the page list: callers that need
    /// integrity checking verify once via [`Snapshot::try_restore_fresh`]
    /// (or the campaign's verified bitmap) instead of digesting full state
    /// on every fork.
    pub fn restore_fresh(&self) -> (Machine, Argus) {
        let mut m = Machine::new(self.core.cfg);
        let mut argus = Argus::new(self.acfg);
        self.restore_unverified(&mut m, &mut argus);
        (m, argus)
    }

    /// Like [`Snapshot::restore_fresh`], but *verifies* the restored pair
    /// against the capture-time fingerprint instead of trusting the page
    /// list: a snapshot whose backing page was corrupted in memory (or a
    /// file whose contents were tampered past its own checks) comes back
    /// as `Err` rather than as a silently wrong machine.
    ///
    /// Full-state hashing is O(memory), so callers that fork the same
    /// snapshot many times should verify once and use
    /// [`Snapshot::restore_fresh`] afterwards (what the campaign engine
    /// does via its per-snapshot verified bitmap).
    pub fn try_restore_fresh(&self) -> Result<(Machine, Argus), String> {
        let mut m = Machine::new(self.core.cfg);
        let mut argus = Argus::new(self.acfg);
        self.restore_unverified(&mut m, &mut argus);
        let got = combined_fingerprint(&m, &argus);
        if got == self.fingerprint {
            Ok((m, argus))
        } else {
            Err(format!(
                "snapshot at cycle {} is corrupt: restored fingerprint {:#018x} != captured {:#018x}",
                self.cycle, got, self.fingerprint
            ))
        }
    }

    /// Delta-restores this checkpoint into a reusable [`Workspace`]:
    /// core + checker state are rewritten in full (they are small), but
    /// memory pages are rewritten only when dirtied since the workspace's
    /// last restore or differing (by interned-page identity) from the
    /// snapshot the workspace currently mirrors. The resident machine's
    /// allocation and predecode memo survive.
    ///
    /// Trusts the page list like [`Snapshot::restore_fresh`]; under
    /// `debug_assertions` the full capture fingerprint is re-checked, so
    /// every test build verifies every delta restore. Release callers
    /// verify once per snapshot via [`Snapshot::try_restore_into`].
    pub fn restore_into(&self, ws: &mut Workspace) {
        self.restore_into_delta(ws);
        #[cfg(debug_assertions)]
        {
            let (m, a) = ws.pair().expect("restore populated the workspace");
            assert_eq!(
                combined_fingerprint(m, a),
                self.fingerprint,
                "delta restore does not match capture fingerprint"
            );
        }
    }

    /// Like [`Snapshot::restore_into`], but *verifies* the restored pair
    /// against the capture-time fingerprint. On mismatch the delta
    /// bookkeeping is discarded and a full restore into a rebuilt pair is
    /// attempted once; if that still mismatches, the snapshot itself is
    /// corrupt and `Err` is returned (the workspace then holds the
    /// mismatched state — callers should fall back to cold boot).
    ///
    /// Returns whether the full-restore fallback was needed.
    pub fn try_restore_into(&self, ws: &mut Workspace) -> Result<bool, String> {
        self.restore_into_delta(ws);
        let (m, a) = ws.pair().expect("restore populated the workspace");
        if combined_fingerprint(m, a) == self.fingerprint {
            return Ok(false);
        }
        ws.invalidate();
        ws.pair = None;
        self.restore_into_delta(ws);
        let (m, a) = ws.pair().expect("restore populated the workspace");
        let got = combined_fingerprint(m, a);
        if got == self.fingerprint {
            Ok(true)
        } else {
            Err(format!(
                "snapshot at cycle {} is corrupt: restored fingerprint {:#018x} != captured {:#018x}",
                self.cycle, got, self.fingerprint
            ))
        }
    }

    fn restore_into_delta(&self, ws: &mut Workspace) {
        ws.stats.restores += 1;
        let compatible = match ws.pair() {
            Some((m, a)) => m.config() == self.core.cfg && a.config() == self.acfg,
            None => false,
        };
        if !compatible {
            let mut m = Machine::new(self.core.cfg);
            let mut argus = Argus::new(self.acfg);
            self.restore_unverified(&mut m, &mut argus);
            ws.pair = Some((m, argus));
            ws.stats.full_restores += 1;
        } else {
            let (m, argus) = ws.pair.as_mut().expect("checked compatible above");
            m.restore_core(&self.core);
            let mem = m.mem_mut().memory_mut();
            // Delta is sound only when the mirrored page list is congruent
            // with this snapshot's (intern_image lays pages out from word 0,
            // full pages except possibly the last, so equal page counts on
            // equal-size memories mean identical page boundaries).
            let delta_ok =
                ws.mirrored.len() == self.pages.len() && mem.words().len() == self.mem_words;
            let mut base = 0usize;
            if delta_ok {
                for (i, p) in self.pages.iter().enumerate() {
                    if mem.page_dirty_since(i, ws.clean_gen) || !Arc::ptr_eq(&ws.mirrored[i], p) {
                        mem.restore_words(base, &p.words, &p.tags);
                        ws.stats.pages_rewritten += 1;
                    } else {
                        ws.stats.pages_skipped += 1;
                    }
                    base += p.words.len();
                }
            } else {
                for p in &self.pages {
                    mem.restore_words(base, &p.words, &p.tags);
                    base += p.words.len();
                }
                ws.stats.full_restores += 1;
            }
            assert_eq!(base, self.mem_words, "page list does not cover memory");
            argus.restore_state(&self.checker);
        }
        ws.mirrored.clear();
        ws.mirrored.extend(self.pages.iter().cloned());
        // A RAM restore invalidates any mapped-store mirror (and vice
        // versa): the two delta paths track identity differently.
        ws.mirrored_ids.clear();
        ws.mirrored_store = 0;
        let (m, _) = ws.pair.as_mut().expect("restore populated the workspace");
        ws.clean_gen = m.mem_mut().memory_mut().advance_generation();
    }
}

/// Interval policy: captures a checkpoint whenever at least `every`
/// cycles have passed since the previous one (checked at step
/// boundaries, so actual spacing rounds up to whole instructions).
#[derive(Debug)]
pub struct SnapshotBuilder {
    every: u64,
    next_due: u64,
    pool: PageStore,
    snaps: Vec<Snapshot>,
}

impl SnapshotBuilder {
    /// Creates a builder capturing every `every` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn new(every: u64) -> Self {
        assert!(every > 0, "snapshot interval must be at least one cycle");
        Self { every, next_due: 0, pool: PageStore::new(), snaps: Vec::new() }
    }

    /// Captures unconditionally (the golden run seeds cycle 0 with this so
    /// every arm cycle has a snapshot at or before it).
    pub fn capture_now(&mut self, m: &Machine, argus: &Argus) {
        if let Some(last) = self.snaps.last() {
            assert!(m.cycle() > last.cycle(), "snapshots must advance in cycle order");
        }
        self.snaps.push(Snapshot::capture(m, argus, &mut self.pool));
        self.next_due = m.cycle() + self.every;
    }

    /// Captures when the interval has elapsed; returns whether it did.
    pub fn maybe_capture(&mut self, m: &Machine, argus: &Argus) -> bool {
        if m.cycle() >= self.next_due {
            self.capture_now(m, argus);
            true
        } else {
            false
        }
    }

    /// Finishes the golden run: freezes into the shareable store.
    pub fn finish(self) -> SnapshotStore {
        SnapshotStore {
            stats: StoreStats {
                interval: self.every,
                unique_pages: self.pool.unique_pages(),
                dedup_hits: self.pool.dedup_hits(),
                unique_bytes: self.pool.unique_bytes(),
                pages_total: self.pool.unique_pages() + self.pool.dedup_hits(),
                pages_distinct: self.pool.unique_pages(),
                bytes_saved: self.pool.saved_bytes(),
            },
            snaps: self.snaps,
        }
    }
}

/// Page-sharing statistics of a finished store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Capture interval in cycles.
    pub interval: u64,
    /// Distinct pages stored across all snapshots.
    pub unique_pages: u64,
    /// Page references satisfied by an already-stored page.
    pub dedup_hits: u64,
    /// Payload bytes held by distinct pages.
    pub unique_bytes: u64,
    /// Page references across all snapshots (distinct + deduplicated).
    pub pages_total: u64,
    /// Distinct page bodies actually stored (alias of `unique_pages`,
    /// under the name `argus snapshot info` reports).
    pub pages_distinct: u64,
    /// Payload bytes dedup avoided storing versus one body per reference.
    pub bytes_saved: u64,
}

/// A finished, read-only set of golden-run checkpoints, ordered by cycle.
///
/// Campaign shards share one store behind an `Arc`; everything here is
/// immutable, so lookups need no locking.
#[derive(Debug)]
pub struct SnapshotStore {
    snaps: Vec<Snapshot>,
    stats: StoreStats,
}

impl SnapshotStore {
    /// The latest snapshot whose cycle stamp is `<= cycle`, if any.
    pub fn nearest_at_or_before(&self, cycle: u64) -> Option<&Snapshot> {
        self.nearest_index_at_or_before(cycle).map(|i| &self.snaps[i])
    }

    /// Index form of [`SnapshotStore::nearest_at_or_before`], for callers
    /// that keep per-snapshot side tables (e.g. the campaign's
    /// verified/poisoned bitmaps).
    pub fn nearest_index_at_or_before(&self, cycle: u64) -> Option<usize> {
        self.snaps.partition_point(|s| s.cycle() <= cycle).checked_sub(1)
    }

    /// The `i`-th snapshot in cycle order.
    pub fn get(&self, i: usize) -> Option<&Snapshot> {
        self.snaps.get(i)
    }

    /// Test-only chaos hook: flips one bit in a *copy* of one page of
    /// snapshot `snap` (the shared pool page is untouched), so integrity
    /// checking and fallback paths can be exercised. Returns `false` when
    /// the snapshot has no page with payload.
    #[doc(hidden)]
    pub fn corrupt_page_for_test(&mut self, snap: usize) -> bool {
        let s = &mut self.snaps[snap];
        for slot in &mut s.pages {
            if !slot.words.is_empty() {
                let mut flipped = (**slot).clone();
                flipped.words[0] ^= 1;
                *slot = Arc::new(flipped);
                return true;
            }
        }
        false
    }

    /// All snapshots, in increasing cycle order.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snaps
    }

    /// Number of checkpoints.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// Whether the store holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }

    /// Page-sharing statistics.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Bytes a store without page sharing would have used for memory
    /// images (each snapshot materialized in full).
    pub fn materialized_bytes(&self) -> u64 {
        self.snaps.iter().map(|s| 4 * s.mem_words as u64).sum()
    }
}

/// Re-exported so store users can size things without importing `page`.
pub const SNAPSHOT_PAGE_WORDS: usize = PAGE_WORDS;

#[cfg(test)]
mod tests {
    use super::*;
    use argus_machine::machine::MachineConfig;

    fn idle_pair() -> (Machine, Argus) {
        (Machine::new(MachineConfig::default()), Argus::new(ArgusConfig::default()))
    }

    #[test]
    fn seek_finds_nearest_at_or_before() {
        // Build a store by hand out of real captures at distinct cycles is
        // awkward without running programs; instead exercise the policy
        // arithmetic through the builder on an idle machine (cycle 0 only)
        // and the partition-point logic directly.
        let (m, a) = idle_pair();
        let mut b = SnapshotBuilder::new(100);
        b.capture_now(&m, &a);
        let store = b.finish();
        assert_eq!(store.len(), 1);
        assert_eq!(store.nearest_at_or_before(0).unwrap().cycle(), 0);
        assert_eq!(store.nearest_at_or_before(u64::MAX).unwrap().cycle(), 0);
    }

    #[test]
    fn builder_interval_gates_captures() {
        let (m, a) = idle_pair();
        let mut b = SnapshotBuilder::new(50);
        assert!(b.maybe_capture(&m, &a), "first capture is immediate");
        assert!(!b.maybe_capture(&m, &a), "same cycle: interval not elapsed");
    }

    #[test]
    fn roundtrip_on_fresh_machine() {
        let (m, a) = idle_pair();
        let mut pool = PageStore::new();
        let snap = Snapshot::capture(&m, &a, &mut pool);
        let (m2, a2) = snap.restore_fresh();
        assert_eq!(combined_fingerprint(&m2, &a2), snap.fingerprint());
        let (words, tags) = snap.materialize_memory();
        assert_eq!(words, m.mem().memory().words());
        assert_eq!(tags, m.mem().memory().tags());
    }

    #[test]
    #[should_panic(expected = "different machine config")]
    fn restore_rejects_other_geometry() {
        let (m, a) = idle_pair();
        let mut pool = PageStore::new();
        let snap = Snapshot::capture(&m, &a, &mut pool);
        let mut other_cfg = MachineConfig::default();
        other_cfg.mem.icache = argus_mem::CacheConfig::kb8(2);
        let mut m2 = Machine::new(other_cfg);
        let mut a2 = Argus::new(ArgusConfig::default());
        snap.restore(&mut m2, &mut a2);
    }
}
