//! Property tests pinning the snapshot engine's contract: capturing at a
//! step boundary, restoring (in memory or through a file), and stepping
//! `k` more steps is bit-identical to never having snapshotted at all —
//! for random programs, both cache associativities, and snapshot points
//! landing right after multi-cycle multiply/divide steps.

use argus_core::{Argus, ArgusConfig};
use argus_isa::encode::encode;
use argus_isa::instr::{AluImmOp, AluOp, Instr, MemSize, MulDivOp};
use argus_isa::reg::{r, Reg};
use argus_machine::snapshot::SnapshotState;
use argus_machine::{Machine, MachineConfig, StepOutcome};
use argus_mem::MemConfig;
use argus_sim::fault::FaultInjector;
use argus_snapshot::{combined_fingerprint, PageStore, Snapshot, SnapshotBuilder};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Builds a random straight-line program from op tuples; always halts.
fn gen_program(seeds: &[u16], ops: &[(u8, u8, u8, u8, u32)]) -> Vec<u32> {
    let mut prog = Vec::new();
    for (k, &s) in seeds.iter().enumerate() {
        prog.push(Instr::AluImm { op: AluImmOp::Ori, rd: r(3 + k as u8), ra: Reg::ZERO, imm: s });
    }
    for &(opk, d, a, b, slot) in ops {
        let off = (0x100 + slot * 4) as i16;
        match opk {
            0..=7 => {
                let op = [
                    AluOp::Add,
                    AluOp::Sub,
                    AluOp::And,
                    AluOp::Or,
                    AluOp::Xor,
                    AluOp::Sll,
                    AluOp::Srl,
                    AluOp::Sra,
                ][opk as usize];
                prog.push(Instr::Alu { op, rd: r(d), ra: r(a), rb: r(b) });
            }
            8 => prog.push(Instr::MulDiv { op: MulDivOp::Mul, rd: r(d), ra: r(a), rb: r(b) }),
            9 => prog.push(Instr::MulDiv { op: MulDivOp::Div, rd: r(d), ra: r(a), rb: r(b) }),
            _ => {
                prog.push(Instr::Store { size: MemSize::Word, ra: Reg::ZERO, rb: r(a), off });
                prog.push(Instr::Load {
                    size: MemSize::Word,
                    signed: false,
                    rd: r(d),
                    ra: Reg::ZERO,
                    off,
                });
            }
        }
    }
    prog.push(Instr::Halt);
    prog.iter().map(encode).collect()
}

fn boot(words: &[u32], mem: MemConfig) -> Machine {
    let mut m = Machine::new(MachineConfig { mem, argus_mode: false, ..Default::default() });
    m.load_code(0, words);
    m
}

/// Steps `n` times (stopping at halt); returns steps actually taken.
fn advance(m: &mut Machine, n: usize) -> usize {
    let mut inj = FaultInjector::none();
    for k in 0..n {
        if m.step(&mut inj) == StepOutcome::Halted {
            return k;
        }
    }
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// capture → restore → run-to-halt ≡ run-to-halt, for random
    /// programs, random capture points, and both cache associativities.
    /// The per-step outcomes must match too, not just the final state.
    #[test]
    fn fork_replays_bit_identically(
        seeds in prop::collection::vec(any::<u16>(), 4),
        ops in prop::collection::vec((0u8..11, 3u8..8, 3u8..8, 3u8..8, 0u32..64), 1..32),
        cut in 0usize..24,
        two_way in any::<bool>(),
    ) {
        let words = gen_program(&seeds, &ops);
        let mem = if two_way { MemConfig::default().two_way() } else { MemConfig::default() };

        let mut a = boot(&words, mem);
        advance(&mut a, cut);
        let snap = a.capture_state();

        let mut b = boot(&words, mem);
        b.restore_state(&snap);
        prop_assert_eq!(a.state_fingerprint(), b.state_fingerprint());

        let mut steps = 0u32;
        loop {
            let ra = a.step(&mut FaultInjector::none());
            let rb = b.step(&mut FaultInjector::none());
            prop_assert_eq!(&ra, &rb, "diverged {} steps after the fork", steps);
            if ra == StepOutcome::Halted {
                break;
            }
            steps += 1;
            prop_assert!(steps < 10_000, "straight-line program failed to halt");
        }
        prop_assert_eq!(a.state_fingerprint(), b.state_fingerprint());
        prop_assert_eq!(a.cycle(), b.cycle());
        prop_assert_eq!(a.state_digest(), b.state_digest());
    }

    /// The interval policy with `every = 1` snapshots after *every* step —
    /// including the boundaries right after multi-cycle mul/div steps —
    /// and every one of those snapshots forks to the same final state.
    #[test]
    fn every_snapshot_of_a_muldiv_run_forks_to_the_same_end(
        va in 1u16..500,
        vb in 1u16..40,
    ) {
        let words: Vec<u32> = [
            Instr::AluImm { op: AluImmOp::Ori, rd: r(3), ra: Reg::ZERO, imm: va },
            Instr::AluImm { op: AluImmOp::Ori, rd: r(4), ra: Reg::ZERO, imm: vb },
            Instr::MulDiv { op: MulDivOp::Mul, rd: r(5), ra: r(3), rb: r(4) },
            Instr::MulDiv { op: MulDivOp::Div, rd: r(6), ra: r(5), rb: r(4) },
            Instr::MulDiv { op: MulDivOp::Div, rd: r(7), ra: r(5), rb: r(3) },
            Instr::Store { size: MemSize::Word, ra: Reg::ZERO, rb: r(6), off: 0x200 },
            Instr::Halt,
        ]
        .iter()
        .map(encode)
        .collect();

        // Uninterrupted reference.
        let mut golden = boot(&words, MemConfig::default());
        advance(&mut golden, 10_000);
        prop_assert!(golden.halted());
        let want = golden.state_fingerprint();

        // Golden run again, snapshotting after every step (machine-only
        // runs pair the machine with an idle checker).
        let mut m = boot(&words, MemConfig::default());
        let idle = Argus::new(ArgusConfig::default());
        let mut builder = SnapshotBuilder::new(1);
        builder.capture_now(&m, &idle);
        while !m.halted() {
            advance(&mut m, 1);
            builder.maybe_capture(&m, &idle);
        }
        let store = builder.finish();
        prop_assert!(store.len() >= words.len(), "one snapshot per step at least");

        for snap in store.snapshots() {
            let (mut fork, _) = snap.restore_fresh();
            advance(&mut fork, 10_000);
            prop_assert!(fork.halted());
            prop_assert_eq!(
                fork.state_fingerprint(),
                want,
                "fork from cycle {} diverged",
                snap.cycle()
            );
        }
    }

    /// A snapshot that goes through the binary file format forks exactly
    /// like the in-memory one.
    #[test]
    fn file_roundtrip_preserves_the_fork(
        seeds in prop::collection::vec(any::<u16>(), 4),
        ops in prop::collection::vec((0u8..11, 3u8..8, 3u8..8, 3u8..8, 0u32..64), 1..16),
        cut in 0usize..16,
    ) {
        let words = gen_program(&seeds, &ops);
        let mut a = boot(&words, MemConfig::default());
        advance(&mut a, cut);
        let idle = Argus::new(ArgusConfig::default());
        let mut pool = PageStore::new();
        let snap = Snapshot::capture(&a, &idle, &mut pool);

        let mut buf = Vec::new();
        argus_snapshot::io::write_snapshot(&mut buf, &snap).unwrap();
        let (mut b, _checker) = argus_snapshot::io::read_snapshot(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(a.state_fingerprint(), b.state_fingerprint());

        advance(&mut a, 10_000);
        advance(&mut b, 10_000);
        prop_assert!(a.halted() && b.halted());
        prop_assert_eq!(a.state_fingerprint(), b.state_fingerprint());
    }
}

/// Compiled once for the checker-in-lockstep property below.
fn stress_prog() -> &'static argus_compiler::Program {
    static PROG: OnceLock<argus_compiler::Program> = OnceLock::new();
    PROG.get_or_init(|| {
        let w = argus_workloads::stress();
        argus_compiler::compile(&w.unit, argus_compiler::Mode::Argus, &Default::default())
            .expect("stress compiles")
    })
}

fn checked_pair() -> (Machine, Argus) {
    let prog = stress_prog();
    let mut m = Machine::new(MachineConfig::default());
    prog.load(&mut m);
    let mut argus = Argus::new(ArgusConfig::default());
    argus.expect_entry(prog.entry_dcs.unwrap_or(0));
    (m, argus)
}

fn step_checked(m: &mut Machine, argus: &mut Argus, n: usize) {
    let mut inj = FaultInjector::none();
    for _ in 0..n {
        match m.step(&mut inj) {
            StepOutcome::Committed(rec) => {
                argus.on_commit(&rec, &mut inj);
            }
            StepOutcome::Stalled => {
                argus.on_stall(1, &mut inj);
            }
            StepOutcome::Halted => break,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// With the Argus checker running in lockstep (a real signature-
    /// embedded binary), capture → restore → step-k ≡ step-k: the full
    /// machine + checker fingerprint matches at the cut and after k more
    /// steps.
    #[test]
    fn checker_lockstep_fork_matches(cut in 0usize..600, k in 0usize..400) {
        let (mut m, mut argus) = checked_pair();
        step_checked(&mut m, &mut argus, cut);

        let mut pool = PageStore::new();
        let snap = Snapshot::capture(&m, &argus, &mut pool);
        let (mut fm, mut fargus) = snap.restore_fresh();
        prop_assert_eq!(combined_fingerprint(&fm, &fargus), snap.fingerprint());

        step_checked(&mut m, &mut argus, k);
        step_checked(&mut fm, &mut fargus, k);
        prop_assert_eq!(
            combined_fingerprint(&m, &argus),
            combined_fingerprint(&fm, &fargus),
            "forked checker run diverged after {} steps from cycle {}",
            k,
            snap.cycle()
        );
    }
}
