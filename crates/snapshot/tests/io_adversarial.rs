//! Adversarial decode tests for the standalone snapshot file format.
//!
//! The contract under attack: [`argus_snapshot::io::read_snapshot`] must
//! return `Err` on *any* damaged input — truncation, wrong magic, crafted
//! over-long counts, flipped bits — and must never panic or allocate
//! proportionally to a lying header. The whole-file CRC-32 trailer is
//! verified before a single payload byte is interpreted, which is what
//! makes the single-bit-flip property below deterministic: CRC-32 detects
//! every 1-bit error and every burst shorter than its width.

use argus_core::{Argus, ArgusConfig};
use argus_machine::{Machine, MachineConfig};
use argus_mem::MemConfig;
use argus_sim::fault::FaultInjector;
use argus_snapshot::io::{read_snapshot, write_snapshot};
use argus_snapshot::{PageStore, Snapshot};
use proptest::prelude::*;

/// A small but real snapshot file: 16 KiB of memory keeps the per-case
/// CRC work cheap without changing any code path.
fn small_config() -> MachineConfig {
    MachineConfig {
        mem: MemConfig { mem_bytes: 1 << 14, ..Default::default() },
        ..Default::default()
    }
}

fn valid_file() -> Vec<u8> {
    let mut m = Machine::new(small_config());
    // A few steps so the core state is not all-zero.
    let mut inj = FaultInjector::none();
    for _ in 0..5 {
        let _ = m.step(&mut inj);
    }
    let argus = Argus::new(ArgusConfig::default());
    let mut pool = PageStore::new();
    let snap = Snapshot::capture(&m, &argus, &mut pool);
    let mut buf = Vec::new();
    write_snapshot(&mut buf, &snap).unwrap();
    buf
}

#[test]
fn the_valid_file_itself_loads() {
    let buf = valid_file();
    read_snapshot(&mut buf.as_slice()).expect("pristine file must load");
}

#[test]
fn every_short_prefix_is_rejected() {
    let buf = valid_file();
    // Exhaustive over the header region, sampled beyond it.
    for len in (0..256.min(buf.len())).chain((256..buf.len()).step_by(257)) {
        let err = read_snapshot(&mut &buf[..len]);
        assert!(err.is_err(), "prefix of {len} bytes must not load");
    }
    let err = read_snapshot(&mut &buf[..buf.len() - 1]).unwrap_err();
    assert!(err.to_string().contains("checksum") || err.to_string().contains("too short"), "{err}");
}

#[test]
fn wrong_magic_and_wrong_version_are_distinguished() {
    let buf = valid_file();

    let mut other = buf.clone();
    other[0] = b'X';
    let err = read_snapshot(&mut other.as_slice()).unwrap_err();
    assert!(err.to_string().contains("not an argus snapshot file"), "{err}");

    // Same "ARGSNAP" family, different version byte: a *version* error,
    // not a generic one (and the CRC never gets a say).
    let mut future = buf.clone();
    future[7] = 0x7F;
    let err = read_snapshot(&mut future.as_slice()).unwrap_err();
    assert!(err.to_string().contains("unsupported snapshot format version"), "{err}");
}

#[test]
fn crafted_overlong_memory_count_is_rejected_without_allocating() {
    let buf = valid_file();
    let n = Machine::new(small_config()).mem().memory().words().len();
    // Payload tail layout: [mem count: u64][words: 4n][tags: n][crc: 4].
    let count_at = buf.len() - 4 - n - 4 * n - 8;
    assert_eq!(
        u64::from_le_bytes(buf[count_at..count_at + 8].try_into().unwrap()),
        n as u64,
        "located the memory word count field"
    );

    // Lie about the count but keep the checksum honest, so the parser —
    // not the CRC — must hold the line against the 2^64-word allocation.
    let mut crafted = buf.clone();
    crafted[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    let end = crafted.len() - 4;
    let crc = argus_sim::crc::crc32(&crafted[..end]);
    crafted[end..].copy_from_slice(&crc.to_le_bytes());

    let err = read_snapshot(&mut crafted.as_slice()).unwrap_err();
    assert!(err.to_string().contains("implausibly large"), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single flipped bit anywhere in the file — header, payload, or
    /// CRC trailer — must be rejected. Guaranteed, not probabilistic:
    /// CRC-32 detects all single-bit errors, and a flip inside the magic
    /// is caught even earlier.
    #[test]
    fn any_single_bit_flip_is_rejected(pos in 0usize..usize::MAX, bit in 0u8..8) {
        let mut buf = valid_file();
        let pos = pos % buf.len();
        buf[pos] ^= 1 << bit;
        prop_assert!(
            read_snapshot(&mut buf.as_slice()).is_err(),
            "flipping bit {bit} of byte {pos} went unnoticed"
        );
    }

    /// Short bursts of adjacent corruption (up to 4 bytes = the CRC
    /// width) are likewise always detected.
    #[test]
    fn short_corruption_bursts_are_rejected(
        pos in 0usize..usize::MAX,
        burst in prop::collection::vec(1u8..=255, 1..=4),
    ) {
        let mut buf = valid_file();
        let pos = pos % buf.len();
        for (k, &b) in burst.iter().enumerate() {
            if let Some(byte) = buf.get_mut(pos + k) {
                *byte ^= b;
            }
        }
        prop_assert!(read_snapshot(&mut buf.as_slice()).is_err());
    }

    /// Random truncation points never load.
    #[test]
    fn random_truncations_are_rejected(cut in 0usize..usize::MAX) {
        let buf = valid_file();
        let cut = cut % buf.len();
        prop_assert!(read_snapshot(&mut &buf[..cut]).is_err());
    }
}

// ---------------------------------------------------------------------------
// ARGSTORE (the out-of-core, mapped multi-snapshot format) under the same
// attack model. `MappedStore::open` verifies the whole-file CRC envelope
// before parsing, so damaged files must surface as `Err` — never a panic,
// never an allocation sized by a lying count. A file mutated *after* open
// is the mapped format's extra hazard; it must fail the per-page CRC.
// ---------------------------------------------------------------------------

use argus_snapshot::mapped::{MappedStore, MappedStoreWriter, PageCache};
use std::sync::OnceLock;

/// A sealed ARGSTORE with a handful of snapshots of a stepping machine,
/// built once (each proptest case re-writes these bytes to its own file).
fn valid_store_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut m = Machine::new(small_config());
        let argus = Argus::new(ArgusConfig::default());
        let mut w = MappedStoreWriter::create_temp(64).expect("create store writer");
        w.capture_now(&m, &argus).expect("seed cycle 0");
        let mut inj = FaultInjector::none();
        for _ in 0..400 {
            let _ = m.step(&mut inj);
            w.maybe_capture(&m, &argus).expect("interval capture");
        }
        let store = w.finish().expect("seal store");
        assert!(store.len() >= 3, "want several snapshots to attack");
        store.file_bytes().to_vec()
    })
}

/// Writes bytes to a fresh scratch file and tries to open it as a store.
fn open_bytes(tag: &str, bytes: &[u8]) -> Result<MappedStore, std::io::Error> {
    let path =
        std::env::temp_dir().join(format!("argus-advstore-{}-{tag}.bin", std::process::id()));
    std::fs::write(&path, bytes).unwrap();
    let r = MappedStore::open(&path);
    let _ = std::fs::remove_file(&path);
    r
}

#[test]
fn the_valid_store_itself_opens_and_restores() {
    let store = open_bytes("pristine", valid_store_bytes()).expect("pristine store must open");
    let mut cache = PageCache::new(8);
    for i in 0..store.len() {
        store.try_restore_fresh(i, &mut cache).expect("every snapshot restores verified");
    }
}

#[test]
fn store_lying_footer_counts_are_rejected_without_allocating() {
    // Footer layout (before the 4-byte CRC trailer):
    // [n_pages: u64][n_snaps: u64][meta_len: u64][footer magic: 8].
    let buf = valid_store_bytes();
    let footer_at = buf.len() - 4 - 32;
    for field in 0..3usize {
        let mut crafted = buf.to_vec();
        let at = footer_at + 8 * field;
        crafted[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        // Keep the envelope honest so the size equation — not the CRC —
        // must reject the 2^64-page store.
        let end = crafted.len() - 4;
        let crc = argus_sim::crc::crc32(&crafted[..end]);
        crafted[end..].copy_from_slice(&crc.to_le_bytes());
        let err = open_bytes(&format!("lying-{field}"), &crafted);
        assert!(err.is_err(), "footer field {field} = u64::MAX must not open");
    }
}

#[test]
fn store_mutated_after_open_fails_page_crc_not_execution() {
    let path = std::env::temp_dir().join(format!("argus-advstore-{}-live.bin", std::process::id()));
    std::fs::write(&path, valid_store_bytes()).unwrap();
    let store = MappedStore::open(&path).expect("pristine store must open");

    // Flip one byte in the body slot of a page the last snapshot uses,
    // through the file — the shared mapping observes it.
    let victim = *store
        .page_ids(store.len() - 1)
        .expect("snapshot has pages")
        .last()
        .expect("non-empty page table");
    let body_off = 4096 + victim as u64 * 4096;
    {
        use std::io::{Seek, SeekFrom, Write as _};
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(body_off)).unwrap();
        f.write_all(&[0xFF]).unwrap();
        f.sync_all().unwrap();
    }

    assert_eq!(store.check_page_crc(victim), Some(false), "spot check must see the flip");
    assert_eq!(store.check_page_crc(u32::MAX), None, "out-of-range id is None, not a panic");
    let mut cache = PageCache::new(8);
    let err = store
        .try_restore_fresh(store.len() - 1, &mut cache)
        .expect_err("restoring through the damaged page must fail");
    assert!(err.contains("CRC") || err.contains("corrupt"), "{err}");
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any single flipped bit anywhere in the store file — header, page
    /// bodies, tags, index, snapshot metas, footer, or trailer — must be
    /// rejected at open.
    #[test]
    fn store_single_bit_flips_are_rejected(pos in 0usize..usize::MAX, bit in 0u8..8) {
        let mut buf = valid_store_bytes().to_vec();
        let pos = pos % buf.len();
        buf[pos] ^= 1 << bit;
        prop_assert!(
            open_bytes(&format!("flip-{pos}-{bit}"), &buf).is_err(),
            "flipping bit {bit} of byte {pos} went unnoticed"
        );
    }

    /// Random truncation points never open (the footer magic backstops
    /// the envelope even on CRC collisions).
    #[test]
    fn store_truncations_are_rejected(cut in 0usize..usize::MAX) {
        let buf = valid_store_bytes();
        let cut = cut % buf.len();
        prop_assert!(open_bytes(&format!("cut-{cut}"), &buf[..cut]).is_err());
    }
}
