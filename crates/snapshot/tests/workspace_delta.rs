//! Delta-restore workspace contract: restoring a snapshot into a reused
//! [`Workspace`] is bit-identical to a full restore and to a cold boot
//! (`restore_fresh`), while actually skipping clean pages.

use argus_core::{Argus, ArgusConfig};
use argus_isa::encode::encode;
use argus_isa::instr::{AluImmOp, Instr, MemSize};
use argus_isa::reg::{r, Reg};
use argus_machine::{Machine, MachineConfig, StepOutcome};
use argus_mem::MemConfig;
use argus_sim::fault::FaultInjector;
use argus_snapshot::{combined_fingerprint, PageStore, Snapshot, SnapshotBuilder, Workspace};

/// A short program that stores to two distant addresses (two different
/// memory pages) and halts.
fn program() -> Vec<u32> {
    [
        Instr::AluImm { op: AluImmOp::Ori, rd: r(3), ra: Reg::ZERO, imm: 0x1234 },
        Instr::AluImm { op: AluImmOp::Ori, rd: r(4), ra: Reg::ZERO, imm: 0x00FF },
        Instr::Store { size: MemSize::Word, ra: Reg::ZERO, rb: r(3), off: 0x200 },
        Instr::Store { size: MemSize::Word, ra: Reg::ZERO, rb: r(4), off: 0x7F00 },
        Instr::AluImm { op: AluImmOp::Xori, rd: r(5), ra: r(3), imm: 0x00F0 },
        Instr::Store { size: MemSize::Word, ra: Reg::ZERO, rb: r(5), off: 0x204 },
        Instr::Halt,
    ]
    .iter()
    .map(encode)
    .collect()
}

fn boot(words: &[u32]) -> Machine {
    let mut m = Machine::new(MachineConfig {
        mem: MemConfig::default(),
        argus_mode: false,
        ..Default::default()
    });
    m.load_code(0, words);
    m
}

fn advance(m: &mut Machine, n: usize) -> usize {
    let mut inj = FaultInjector::none();
    for k in 0..n {
        if m.step(&mut inj) == StepOutcome::Halted {
            return k;
        }
    }
    n
}

/// Two snapshots of the same run at different cycles, sharing one pool.
fn two_snapshots() -> (Snapshot, Snapshot) {
    let argus = Argus::new(ArgusConfig::default());
    let mut pool = PageStore::new();
    let mut m = boot(&program());
    advance(&mut m, 3);
    let a = Snapshot::capture(&m, &argus, &mut pool);
    advance(&mut m, 10_000);
    assert!(m.halted());
    let b = Snapshot::capture(&m, &argus, &mut pool);
    (a, b)
}

#[test]
fn delta_restore_matches_cold_boot_and_full_restore() {
    let (snap_a, snap_b) = two_snapshots();

    let (cold_m, cold_a) = snap_a.restore_fresh();
    assert_eq!(combined_fingerprint(&cold_m, &cold_a), snap_a.fingerprint());

    let mut ws = Workspace::new();
    snap_a.restore_into(&mut ws);
    {
        let (m, a) = ws.pair().unwrap();
        assert_eq!(combined_fingerprint(m, a), snap_a.fingerprint());
        assert_eq!(m.state_digest(), cold_m.state_digest());
    }
    assert_eq!(ws.stats().restores, 1);
    assert_eq!(ws.stats().full_restores, 1, "first use cold-builds the pair");

    // Dirty the workspace by running to halt, then delta-restore back.
    {
        let (m, _) = ws.pair_mut().unwrap();
        advance(m, 10_000);
        assert!(m.halted());
    }
    snap_a.restore_into(&mut ws);
    {
        let (m, a) = ws.pair().unwrap();
        assert_eq!(combined_fingerprint(m, a), snap_a.fingerprint());
        assert_eq!(m.state_digest(), cold_m.state_digest());
    }
    let s = ws.stats();
    assert_eq!(s.restores, 2);
    assert_eq!(s.full_restores, 1, "second restore took the delta path");
    assert!(s.pages_skipped > 0, "delta restore must skip clean pages, got {s:?}");
    assert!(s.pages_rewritten >= 1, "the run dirtied at least one page, got {s:?}");

    // Cross-snapshot delta: move the same workspace to a different
    // checkpoint of the same run.
    snap_b.restore_into(&mut ws);
    let (m, a) = ws.pair().unwrap();
    assert_eq!(combined_fingerprint(m, a), snap_b.fingerprint());
    let (cold_m2, _) = snap_b.restore_fresh();
    assert_eq!(m.state_digest(), cold_m2.state_digest());
}

#[test]
fn workspace_replay_is_bit_identical_to_cold_boot() {
    let (snap_a, _) = two_snapshots();

    let (mut cold_m, _) = snap_a.restore_fresh();
    advance(&mut cold_m, 10_000);
    assert!(cold_m.halted());

    let mut ws = Workspace::new();
    snap_a.restore_into(&mut ws);
    // Pollute, restore, replay: the replay must match the cold replay.
    {
        let (m, _) = ws.pair_mut().unwrap();
        advance(m, 2);
    }
    snap_a.restore_into(&mut ws);
    let (m, _) = ws.pair_mut().unwrap();
    advance(m, 10_000);
    assert!(m.halted());
    assert_eq!(m.state_digest(), cold_m.state_digest());
    assert_eq!(m.cycle(), cold_m.cycle());
}

#[test]
fn invalidate_forces_full_rewrite() {
    let (snap_a, _) = two_snapshots();
    let mut ws = Workspace::new();
    snap_a.restore_into(&mut ws);
    ws.invalidate();
    snap_a.restore_into(&mut ws);
    let s = ws.stats();
    assert_eq!(s.restores, 2);
    assert_eq!(s.full_restores, 2, "invalidation must force the full path, got {s:?}");
    let (m, a) = ws.pair().unwrap();
    assert_eq!(combined_fingerprint(m, a), snap_a.fingerprint());
}

#[test]
fn try_restore_into_rejects_corrupt_snapshot() {
    let argus = Argus::new(ArgusConfig::default());
    let mut m = boot(&program());
    advance(&mut m, 3);
    let mut b = SnapshotBuilder::new(1);
    b.capture_now(&m, &argus);
    let mut store = b.finish();
    assert!(store.corrupt_page_for_test(0));

    let mut ws = Workspace::new();
    let err = store.get(0).unwrap().try_restore_into(&mut ws).unwrap_err();
    assert!(err.contains("corrupt"), "unexpected error: {err}");
}

#[test]
fn try_restore_into_verifies_clean_snapshot_without_fallback() {
    let (snap_a, _) = two_snapshots();
    let mut ws = Workspace::new();
    assert_eq!(snap_a.try_restore_into(&mut ws), Ok(false));
    {
        let (m, _) = ws.pair_mut().unwrap();
        advance(m, 4);
    }
    assert_eq!(snap_a.try_restore_into(&mut ws), Ok(false));
    let (m, a) = ws.pair().unwrap();
    assert_eq!(combined_fingerprint(m, a), snap_a.fingerprint());
}
