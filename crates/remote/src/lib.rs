//! # argus-remote — distributed campaign workers
//!
//! Opens the orchestrator's chunk pool to the network: a campaign
//! running under the daemon can be drained by remote `argus worker`
//! processes that lease injection chunks over plain HTTP/1.1, execute
//! them against locally reconstructed state, and post merged tallies
//! back. Std-only, like everything else in the tree.
//!
//! The design leans entirely on two properties the repo already
//! guarantees:
//!
//! * **Determinism** — injection `i` of a campaign draws all randomness
//!   from a stream keyed by `(seed, i)`; *who* runs it and *when* is
//!   irrelevant to its result.
//! * **Commutativity** — every tally accumulator merges commutatively,
//!   so chunk results can arrive in any order.
//!
//! On top of that, three mechanisms make the wire safe (see
//! `DESIGN.md` § Distributed execution for the full argument):
//!
//! * [`lease::LeasePool`] — time-bounded leases; a crashed or
//!   partitioned worker's chunks expire and reissue *verbatim*, so no
//!   work is lost and overlapping completions are always exact
//!   duplicates;
//! * [`share::CampaignShare`] — the coordinator-side dedup gate: every
//!   completion (local, remote, duplicate, stale) crosses one lock that
//!   either merges it or provably drops a byte-equal duplicate;
//! * content-addressed artifacts ([`protocol::ArtifactRef`]) — workers
//!   cold-start from a URL and fingerprint-check their reconstruction
//!   against the coordinator's golden-entry snapshot before running
//!   anything.
//!
//! The result: a distributed run's report is byte-identical to one-shot
//! `argus campaign --json` modulo the volatile `"run"` section, which
//! the end-to-end tests and `scripts/distributed_smoke.sh` enforce —
//! including runs where a worker is SIGKILLed mid-campaign.

pub mod client;
pub mod coordinator;
pub mod lease;
pub mod protocol;
pub mod share;
pub mod worker;

pub use coordinator::{run_distributed, DistributedConfig};
pub use lease::{LeaseGrant, LeasePool};
pub use protocol::{
    ArtifactRef, CompleteReply, CompleteRequest, LeaseReply, Manifest, PROTOCOL_VERSION,
};
pub use share::{CampaignShare, CompleteVerdict, LOCAL_PREFIX};
pub use worker::{run_worker, WorkerConfig, WorkerSummary};
