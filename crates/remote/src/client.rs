//! A minimal, binary-safe HTTP/1.1 client (std only).
//!
//! The daemon's own test client reads replies as UTF-8 text, which is
//! fine for JSON but corrupts ARGSNAP artifact bodies. This one treats
//! every body as bytes and trusts `Content-Length` when present (the
//! daemon always sends it), falling back to read-to-EOF under
//! `Connection: close`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Per-request I/O timeout: long enough for a manifest build behind a
/// cold `prepare_campaign`, short enough that a dead daemon is detected
/// the same order of magnitude as a lease TTL.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_owned())
}

/// Issues one request; returns `(status, body bytes)`. `body` is sent
/// as `application/json` (the only request content type the protocol
/// uses).
pub fn fetch(
    addr: SocketAddr,
    method: &str,
    path_and_query: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, Vec<u8>)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut stream = stream;
    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path_and_query} HTTP/1.1\r\nHost: argus\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes())?;

    let mut r = BufReader::new(stream);
    let mut status_line = String::new();
    r.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;

    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        r.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = Some(v.trim().parse().map_err(|_| bad("bad content-length"))?);
            }
        }
    }

    let payload = match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            r.read_exact(&mut buf)?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            r.read_to_end(&mut buf)?;
            buf
        }
    };
    Ok((status, payload))
}

/// [`fetch`] with the body decoded as UTF-8 (JSON endpoints).
pub fn fetch_text(
    addr: SocketAddr,
    method: &str,
    path_and_query: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let (status, bytes) = fetch(addr, method, path_and_query, body)?;
    let text = String::from_utf8(bytes).map_err(|_| bad("reply is not UTF-8"))?;
    Ok((status, text))
}
