//! The time-bounded chunk lease pool.
//!
//! The distributed analogue of the orchestrator's work-stealing
//! scheduler: injection indices live in one shared pool, and workers —
//! local threads and remote processes alike — *lease* contiguous chunks
//! instead of owning slices. Two properties carry the whole idempotency
//! argument:
//!
//! * **Leases expire.** Every grant carries a TTL; a worker renews by
//!   heartbeat. A SIGKILLed or partitioned worker simply stops renewing,
//!   its chunks return to the pool, and someone else runs them. No work
//!   is ever lost to a dead worker.
//! * **Reissued chunks keep their exact range.** An expired chunk
//!   re-enters the pool as a whole range and is re-granted as a whole
//!   range — never split, never merged. Combined with all-or-nothing
//!   completion, any two completions that overlap at all cover the
//!   *identical* range, so "duplicate" is decidable by range equality
//!   and a duplicate's tally is byte-equal to the accepted one (every
//!   injection is deterministic in `(seed, index)`). Dropping it changes
//!   nothing.
//!
//! All methods take `now: Instant` explicitly — expiry is a pure
//! function of the clock the caller passes, which is what lets the
//! property tests drive crash/expiry interleavings deterministically.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::ops::Range;
use std::time::{Duration, Instant};

/// One granted chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseGrant {
    /// Pool-unique id; completion and heartbeat quote it.
    pub chunk: u64,
    pub range: Range<usize>,
}

#[derive(Debug)]
struct Outstanding {
    range: Range<usize>,
    worker: String,
    expires: Instant,
}

/// The shared chunk pool: virgin (never-leased) ranges, a reissue queue
/// of expired/released chunks, and the outstanding lease table.
#[derive(Debug)]
pub struct LeasePool {
    /// Never-leased work, ascending and disjoint.
    virgin: Vec<Range<usize>>,
    virgin_len: usize,
    /// Expired or voluntarily released chunks, re-granted verbatim
    /// (front first) before any virgin work is carved.
    reissue: VecDeque<Range<usize>>,
    reissue_len: usize,
    outstanding: HashMap<u64, Outstanding>,
    next_chunk: u64,
    chunk_max: usize,
    ttl: Duration,
    /// Grants handed out (including re-grants of expired chunks).
    pub leases: u64,
}

impl LeasePool {
    /// `pool` is the unfinished-index set (ascending, disjoint) — the
    /// complement of a resumed checkpoint's done set.
    pub fn new(pool: Vec<Range<usize>>, chunk_max: usize, ttl: Duration) -> Self {
        assert!(chunk_max >= 1, "chunk_max must be >= 1");
        let virgin_len = pool.iter().map(Range::len).sum();
        Self {
            virgin: pool,
            virgin_len,
            reissue: VecDeque::new(),
            reissue_len: 0,
            outstanding: HashMap::new(),
            next_chunk: 0,
            chunk_max,
            ttl,
            leases: 0,
        }
    }

    /// Injections leasable right now (virgin + reissue queue).
    pub fn unleased(&self) -> usize {
        self.virgin_len + self.reissue_len
    }

    /// Leases currently outstanding.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// True when nothing is leasable *and* nothing is outstanding: every
    /// index has been completed (the pool's caller scrubs completed
    /// ranges out, so drained means done).
    pub fn drained(&self) -> bool {
        self.unleased() == 0 && self.outstanding.is_empty()
    }

    /// The lease TTL granted to workers.
    pub fn ttl(&self) -> Duration {
        self.ttl
    }

    /// Grants a chunk, reissue queue first (whole ranges, verbatim),
    /// then a carve off the virgin pool. Chunk size decays as the pool
    /// empties — and always clamps to what actually remains, so an
    /// oversized `chunk_max` never produces an empty or padded lease.
    pub fn lease(&mut self, worker: &str, now: Instant) -> Option<LeaseGrant> {
        let range = if let Some(r) = self.reissue.pop_front() {
            self.reissue_len -= r.len();
            r
        } else {
            if self.virgin_len == 0 {
                return None;
            }
            let active = self.outstanding.len() + 1;
            let chunk = (self.virgin_len / (active * 2)).clamp(1, self.chunk_max);
            let r = self.virgin[0].clone();
            let e = (r.start + chunk).min(r.end);
            if e < r.end {
                self.virgin[0].start = e;
            } else {
                self.virgin.remove(0);
            }
            self.virgin_len -= e - r.start;
            r.start..e
        };
        debug_assert!(!range.is_empty());
        let chunk = self.next_chunk;
        self.next_chunk += 1;
        self.leases += 1;
        self.outstanding.insert(
            chunk,
            Outstanding {
                range: range.clone(),
                worker: worker.to_owned(),
                expires: now + self.ttl,
            },
        );
        Some(LeaseGrant { chunk, range })
    }

    /// Marks a chunk completed: drops its outstanding entry (if the id is
    /// still live) and scrubs its exact range from the reissue queue (the
    /// chunk may have expired, been queued for reissue, and *then* had
    /// its original worker limp in with the completion — the queued copy
    /// must not run again).
    pub fn complete(&mut self, chunk: u64, range: &Range<usize>) {
        self.outstanding.remove(&chunk);
        if let Some(i) = self.reissue.iter().position(|r| r == range) {
            self.reissue.remove(i);
            self.reissue_len -= range.len();
        }
    }

    /// Returns an abandoned chunk to the *front* of the reissue queue
    /// (local workers release on preemption; the work should re-lease
    /// first, keeping resume latency low).
    pub fn release(&mut self, chunk: u64) {
        if let Some(o) = self.outstanding.remove(&chunk) {
            self.reissue_len += o.range.len();
            self.reissue.push_front(o.range);
        }
    }

    /// Renews the named chunks for `worker`; returns how many were
    /// actually renewed (an expired-and-reissued chunk no longer belongs
    /// to this worker and does not renew).
    pub fn heartbeat(&mut self, worker: &str, chunks: &[u64], now: Instant) -> usize {
        let mut renewed = 0;
        for id in chunks {
            if let Some(o) = self.outstanding.get_mut(id) {
                if o.worker == worker {
                    o.expires = now + self.ttl;
                    renewed += 1;
                }
            }
        }
        renewed
    }

    /// Moves every expired lease to the back of the reissue queue;
    /// returns the expired grants (for event logging).
    pub fn expire(&mut self, now: Instant) -> Vec<(u64, Range<usize>, String)> {
        let dead: Vec<u64> =
            self.outstanding.iter().filter(|(_, o)| o.expires <= now).map(|(&id, _)| id).collect();
        let mut out = Vec::with_capacity(dead.len());
        for id in dead {
            let o = self.outstanding.remove(&id).expect("collected above");
            self.reissue_len += o.range.len();
            self.reissue.push_back(o.range.clone());
            out.push((id, o.range, o.worker));
        }
        out.sort_by_key(|&(id, _, _)| id);
        out
    }
}

#[cfg(test)]
// Single-range pool literals are the fixtures here, not mistyped collects.
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;

    fn t0() -> Instant {
        Instant::now()
    }

    #[test]
    fn lease_complete_drains() {
        let now = t0();
        let mut p = LeasePool::new(vec![0..10], 4, Duration::from_secs(10));
        let mut seen = Vec::new();
        while let Some(g) = p.lease("w", now) {
            assert!(!g.range.is_empty());
            seen.extend(g.range.clone());
            p.complete(g.chunk, &g.range);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert!(p.drained());
    }

    #[test]
    fn oversized_chunk_clamps_never_empty() {
        let now = t0();
        let mut p = LeasePool::new(vec![0..3], 1_000_000, Duration::from_secs(10));
        let g = p.lease("w", now).unwrap();
        assert!(!g.range.is_empty());
        assert!(g.range.end <= 3);
    }

    #[test]
    fn expiry_reissues_exact_range() {
        let now = t0();
        let ttl = Duration::from_millis(100);
        let mut p = LeasePool::new(vec![0..8], 4, ttl);
        let g = p.lease("dead", now).unwrap();
        assert!(p.expire(now).is_empty(), "not expired yet");
        let expired = p.expire(now + ttl);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].1, g.range);
        // The reissued grant covers the identical range under a new id.
        let g2 = p.lease("alive", now + ttl).unwrap();
        assert_eq!(g2.range, g.range);
        assert_ne!(g2.chunk, g.chunk);
    }

    #[test]
    fn heartbeat_renews_only_own_live_chunks() {
        let now = t0();
        let ttl = Duration::from_millis(100);
        let mut p = LeasePool::new(vec![0..8], 2, ttl);
        let g1 = p.lease("a", now).unwrap();
        let g2 = p.lease("b", now).unwrap();
        // `a` renews its chunk; naming b's chunk does nothing.
        assert_eq!(p.heartbeat("a", &[g1.chunk, g2.chunk], now + ttl / 2), 1);
        let expired = p.expire(now + ttl);
        assert_eq!(expired.len(), 1, "only the unrenewed chunk expires");
        assert_eq!(expired[0].0, g2.chunk);
    }

    #[test]
    fn late_complete_scrubs_reissue_queue() {
        let now = t0();
        let ttl = Duration::from_millis(100);
        let mut p = LeasePool::new(vec![0..4], 10, ttl);
        let g = p.lease("slow", now).unwrap();
        p.expire(now + ttl);
        // The slow worker's completion arrives after expiry but before
        // anyone re-leased: the queued copy must be scrubbed.
        p.complete(g.chunk, &g.range);
        assert_eq!(p.unleased(), 4 - g.range.len());
        let g2 = p.lease("other", now + ttl).unwrap();
        assert!(g2.range.start >= g.range.end, "completed range never re-granted");
    }

    #[test]
    fn release_requeues_at_front() {
        let now = t0();
        let mut p = LeasePool::new(vec![0..8], 2, Duration::from_secs(10));
        let g1 = p.lease("w", now).unwrap();
        p.release(g1.chunk);
        let g2 = p.lease("w", now).unwrap();
        assert_eq!(g2.range, g1.range, "released chunk re-leases first, verbatim");
    }
}
