//! The coordinator: runs one campaign with its chunk pool opened to the
//! network.
//!
//! [`run_distributed`] is the distributed sibling of
//! `argus_orchestrator::run_sharded`: same checkpoint/resume semantics,
//! same supervision, same report shape — but the chunk pool is a
//! [`CampaignShare`] that remote `argus worker` processes lease from
//! over HTTP while the daemon's own worker threads (0..shards, possibly
//! zero for a remote-only run) drain it locally. Because every
//! completion funnels through the share's dedup gate and every
//! injection is deterministic in `(seed, index)`, the final report is
//! byte-identical to a one-shot `argus campaign` run modulo the
//! volatile `"run"` section — for any worker mix, crash schedule, or
//! duplicate-completion pattern.

use crate::lease::LeasePool;
use crate::protocol::{ArtifactRef, Manifest, PROTOCOL_VERSION};
use crate::share::{CampaignShare, CompleteVerdict, LOCAL_PREFIX};
use argus_faults::campaign::{
    prepare_campaign, run_injection_supervised_in, CampaignConfig, CampaignWorkspace, ExecStats,
    SupervisedOutcome,
};
use argus_faults::Outcome;
use argus_invariants::{Hook, InvariantCtx};
use argus_orchestrator::{
    complement, ledger_view, CampaignTally, Checkpoint, CheckpointError, Fingerprint,
    OrchestratorConfig, OrchestratorError, Progress, ShardedReport,
};
use argus_sim::crc::crc32;
use argus_sim::supervise::Anomaly;
use argus_snapshot::io::snapshot_to_vec;
use argus_workloads::Workload;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Distributed-specific knobs on top of the orchestrator config.
#[derive(Debug, Clone)]
pub struct DistributedConfig {
    /// Daemon job id, quoted in the manifest so a worker polling
    /// `/work` can tell jobs apart.
    pub job: u64,
    /// Lease time-to-live. Workers heartbeat at a third of this; a
    /// worker silent for a full TTL forfeits its chunks.
    pub lease_ttl: Duration,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        Self { job: 0, lease_ttl: Duration::from_secs(10) }
    }
}

/// Runs a campaign with its pool opened for remote leasing.
///
/// `ocfg.shards` is the *local* worker count and — unlike
/// `run_sharded` — may be 0 for a remote-only run (the bench uses this
/// to measure pure wire throughput). `progress` must have
/// `max(shards, 1)` shards: remote completions are replayed into shard
/// 0 by the coordinator loop, so live progress tracks the whole
/// campaign, not just local work.
///
/// `on_ready` fires once the share is constructed and leasable, before
/// any work runs — the daemon uses it to publish the share in its
/// routing registry. The caller deregisters after this returns.
pub fn run_distributed(
    w: &Workload,
    cfg: &CampaignConfig,
    ocfg: &OrchestratorConfig,
    dcfg: &DistributedConfig,
    stop: &AtomicBool,
    progress: &Progress,
    on_ready: &(dyn Fn(&Arc<CampaignShare>) + Sync),
) -> Result<ShardedReport, OrchestratorError> {
    if ocfg.chunk == 0 {
        return Err(OrchestratorError::Config("chunk must be >= 1".into()));
    }
    if ocfg.strict {
        return Err(OrchestratorError::Config(
            "strict mode is a local-debugging tool; distributed runs always supervise".into(),
        ));
    }
    assert_eq!(
        progress.shards(),
        ocfg.shards.max(1),
        "progress must have max(shards, 1) shards (shard 0 carries remote completions)"
    );
    let cfg = &cfg.sized_for(w);
    let started = Instant::now();

    let fingerprint = Fingerprint {
        workload: w.name.to_owned(),
        injections: cfg.injections,
        seed: cfg.seed,
        kind: cfg.kind,
        structural_mask: cfg.structural_mask,
    };

    // Identical resume semantics to run_sharded: the checkpoint is
    // worker-count independent, so a file written by a local run
    // resumes distributed and vice versa.
    let mut initial = Checkpoint::empty(fingerprint.clone());
    let mut recovery_warnings: Vec<String> = Vec::new();
    let mut used_backup_checkpoint = false;
    if ocfg.resume {
        let path = ocfg
            .checkpoint_path
            .as_deref()
            .ok_or_else(|| OrchestratorError::Config("resume needs a checkpoint path".into()))?;
        if path.exists() {
            let rec = Checkpoint::load_resilient(path);
            recovery_warnings = rec.warnings;
            used_backup_checkpoint = rec.used_backup;
            if let Some(saved) = rec.checkpoint {
                saved.check_matches(&fingerprint)?;
                initial = saved;
            }
        }
    }

    let resumed = initial.completed();
    let resumed_anomalies = [initial.tally.quarantine.len() as u64, initial.tally.hung];
    progress.begin(
        cfg.injections as u64,
        resumed as u64,
        initial.tally.outcomes,
        resumed_anomalies,
        &vec![0; progress.shards()],
    );

    let prep = prepare_campaign(w, cfg);
    let inv = prep.invariants().clone();
    // Post-load audit: the resumed ledger must already satisfy the
    // conservation invariants before the pool opens — a checkpoint that
    // lost quarantine records or double-counted a range is caught here,
    // not after hours of distributed work.
    if inv.enabled() {
        inv.run_hook(
            Hook::Checkpoint,
            &InvariantCtx::Ledger(ledger_view(cfg.injections, &initial.done, &initial.tally)),
        );
    }

    // The golden-entry artifact: cycle 0, image loaded, entry DCS armed.
    // A cold-starting worker rebuilds the same state from the manifest
    // and fingerprint-checks it against this — catching binary or
    // config skew before a single injection runs on the wrong campaign.
    let entry_bytes = {
        let (m, argus) = prep.entry_state(cfg);
        snapshot_to_vec(&m, &argus)
            .map_err(|e| OrchestratorError::Config(format!("cannot build entry artifact: {e}")))?
    };
    let entry_crc = crc32(&entry_bytes);
    let mut artifact_refs =
        vec![ArtifactRef { name: "entry".into(), crc32: entry_crc, len: entry_bytes.len() }];
    let mut artifact_bodies = vec![(entry_crc, entry_bytes)];
    // A mapped snapshot store is served straight from the sealed ARGSTORE
    // bytes behind the coordinator's own map — no re-serialization, one
    // copy per fetch. Workers that adopt it skip the whole checkpoint
    // capture on their side (see `prepare_campaign_with_store`).
    if let Some(store) = prep.snapshot_store().and_then(|s| s.mapped()) {
        let body = store.file_bytes().to_vec();
        let store_crc = crc32(&body);
        artifact_refs.push(ArtifactRef { name: "store".into(), crc32: store_crc, len: body.len() });
        artifact_bodies.push((store_crc, body));
    }
    let manifest = Manifest {
        version: PROTOCOL_VERSION,
        job: dcfg.job,
        workload: w.name.to_owned(),
        injections: cfg.injections,
        seed: cfg.seed,
        kind: cfg.kind,
        snapshot_every: cfg.snapshot_every,
        golden_cycles: prep.golden_cycles(),
        lease_ttl_ms: dcfg.lease_ttl.as_millis() as u64,
        invariants: cfg.invariants,
        artifacts: artifact_refs,
    };

    let pool =
        LeasePool::new(complement(&initial.done, cfg.injections), ocfg.chunk, dcfg.lease_ttl);
    let share = Arc::new(CampaignShare::new(
        manifest,
        artifact_bodies,
        pool,
        initial.done,
        initial.tally.clone(),
        cfg.injections,
    ));
    on_ready(&share);

    let flush_failures = AtomicU64::new(0);
    let flush_degraded = AtomicBool::new(false);
    let worker_stats: Mutex<Vec<Option<(Duration, Duration, ExecStats)>>> =
        Mutex::new(vec![None; ocfg.shards]);
    let quarantine_abort = AtomicBool::new(false);

    let snapshot_all = |share: &CampaignShare| -> Checkpoint {
        let (done, tally) = share.checkpoint_state();
        Checkpoint { fingerprint: fingerprint.clone(), done, tally }
    };

    std::thread::scope(|scope| {
        for k in 0..ocfg.shards {
            let share = &share;
            let prep = &prep;
            let worker_stats = &worker_stats;
            scope.spawn(move || {
                let worker = format!("{LOCAL_PREFIX}{k}");
                let mut ws = CampaignWorkspace::new();
                let mut busy = Duration::ZERO;
                let mut exec_total = ExecStats::default();
                'work: loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    match share.lease(&worker, Instant::now()) {
                        crate::protocol::LeaseReply::Grant { chunk, range, .. } => {
                            progress.record_lease(false);
                            let mut tally = CampaignTally::empty();
                            // Arm-cycle order: result-identical for any
                            // order, but armed neighbors share a snapshot
                            // so warm-workspace restores stay cheap.
                            let mut order: Vec<usize> = range.clone().collect();
                            order.sort_by_key(|&i| prep.arm_cycle_of(cfg, i));
                            for index in order {
                                if stop.load(Ordering::Relaxed) {
                                    // Abandon mid-chunk: the partial
                                    // tally is discarded and the whole
                                    // range re-leases — determinism
                                    // makes the re-run identical.
                                    share.release(chunk);
                                    break 'work;
                                }
                                let t0 = Instant::now();
                                let sup = run_injection_supervised_in(prep, cfg, index, &mut ws);
                                let spent = t0.elapsed();
                                busy += spent;
                                progress.add_busy(spent);
                                let ex = ws.take_exec_stats();
                                exec_total.merge(&ex);
                                progress.add_exec(&ex);
                                match sup {
                                    SupervisedOutcome::Classified(r) => tally.apply(&r),
                                    SupervisedOutcome::Hung { .. } => tally.apply_hung(),
                                    SupervisedOutcome::Quarantined(q) => tally.apply_quarantined(q),
                                }
                            }
                            if let CompleteVerdict::Accepted { done: true }
                            | CompleteVerdict::Duplicate { done: true } =
                                share.complete(&worker, chunk, &range, &tally)
                            {
                                break;
                            }
                        }
                        crate::protocol::LeaseReply::Empty { done } => {
                            if done {
                                break;
                            }
                            // Everything is leased out (possibly to
                            // remote workers); wait for a completion or
                            // an expiry to refill the pool.
                            std::thread::sleep(Duration::from_millis(5));
                        }
                    }
                }
                worker_stats.lock().unwrap_or_else(|e| e.into_inner())[k] =
                    Some((busy, started.elapsed(), exec_total));
                progress.shard_finished(k);
            });
        }

        // Coordinator loop (caller's thread, inside the scope): expiry
        // sweeps, progress replay, quarantine-limit enforcement, and
        // periodic checkpoints — for local *and* remote completions.
        let mut last_flush = Instant::now();
        let mut published_outcomes = initial.tally.outcomes;
        let mut published_anomalies = resumed_anomalies; // [quarantined, hung]
        let mut last_covered = 0usize;
        loop {
            let finished = share.finished();
            let stopping = stop.load(Ordering::Relaxed);
            share.expire(Instant::now());

            // Replay completion deltas (whoever ran them) into shard 0
            // so live progress tracks the whole campaign.
            let (done, tally) = share.checkpoint_state();
            for o in Outcome::ALL {
                let i = o.index();
                for _ in published_outcomes[i]..tally.outcomes[i] {
                    progress.record(0, o);
                }
                published_outcomes[i] = tally.outcomes[i];
            }
            for _ in published_anomalies[0]..tally.quarantine.len() as u64 {
                progress.record_anomaly(0, Anomaly::Quarantined);
            }
            published_anomalies[0] = tally.quarantine.len() as u64;
            for _ in published_anomalies[1]..tally.hung {
                progress.record_anomaly(0, Anomaly::Hung);
            }
            published_anomalies[1] = tally.hung;

            // Fold remote workers' invariant deltas into the engine,
            // then audit the merged ledger whenever coverage moved —
            // the same conservation checks a local run gets per chunk.
            if inv.enabled() {
                for remote_stats in share.take_invariants() {
                    inv.absorb_remote(&remote_stats);
                }
                let covered = done.iter().map(|r| r.len()).sum::<usize>();
                if covered != last_covered {
                    last_covered = covered;
                    inv.run_hook(
                        Hook::ChunkComplete,
                        &InvariantCtx::Ledger(ledger_view(cfg.injections, &done, &tally)),
                    );
                }
                progress.set_invariant_violations(inv.violations());
            }

            if tally.quarantine.len() > ocfg.quarantine_limit {
                quarantine_abort.store(true, Ordering::Release);
                stop.store(true, Ordering::Release);
            }

            if let Some(path) = ocfg.checkpoint_path.as_deref() {
                if last_flush.elapsed() >= ocfg.checkpoint_interval {
                    match snapshot_all(&share).save_with_retry(
                        path,
                        ocfg.flush_retries,
                        ocfg.flush_backoff,
                    ) {
                        Ok(0) => {}
                        Ok(failed) => {
                            flush_failures.fetch_add(u64::from(failed), Ordering::Relaxed);
                            flush_degraded.store(true, Ordering::Relaxed);
                            progress.set_degraded(true);
                        }
                        Err(_) => {
                            flush_failures
                                .fetch_add(u64::from(ocfg.flush_retries) + 1, Ordering::Relaxed);
                            flush_degraded.store(true, Ordering::Relaxed);
                            progress.set_degraded(true);
                        }
                    }
                    last_flush = Instant::now();
                }
            }

            if finished || stopping {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    });

    let interrupted = stop.load(Ordering::Relaxed) && !share.finished();
    // A completion can land between the coordinator loop's last drain
    // and the pool closing; fold any straggler deltas before reporting.
    for remote_stats in share.take_invariants() {
        inv.absorb_remote(&remote_stats);
    }
    progress.set_invariant_violations(inv.violations());
    let final_cp = snapshot_all(&share);
    if let Some(path) = ocfg.checkpoint_path.as_deref() {
        match final_cp.save_with_retry(path, ocfg.flush_retries, ocfg.flush_backoff) {
            Ok(0) => {}
            Ok(failed) => {
                flush_failures.fetch_add(u64::from(failed), Ordering::Relaxed);
                flush_degraded.store(true, Ordering::Relaxed);
                progress.set_degraded(true);
            }
            Err(e) => return Err(CheckpointError::from(e).into()),
        }
    }
    progress.finish();

    if quarantine_abort.load(Ordering::Acquire) {
        return Err(OrchestratorError::Supervision(format!(
            "{} injections quarantined (limit {}); progress checkpointed, tallies would be \
             misleading",
            final_cp.tally.quarantine.len(),
            ocfg.quarantine_limit
        )));
    }

    let completed = final_cp.completed();
    let tally = final_cp.tally;
    let stats = worker_stats.into_inner().unwrap_or_else(|e| e.into_inner());
    let busy = stats.iter().flatten().map(|&(b, _, _)| b).sum();
    let finishes: Vec<Duration> = stats.iter().flatten().map(|&(_, f, _)| f).collect();
    let mut exec = ExecStats::default();
    for &(_, _, e) in stats.iter().flatten() {
        exec.merge(&e);
    }
    let tail_imbalance = match (finishes.iter().min(), finishes.iter().max()) {
        (Some(&lo), Some(&hi)) => hi - lo,
        _ => Duration::ZERO,
    };
    recovery_warnings.extend(prep.take_snapshot_warnings());

    Ok(ShardedReport {
        outcomes: tally.outcomes,
        attribution: tally.attribution,
        latency: tally.latency,
        exercised: tally.exercised,
        completed,
        completed_this_run: completed - resumed,
        total: cfg.injections,
        kind: cfg.kind,
        golden_cycles: prep.golden_cycles(),
        elapsed: started.elapsed(),
        shards: ocfg.shards,
        chunk: ocfg.chunk,
        leases: share.leases(),
        // No home regions in the distributed pool — every grant is
        // first-fit, so the steal count is not meaningful here.
        steals: 0,
        busy,
        tail_imbalance,
        interrupted,
        snapshot_every: cfg.snapshot_every,
        snapshots: prep.snapshot_store().map_or(0, |s| s.len()),
        hung: tally.hung,
        quarantine: tally.quarantine,
        degraded: flush_degraded.load(Ordering::Relaxed),
        flush_failures: flush_failures.load(Ordering::Relaxed),
        snapshot_fallbacks: prep.snapshot_fallbacks(),
        exec,
        golden_exec: prep.golden_exec(),
        recovery_warnings,
        used_backup_checkpoint,
        remote: Some(share.stats()),
        invariants: inv.stats(),
    })
}
