//! The coordinator-side shared campaign: one lock around the lease
//! pool, the completed-range set, and the merged tally.
//!
//! This is what a daemon job *is* while it runs distributed: HTTP
//! handler threads call [`CampaignShare::lease`] / [`CampaignShare::complete`] /
//! [`CampaignShare::heartbeat`] on behalf of remote workers, the
//! coordinator's local worker threads call the same methods (worker ids
//! prefixed `local:`), and the coordinator loop calls
//! [`CampaignShare::expire`] and snapshots checkpoints. Because every
//! completion goes through the same dedup gate, the merged tally is
//! bit-identical to a serial run regardless of who ran what, how often
//! leases expired, or how many duplicate completions arrived.

use crate::lease::{LeaseGrant, LeasePool};
use crate::protocol::{CompleteReply, LeaseReply, Manifest};
use argus_invariants::InvariantStats;
use argus_orchestrator::{mark_range_done, range_overlap, CampaignTally, RemoteRunStats};
use std::collections::HashSet;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Verdict of a completion post, before it is shaped into a
/// [`CompleteReply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompleteVerdict {
    /// Fresh work: tally merged, range marked done.
    Accepted { done: bool },
    /// Exact duplicate of completed work: dropped, harmless.
    Duplicate { done: bool },
    /// Partial overlap with completed work — impossible under the
    /// protocol (whole-range reissue + all-or-nothing completion), so it
    /// means the poster is broken or speaking a different campaign.
    Conflict(String),
}

#[derive(Debug)]
struct ShareInner {
    pool: LeasePool,
    done: Vec<Range<usize>>,
    tally: CampaignTally,
    stats: RemoteRunStats,
    /// Distinct remote worker names ever granted a lease.
    remote_workers: HashSet<String>,
    /// Invariant deltas posted by remote workers, awaiting absorption
    /// into the coordinator's engine (drained by the coordinator loop).
    pending_invariants: Vec<InvariantStats>,
}

/// One distributed campaign's shared state. The daemon keeps an
/// `Arc<CampaignShare>` in its routing registry while the job runs.
#[derive(Debug)]
pub struct CampaignShare {
    /// The manifest served to cold-starting workers.
    pub manifest: Manifest,
    /// Content-addressed artifact bodies: `(crc32, ARGSNAP bytes)`.
    artifacts: Vec<(u32, Vec<u8>)>,
    inner: Mutex<ShareInner>,
    artifact_fetches: AtomicU64,
    artifact_cache_hits: AtomicU64,
    total: usize,
}

/// Worker-name prefix the coordinator's own threads use; everything
/// else counts as a remote worker in the run accounting.
pub const LOCAL_PREFIX: &str = "local:";

impl CampaignShare {
    /// `pool` is the unfinished-range complement of `done` (the caller
    /// computed both from the resumed checkpoint, or fresh).
    pub fn new(
        manifest: Manifest,
        artifacts: Vec<(u32, Vec<u8>)>,
        pool: LeasePool,
        done: Vec<Range<usize>>,
        tally: CampaignTally,
        total: usize,
    ) -> Self {
        Self {
            manifest,
            artifacts,
            inner: Mutex::new(ShareInner {
                pool,
                done,
                tally,
                stats: RemoteRunStats::default(),
                remote_workers: HashSet::new(),
                pending_invariants: Vec::new(),
            }),
            artifact_fetches: AtomicU64::new(0),
            artifact_cache_hits: AtomicU64::new(0),
            total,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ShareInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Serves an artifact body by its CRC-32 hex address.
    pub fn artifact(&self, crc_hex: &str) -> Option<Vec<u8>> {
        let crc = u32::from_str_radix(crc_hex, 16).ok()?;
        let body = self.artifacts.iter().find(|(c, _)| *c == crc).map(|(_, b)| b.clone())?;
        self.artifact_fetches.fetch_add(1, Ordering::Relaxed);
        Some(body)
    }

    /// Records artifact bodies a worker resolved from its on-disk cache
    /// instead of fetching. Reported once per job join on the worker's
    /// first accepted completion, so duplicates never double-count.
    pub fn note_artifact_cache_hits(&self, n: u64) {
        self.artifact_cache_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Grants a lease to `worker` (see [`LeasePool::lease`]).
    pub fn lease(&self, worker: &str, now: Instant) -> LeaseReply {
        let mut g = self.lock();
        if !worker.starts_with(LOCAL_PREFIX) && g.remote_workers.insert(worker.to_owned()) {
            g.stats.workers_seen += 1;
        }
        match g.pool.lease(worker, now) {
            Some(LeaseGrant { chunk, range }) => LeaseReply::Grant {
                chunk,
                range,
                ttl_ms: g.pool.ttl().as_millis() as u64,
                remaining: g.pool.unleased(),
                outstanding: g.pool.outstanding(),
            },
            None => LeaseReply::Empty { done: g.pool.drained() },
        }
    }

    /// The dedup gate. Every completion — local, remote, duplicate,
    /// stale-after-expiry — funnels through here under one lock.
    pub fn complete(
        &self,
        worker: &str,
        chunk: u64,
        range: &Range<usize>,
        tally: &CampaignTally,
    ) -> CompleteVerdict {
        let mut g = self.lock();
        let (overlaps, covered) = range_overlap(&g.done, range);
        if overlaps && covered {
            // Exact duplicate (reissue grants ranges verbatim, so any
            // overlap with completed work is total). The duplicate's
            // tally is byte-equal to the merged one; dropping it is the
            // idempotent choice.
            g.stats.duplicate_completes += 1;
            g.pool.complete(chunk, range);
            return CompleteVerdict::Duplicate { done: self.finished_locked(&g) };
        }
        if overlaps {
            return CompleteVerdict::Conflict(format!(
                "range {}..{} partially overlaps completed work — protocol violation",
                range.start, range.end
            ));
        }
        mark_range_done(&mut g.done, range.clone());
        g.tally.merge(tally);
        if argus_sim::canary::enabled("canary-lease-double-complete") {
            // Seeded bug: merge the accepted tally a second time, as if
            // the dedup gate let a duplicate post through. The merged
            // tally then accounts more injections than the done ranges
            // cover, which `tally-accounts-done` flags at the next
            // ledger hook.
            g.tally.merge(tally);
        }
        g.pool.complete(chunk, range);
        if worker.starts_with(LOCAL_PREFIX) {
            g.stats.local_chunks += 1;
        } else {
            g.stats.remote_chunks += 1;
        }
        CompleteVerdict::Accepted { done: self.finished_locked(&g) }
    }

    /// Queues a remote worker's invariant delta for the coordinator to
    /// absorb. Called only for *accepted* completions — a duplicate
    /// post's checks already counted the first time.
    pub fn absorb_invariants(&self, stats: InvariantStats) {
        if !stats.is_empty() {
            self.lock().pending_invariants.push(stats);
        }
    }

    /// Drains the queued remote invariant deltas.
    pub fn take_invariants(&self) -> Vec<InvariantStats> {
        std::mem::take(&mut self.lock().pending_invariants)
    }

    /// Renews `worker`'s leases; returns the renewed count.
    pub fn heartbeat(&self, worker: &str, chunks: &[u64], now: Instant) -> usize {
        self.lock().pool.heartbeat(worker, chunks, now)
    }

    /// Releases an abandoned local chunk back to the front of the pool.
    pub fn release(&self, chunk: u64) {
        self.lock().pool.release(chunk);
    }

    /// Expires overdue leases; returns the expired `(chunk, range,
    /// worker)` grants for event logging.
    pub fn expire(&self, now: Instant) -> Vec<(u64, Range<usize>, String)> {
        let mut g = self.lock();
        let expired = g.pool.expire(now);
        g.stats.expired_leases += expired.len() as u64;
        expired
    }

    fn finished_locked(&self, g: &ShareInner) -> bool {
        g.done.iter().map(Range::len).sum::<usize>() == self.total
    }

    /// True once every injection index is completed.
    pub fn finished(&self) -> bool {
        let g = self.lock();
        self.finished_locked(&g)
    }

    /// Lease TTL in milliseconds (for heartbeat replies).
    pub fn ttl_ms(&self) -> u64 {
        self.lock().pool.ttl().as_millis() as u64
    }

    /// Copies out `(done, tally)` for a checkpoint flush.
    pub fn checkpoint_state(&self) -> (Vec<Range<usize>>, CampaignTally) {
        let g = self.lock();
        (g.done.clone(), g.tally.clone())
    }

    /// Current run accounting (artifact fetches folded in).
    pub fn stats(&self) -> RemoteRunStats {
        let mut s = self.lock().stats.clone();
        s.artifact_fetches = self.artifact_fetches.load(Ordering::Relaxed);
        s.artifact_cache_hits = self.artifact_cache_hits.load(Ordering::Relaxed);
        s
    }

    /// Grants handed out so far (the report's `leases` figure).
    pub fn leases(&self) -> u64 {
        self.lock().pool.leases
    }

    /// Leases currently outstanding (granted, neither completed nor
    /// expired) — the daemon's "leases outstanding" gauge.
    pub fn outstanding(&self) -> usize {
        self.lock().pool.outstanding()
    }

    /// Shapes a [`CompleteVerdict`] into the wire reply; `Conflict`
    /// stays an error for the HTTP layer to turn into a 409.
    pub fn reply_for(v: &CompleteVerdict) -> Result<CompleteReply, String> {
        match v {
            CompleteVerdict::Accepted { done } => {
                Ok(CompleteReply { accepted: true, duplicate: false, done: *done })
            }
            CompleteVerdict::Duplicate { done } => {
                Ok(CompleteReply { accepted: false, duplicate: true, done: *done })
            }
            CompleteVerdict::Conflict(msg) => Err(msg.clone()),
        }
    }
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;
    use crate::protocol::PROTOCOL_VERSION;
    use argus_sim::fault::FaultKind;
    use std::time::Duration;

    fn manifest(n: usize) -> Manifest {
        Manifest {
            version: PROTOCOL_VERSION,
            job: 1,
            workload: "stress".into(),
            injections: n,
            seed: 7,
            kind: FaultKind::Transient,
            snapshot_every: None,
            golden_cycles: 100,
            lease_ttl_ms: 10_000,
            invariants: Default::default(),
            artifacts: vec![],
        }
    }

    fn share(n: usize) -> CampaignShare {
        let pool = LeasePool::new(vec![0..n], 4, Duration::from_secs(10));
        CampaignShare::new(manifest(n), vec![], pool, Vec::new(), CampaignTally::empty(), n)
    }

    fn chunk_tally(len: usize) -> CampaignTally {
        let mut t = CampaignTally::empty();
        for _ in 0..len {
            t.apply_hung();
        }
        t
    }

    #[test]
    fn duplicate_complete_is_idempotent() {
        let s = share(4);
        let now = Instant::now();
        let LeaseReply::Grant { chunk, range, .. } = s.lease("w1", now) else {
            panic!("grant expected")
        };
        let t = chunk_tally(range.len());
        assert!(matches!(s.complete("w1", chunk, &range, &t), CompleteVerdict::Accepted { .. }));
        // Same post again — e.g. the worker's reply got lost and it
        // retried — must be recognized and dropped.
        assert!(matches!(s.complete("w1", chunk, &range, &t), CompleteVerdict::Duplicate { .. }));
        let (_, tally) = s.checkpoint_state();
        assert_eq!(tally.accounted(), range.len() as u64, "merged exactly once");
        assert_eq!(s.stats().duplicate_completes, 1);
    }

    #[test]
    fn partial_overlap_is_a_conflict() {
        let s = share(8);
        let now = Instant::now();
        let LeaseReply::Grant { chunk, range, .. } = s.lease("w1", now) else {
            panic!("grant expected")
        };
        s.complete("w1", chunk, &range, &chunk_tally(range.len()));
        let bogus = range.start..range.end + 1;
        assert!(matches!(
            s.complete("w2", 999, &bogus, &chunk_tally(bogus.len())),
            CompleteVerdict::Conflict(_)
        ));
    }

    #[test]
    fn drain_to_finished_counts_worker_split() {
        let s = share(6);
        let now = Instant::now();
        let mut turn = 0usize;
        loop {
            let who = if turn.is_multiple_of(2) { "local:0" } else { "remote-a" };
            turn += 1;
            match s.lease(who, now) {
                LeaseReply::Grant { chunk, range, .. } => {
                    let v = s.complete(who, chunk, &range, &chunk_tally(range.len()));
                    if matches!(v, CompleteVerdict::Accepted { done: true }) {
                        break;
                    }
                }
                LeaseReply::Empty { done } => {
                    assert!(done, "pool empty with nothing outstanding must be final");
                    break;
                }
            }
        }
        assert!(s.finished());
        let stats = s.stats();
        assert!(stats.local_chunks > 0 && stats.remote_chunks > 0);
        assert_eq!(stats.workers_seen, 1, "only the remote worker counts");
    }
}
