//! Wire messages of the distributed lease protocol.
//!
//! Everything except artifact bodies travels as hand-rolled JSON (the
//! repo's `argus_orchestrator::Json`, no external parsers). Artifact
//! bodies are raw ARGSNAP images — a CRC-carrying binary envelope of
//! their own — addressed by the CRC-32 of the whole body, so the URL
//! *is* the integrity check.
//!
//! The protocol, all rooted under the daemon's `/jobs/<id>` tree:
//!
//! | verb | path | body → reply |
//! |------|------|--------------|
//! | GET  | `/work` | — → `{"jobs":[id,…]}` (running distributed jobs) |
//! | GET  | `/jobs/<id>/manifest` | — → [`Manifest`] |
//! | GET  | `/jobs/<id>/artifacts/<crc-hex>` | — → raw ARGSNAP bytes |
//! | POST | `/jobs/<id>/lease` | `{"worker":w}` → [`LeaseReply`] |
//! | POST | `/jobs/<id>/complete` | [`CompleteRequest`] → [`CompleteReply`] |
//! | POST | `/jobs/<id>/heartbeat` | `{"worker":w,"chunks":[…]}` → `{"renewed":k,"ttl_ms":t}` |

use argus_invariants::{InvariantMode, InvariantStats};
use argus_orchestrator::{tally_from_json, tally_to_json, CampaignTally, Json};
use argus_sim::fault::FaultKind;
use std::ops::Range;

/// Protocol revision. A worker refuses a manifest whose version it does
/// not speak rather than silently misinterpreting chunk boundaries.
pub const PROTOCOL_VERSION: u64 = 1;

/// One content-addressed artifact a cold-starting worker must fetch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactRef {
    /// Role of the artifact (today always `"entry"`: the golden-entry
    /// snapshot used to fingerprint-check the worker's reconstruction).
    pub name: String,
    /// CRC-32 (IEEE) of the whole body — also its address in the URL.
    pub crc32: u32,
    /// Body length in bytes, so the client can sanity-check truncation.
    pub len: usize,
}

/// Everything a worker needs to reconstruct the campaign from nothing
/// but a URL: the workload by name (workloads are compiled into every
/// binary), the campaign spec, and the artifact list to verify against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    pub version: u64,
    /// Daemon job id this manifest describes.
    pub job: u64,
    /// Workload name (resolved against the compiled-in suite).
    pub workload: String,
    /// Total planned injections.
    pub injections: usize,
    /// Campaign seed — with an injection index, fully determines one run.
    pub seed: u64,
    pub kind: FaultKind,
    pub snapshot_every: Option<u64>,
    /// Golden-run length the coordinator measured; the worker's own
    /// golden run must agree or its binary differs from the daemon's.
    pub golden_cycles: u64,
    /// Lease time-to-live; a worker heartbeats at a fraction of this.
    pub lease_ttl_ms: u64,
    /// Invariant-checking density the coordinator runs under; workers
    /// adopt the same mode so both halves audit the campaign equally.
    pub invariants: InvariantMode,
    pub artifacts: Vec<ArtifactRef>,
}

impl Manifest {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("version", self.version)
            .set("job", self.job)
            .set("workload", self.workload.as_str())
            .set("n", self.injections)
            .set("seed", self.seed)
            .set("kind", kind_label(self.kind))
            .set("snapshot_every", self.snapshot_every.map_or(Json::Null, Json::from))
            .set("golden_cycles", self.golden_cycles)
            .set("lease_ttl_ms", self.lease_ttl_ms)
            .set("invariants", self.invariants.label())
            .set(
                "artifacts",
                Json::Arr(
                    self.artifacts
                        .iter()
                        .map(|a| {
                            Json::obj()
                                .set("name", a.name.as_str())
                                .set("crc32", format!("{:08x}", a.crc32).as_str())
                                .set("len", a.len)
                        })
                        .collect(),
                ),
            )
    }

    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let version =
            doc.get("version").and_then(Json::as_u64).ok_or("manifest missing version")?;
        if version != PROTOCOL_VERSION {
            return Err(format!(
                "manifest speaks protocol v{version}, this worker speaks v{PROTOCOL_VERSION}"
            ));
        }
        let job = doc.get("job").and_then(Json::as_u64).ok_or("manifest missing job")?;
        let workload = doc
            .get("workload")
            .and_then(Json::as_str)
            .ok_or("manifest missing workload")?
            .to_owned();
        let injections = doc.get("n").and_then(Json::as_u64).ok_or("manifest missing n")? as usize;
        let seed = doc.get("seed").and_then(Json::as_u64).ok_or("manifest missing seed")?;
        let kind = match doc.get("kind").and_then(Json::as_str) {
            Some("transient") => FaultKind::Transient,
            Some("permanent") => FaultKind::Permanent,
            _ => return Err("manifest kind must be transient|permanent".into()),
        };
        let snapshot_every = match doc.get("snapshot_every") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or("manifest snapshot_every must be an integer")?),
        };
        let golden_cycles = doc
            .get("golden_cycles")
            .and_then(Json::as_u64)
            .ok_or("manifest missing golden_cycles")?;
        let lease_ttl_ms = doc
            .get("lease_ttl_ms")
            .and_then(Json::as_u64)
            .ok_or("manifest missing lease_ttl_ms")?;
        let invariants = match doc.get("invariants").and_then(Json::as_str) {
            None => InvariantMode::default(),
            Some(s) => {
                InvariantMode::parse(s).ok_or("manifest invariants must be off|sampled|full")?
            }
        };
        let mut artifacts = Vec::new();
        for a in doc.get("artifacts").and_then(Json::as_arr).ok_or("manifest missing artifacts")? {
            let name =
                a.get("name").and_then(Json::as_str).ok_or("artifact missing name")?.to_owned();
            let crc_hex = a.get("crc32").and_then(Json::as_str).ok_or("artifact missing crc32")?;
            let crc32 = u32::from_str_radix(crc_hex, 16)
                .map_err(|_| format!("artifact crc32 `{crc_hex}` is not hex"))?;
            let len = a.get("len").and_then(Json::as_u64).ok_or("artifact missing len")? as usize;
            artifacts.push(ArtifactRef { name, crc32, len });
        }
        Ok(Self {
            version,
            job,
            workload,
            injections,
            seed,
            kind,
            snapshot_every,
            golden_cycles,
            lease_ttl_ms,
            invariants,
            artifacts,
        })
    }
}

/// Serializes [`InvariantStats`] for the wire (completion posts).
pub fn invariant_stats_to_json(s: &InvariantStats) -> Json {
    Json::obj()
        .set("mode", s.mode.as_str())
        .set("checks_run", s.checks_run)
        .set("violations", s.violations)
        .set(
            "per_invariant",
            Json::Obj(s.per_invariant.iter().map(|(k, v)| (k.clone(), (*v).into())).collect()),
        )
        .set(
            "examples",
            Json::Arr(
                s.examples
                    .iter()
                    .map(|(name, detail)| {
                        Json::obj().set("invariant", name.as_str()).set("detail", detail.as_str())
                    })
                    .collect(),
            ),
        )
}

/// Parses [`InvariantStats`] from the wire.
pub fn invariant_stats_from_json(doc: &Json) -> Result<InvariantStats, String> {
    let mode = doc.get("mode").and_then(Json::as_str).unwrap_or_default().to_owned();
    let checks_run = doc.get("checks_run").and_then(Json::as_u64).unwrap_or(0);
    let violations = doc.get("violations").and_then(Json::as_u64).unwrap_or(0);
    let mut per_invariant = Vec::new();
    if let Some(obj) = doc.get("per_invariant").and_then(Json::as_obj) {
        for (name, count) in obj {
            let c = count.as_u64().ok_or("invariant count must be an integer")?;
            per_invariant.push((name.clone(), c));
        }
    }
    let mut examples = Vec::new();
    if let Some(arr) = doc.get("examples").and_then(Json::as_arr) {
        for ex in arr {
            let name =
                ex.get("invariant").and_then(Json::as_str).ok_or("example missing invariant")?;
            let detail = ex.get("detail").and_then(Json::as_str).ok_or("example missing detail")?;
            examples.push((name.to_owned(), detail.to_owned()));
        }
    }
    Ok(InvariantStats { mode, checks_run, violations, per_invariant, examples })
}

pub fn kind_label(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Transient => "transient",
        FaultKind::Permanent => "permanent",
    }
}

/// Reply to a lease request: a chunk grant, or "nothing leasable right
/// now" with `done` saying whether that is final.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseReply {
    Grant {
        /// Coordinator-unique chunk id; `complete` and `heartbeat` quote it.
        chunk: u64,
        range: Range<usize>,
        ttl_ms: u64,
        /// Unleased injections left in the pool after this grant.
        remaining: usize,
        /// Leases outstanding (including this one).
        outstanding: usize,
    },
    /// No chunk available. `done`: the campaign has fully completed —
    /// stop polling. `!done`: all remaining work is leased out; poll
    /// again (an expiry may return chunks to the pool).
    Empty { done: bool },
}

impl LeaseReply {
    pub fn to_json(&self) -> Json {
        match self {
            Self::Grant { chunk, range, ttl_ms, remaining, outstanding } => Json::obj()
                .set("chunk", *chunk)
                .set("start", range.start)
                .set("end", range.end)
                .set("ttl_ms", *ttl_ms)
                .set("remaining", *remaining)
                .set("outstanding", *outstanding),
            Self::Empty { done } => Json::obj().set("chunk", Json::Null).set("done", *done),
        }
    }

    pub fn from_json(doc: &Json) -> Result<Self, String> {
        match doc.get("chunk") {
            Some(Json::Null) => {
                let done = doc.get("done").and_then(Json::as_bool).unwrap_or(false);
                Ok(Self::Empty { done })
            }
            Some(v) => {
                let chunk = v.as_u64().ok_or("lease chunk must be an integer")?;
                let start =
                    doc.get("start").and_then(Json::as_u64).ok_or("lease missing start")? as usize;
                let end =
                    doc.get("end").and_then(Json::as_u64).ok_or("lease missing end")? as usize;
                if end <= start {
                    return Err(format!("lease range {start}..{end} is empty"));
                }
                let ttl_ms =
                    doc.get("ttl_ms").and_then(Json::as_u64).ok_or("lease missing ttl_ms")?;
                let remaining = doc.get("remaining").and_then(Json::as_u64).unwrap_or(0) as usize;
                let outstanding =
                    doc.get("outstanding").and_then(Json::as_u64).unwrap_or(0) as usize;
                Ok(Self::Grant { chunk, range: start..end, ttl_ms, remaining, outstanding })
            }
            None => Err("lease reply missing chunk".into()),
        }
    }
}

/// A chunk completion: the exact leased range plus the tally merged over
/// it. All-or-nothing — a worker never posts a partial chunk, which is
/// what makes any two completions for overlapping work exact duplicates.
#[derive(Debug, Clone)]
pub struct CompleteRequest {
    pub worker: String,
    pub chunk: u64,
    pub range: Range<usize>,
    pub tally: CampaignTally,
    /// Invariant-checking delta accumulated while running this chunk
    /// (empty when the worker checks nothing). The coordinator absorbs
    /// accepted posts so remote violations surface in the final report
    /// exactly like local ones.
    pub invariants: InvariantStats,
    /// Artifact bodies this worker resolved from its on-disk CRC cache
    /// when it joined the job (zero once reported — it rides the first
    /// completion post only, so retries and later chunks never
    /// double-count).
    pub artifact_cache_hits: u64,
}

impl CompleteRequest {
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj()
            .set("worker", self.worker.as_str())
            .set("chunk", self.chunk)
            .set("start", self.range.start)
            .set("end", self.range.end)
            .set("tally", tally_to_json(&self.tally));
        if !self.invariants.is_empty() {
            doc = doc.set("invariants", invariant_stats_to_json(&self.invariants));
        }
        if self.artifact_cache_hits > 0 {
            doc = doc.set("artifact_cache_hits", self.artifact_cache_hits);
        }
        doc
    }

    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let worker =
            doc.get("worker").and_then(Json::as_str).ok_or("complete missing worker")?.to_owned();
        let chunk = doc.get("chunk").and_then(Json::as_u64).ok_or("complete missing chunk")?;
        let start =
            doc.get("start").and_then(Json::as_u64).ok_or("complete missing start")? as usize;
        let end = doc.get("end").and_then(Json::as_u64).ok_or("complete missing end")? as usize;
        if end <= start {
            return Err(format!("complete range {start}..{end} is empty"));
        }
        let tally = tally_from_json(doc.get("tally").ok_or("complete missing tally")?)
            .map_err(|e| format!("complete tally: {e}"))?;
        let got = tally.accounted();
        let want = (end - start) as u64;
        if got != want {
            return Err(format!("complete tally accounts {got} injections, range holds {want}"));
        }
        let invariants = match doc.get("invariants") {
            None | Some(Json::Null) => InvariantStats::default(),
            Some(v) => invariant_stats_from_json(v).map_err(|e| format!("complete: {e}"))?,
        };
        let artifact_cache_hits =
            doc.get("artifact_cache_hits").and_then(Json::as_u64).unwrap_or(0);
        Ok(Self { worker, chunk, range: start..end, tally, invariants, artifact_cache_hits })
    }
}

/// Reply to a completion post.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompleteReply {
    /// The tally was merged (false: recognized duplicate, dropped).
    pub accepted: bool,
    /// This post was a duplicate of already-completed work.
    pub duplicate: bool,
    /// The whole campaign is now complete.
    pub done: bool,
}

impl CompleteReply {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("accepted", self.accepted)
            .set("duplicate", self.duplicate)
            .set("done", self.done)
    }

    pub fn from_json(doc: &Json) -> Result<Self, String> {
        Ok(Self {
            accepted: doc
                .get("accepted")
                .and_then(Json::as_bool)
                .ok_or("complete reply missing accepted")?,
            duplicate: doc.get("duplicate").and_then(Json::as_bool).unwrap_or(false),
            done: doc.get("done").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrips() {
        let m = Manifest {
            version: PROTOCOL_VERSION,
            job: 7,
            workload: "stress".into(),
            injections: 500,
            seed: 42,
            kind: FaultKind::Permanent,
            snapshot_every: Some(256),
            golden_cycles: 12345,
            lease_ttl_ms: 10_000,
            invariants: InvariantMode::Full,
            artifacts: vec![ArtifactRef { name: "entry".into(), crc32: 0xdead_beef, len: 4096 }],
        };
        let back = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        // A manifest from an older coordinator carries no invariants
        // field; the worker defaults rather than refusing it.
        let legacy = {
            let Json::Obj(pairs) = m.to_json() else { panic!("manifest serializes to an object") };
            Json::Obj(pairs.into_iter().filter(|(k, _)| k != "invariants").collect())
        };
        assert_eq!(Manifest::from_json(&legacy).unwrap().invariants, InvariantMode::default());
    }

    #[test]
    fn manifest_rejects_future_protocol() {
        let m = Manifest {
            version: PROTOCOL_VERSION,
            job: 1,
            workload: "stress".into(),
            injections: 1,
            seed: 0,
            kind: FaultKind::Transient,
            snapshot_every: None,
            golden_cycles: 1,
            lease_ttl_ms: 1000,
            invariants: InvariantMode::default(),
            artifacts: vec![],
        };
        let doc = m.to_json().set("version", PROTOCOL_VERSION + 1);
        assert!(Manifest::from_json(&doc).is_err());
    }

    #[test]
    fn lease_reply_roundtrips() {
        let grant = LeaseReply::Grant {
            chunk: 3,
            range: 10..20,
            ttl_ms: 5000,
            remaining: 80,
            outstanding: 2,
        };
        assert_eq!(LeaseReply::from_json(&grant.to_json()).unwrap(), grant);
        let empty = LeaseReply::Empty { done: true };
        assert_eq!(LeaseReply::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn complete_request_validates_accounting() {
        let mut tally = CampaignTally::empty();
        tally.apply_hung();
        let stats = InvariantStats {
            mode: "full".into(),
            checks_run: 12,
            violations: 1,
            per_invariant: vec![("tally-accounts-done".into(), 1)],
            examples: vec![("tally-accounts-done".into(), "accounted 3, covered 4".into())],
        };
        let req = CompleteRequest {
            worker: "w1".into(),
            chunk: 1,
            range: 0..1,
            tally,
            invariants: stats.clone(),
            artifact_cache_hits: 3,
        };
        let back = CompleteRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(back.range, 0..1);
        assert_eq!(back.tally.hung, 1);
        assert_eq!(back.invariants, stats, "invariant delta survives the wire");
        assert_eq!(back.artifact_cache_hits, 3, "cache-hit count survives the wire");
        // A tally accounting fewer injections than the range is a
        // protocol violation, not a partial credit.
        let bad = req.to_json().set("end", 5u64);
        assert!(CompleteRequest::from_json(&bad).is_err());
    }
}
