//! The remote worker runtime behind `argus worker`.
//!
//! A worker cold-starts from nothing but a daemon address: it polls
//! `/work` for running distributed jobs, fetches the job manifest,
//! rebuilds the campaign locally (workloads are compiled into every
//! binary; the manifest names one), and *proves* its reconstruction
//! matches the coordinator's by fingerprint-checking it against the
//! content-addressed golden-entry artifact. Only then does it start
//! leasing chunks. A mismatch — skewed binary, different config
//! defaults — is a hard error before a single injection runs against
//! the wrong campaign.
//!
//! Fault model: the daemon may restart, the network may drop, this
//! process may be SIGKILLed. The first two are handled by
//! reconnect-with-backoff and idempotent completion retries; the last
//! needs no handling at all — the worker's leases expire at the daemon
//! and its chunks re-run elsewhere. SIGTERM is the graceful path: stop
//! taking new leases, finish and post the chunks in flight, exit.

use crate::client::{fetch, fetch_text};
use crate::protocol::{CompleteRequest, LeaseReply, Manifest};
use crate::share::LOCAL_PREFIX;
use argus_faults::campaign::{
    prepare_campaign, prepare_campaign_with_store, run_injection_supervised_in, CampaignConfig,
    CampaignWorkspace, SupervisedOutcome,
};
use argus_invariants::InvariantStats;
use argus_orchestrator::{CampaignTally, Json};
use argus_sim::crc::crc32;
use argus_snapshot::combined_fingerprint;
use argus_snapshot::io::snapshot_from_slice;
use argus_snapshot::mapped::MappedStore;
use std::collections::HashSet;
use std::io;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Worker process configuration (`argus worker` flags).
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Daemon address.
    pub connect: SocketAddr,
    /// Concurrent lease/execute threads.
    pub workers: usize,
    /// Idle poll interval (no distributed jobs available).
    pub poll: Duration,
    /// Serve only this job id; exit once it completes.
    pub job: Option<u64>,
    /// Wire identity. Must be process-unique or lease renewal
    /// misattributes chunks; the CLI defaults it to `w<pid>`.
    pub name: String,
    /// On-disk artifact cache keyed by CRC-32. Artifacts are
    /// content-addressed, so a cached body that still passes its
    /// length + CRC check is served locally instead of re-fetched —
    /// reconnect after a drop costs no artifact bytes. `None`
    /// disables caching.
    pub cache_dir: Option<PathBuf>,
}

/// What a worker run accomplished (printed on exit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Jobs this worker leased at least one chunk of.
    pub jobs: u64,
    /// Chunks completed and accepted.
    pub chunks: u64,
    /// Completions the daemon classified duplicate (lost replies,
    /// expiry races) — work done, tally unchanged, harmless.
    pub duplicates: u64,
    /// Injections executed.
    pub injections: u64,
    /// Artifacts served from the on-disk cache instead of the wire.
    pub cache_hits: u64,
}

fn err_other(msg: String) -> io::Error {
    io::Error::other(msg)
}

/// Upper bound for reconnect backoff.
const BACKOFF_CAP: Duration = Duration::from_secs(5);

/// Sleeps in short slices so a stop request interrupts a backoff.
fn sleep_interruptible(total: Duration, stop: &AtomicBool) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(20).min(total));
    }
}

/// Runs the worker until `stop` is set (graceful drain) or — with a
/// pinned `job` — until that job completes.
pub fn run_worker(wcfg: &WorkerConfig, stop: &AtomicBool) -> io::Result<WorkerSummary> {
    assert!(wcfg.workers >= 1, "need at least one worker thread");
    assert!(
        !wcfg.name.starts_with(LOCAL_PREFIX),
        "worker names must not impersonate the coordinator's local pool"
    );
    let mut summary = WorkerSummary::default();
    let mut backoff = wcfg.poll;
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(summary);
        }
        let job = match find_job(wcfg) {
            Ok(Some(id)) => id,
            Ok(None) => {
                // Daemon reachable, nothing distributed running.
                sleep_interruptible(wcfg.poll, stop);
                continue;
            }
            Err(_) => {
                // Daemon unreachable: reconnect with capped backoff.
                sleep_interruptible(backoff, stop);
                backoff = (backoff * 2).min(BACKOFF_CAP);
                continue;
            }
        };
        backoff = wcfg.poll;
        match serve_job(wcfg, job, stop, &mut summary) {
            Ok(served_to_completion) => {
                if wcfg.job.is_some() && served_to_completion {
                    return Ok(summary);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => return Err(e),
            Err(_) => {
                // Transient wire failure mid-job: leases will expire and
                // reissue; rejoin after backoff.
                sleep_interruptible(backoff, stop);
                backoff = (backoff * 2).min(BACKOFF_CAP);
            }
        }
    }
}

/// Picks a job: the pinned one, or the first the daemon advertises.
fn find_job(wcfg: &WorkerConfig) -> io::Result<Option<u64>> {
    if let Some(id) = wcfg.job {
        return Ok(Some(id));
    }
    let (status, body) = fetch_text(wcfg.connect, "GET", "/work", None)?;
    if status != 200 {
        return Ok(None);
    }
    let doc = Json::parse(&body).map_err(|e| err_other(format!("bad /work reply: {e}")))?;
    Ok(doc.get("jobs").and_then(Json::as_arr).and_then(|jobs| jobs.first()).and_then(Json::as_u64))
}

/// Serves one job to completion (or stop). Returns `true` when the
/// job's pool drained while we watched.
fn serve_job(
    wcfg: &WorkerConfig,
    job: u64,
    stop: &AtomicBool,
    summary: &mut WorkerSummary,
) -> io::Result<bool> {
    let (status, body) = fetch_text(wcfg.connect, "GET", &format!("/jobs/{job}/manifest"), None)?;
    if status != 200 {
        // Job not leasable right now: queued, finished, or not
        // distributed. The caller keeps polling; only an observed
        // pool-drained reply ends a pinned run.
        sleep_interruptible(wcfg.poll, stop);
        return Ok(false);
    }
    let doc = Json::parse(&body).map_err(|e| err_other(format!("bad manifest: {e}")))?;
    let manifest =
        Manifest::from_json(&doc).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;

    // Rebuild the campaign exactly as the daemon does (same defaults,
    // same overrides) and prove it.
    let workload = resolve_workload(&manifest.workload).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "manifest names workload `{}`, which this binary does not carry",
                manifest.workload
            ),
        )
    })?;
    let mut cfg = CampaignConfig {
        injections: manifest.injections,
        kind: manifest.kind,
        snapshot_every: manifest.snapshot_every,
        ..Default::default()
    };
    cfg.seed = manifest.seed;
    cfg.invariants = manifest.invariants;
    let cfg = cfg.sized_for(&workload);
    // Artifacts come first: they are content-addressed, so integrity
    // needs no campaign state, and a fetched snapshot store lets the
    // campaign rebuild skip its capture half entirely.
    let fetched = fetch_artifacts(wcfg, job, &manifest)?;
    summary.cache_hits += fetched.cache_hits;
    let prep = match adopt_store(&fetched) {
        Some(store) => prepare_campaign_with_store(&workload, &cfg, store)
            // Any adoption failure (stale cache entry from an older
            // format, skewed capture cadence) falls back to the local
            // rebuild, which is bit-identical by construction.
            .unwrap_or_else(|_| prepare_campaign(&workload, &cfg)),
        None => prepare_campaign(&workload, &cfg),
    };
    if prep.golden_cycles() != manifest.golden_cycles {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "golden run disagrees with coordinator: {} cycles here, {} there — \
                 version or config skew",
                prep.golden_cycles(),
                manifest.golden_cycles
            ),
        ));
    }
    verify_entry_artifact(&fetched, &prep, &cfg)?;
    let cache_hits_unreported = AtomicU64::new(fetched.cache_hits);
    drop(fetched);

    // The lease/execute pool, plus a heartbeat thread renewing every
    // held chunk at a third of the TTL.
    let ttl = Duration::from_millis(manifest.lease_ttl_ms.max(1));
    let held: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
    let job_over = AtomicBool::new(false);
    let drained = AtomicBool::new(false);
    let chunks = AtomicU64::new(0);
    let duplicates = AtomicU64::new(0);
    let injections = AtomicU64::new(0);
    let wire_error: Mutex<Option<io::Error>> = Mutex::new(None);
    // Last invariant-stats snapshot already posted. Each completion
    // carries only the delta since then (computed under this lock so
    // concurrent executor threads never double-report a check).
    let inv_sent: Mutex<InvariantStats> = Mutex::new(InvariantStats::default());

    std::thread::scope(|scope| {
        for _ in 0..wcfg.workers {
            let prep = &prep;
            let cfg = &cfg;
            let held = &held;
            let job_over = &job_over;
            let drained = &drained;
            let chunks = &chunks;
            let duplicates = &duplicates;
            let injections = &injections;
            let wire_error = &wire_error;
            let inv_sent = &inv_sent;
            let cache_hits_unreported = &cache_hits_unreported;
            scope.spawn(move || {
                let mut ws = CampaignWorkspace::new();
                loop {
                    // Graceful drain: stop leasing, in-flight chunks
                    // below already completed and posted.
                    if stop.load(Ordering::Relaxed) || job_over.load(Ordering::Relaxed) {
                        break;
                    }
                    let lease_body =
                        Json::obj().set("worker", wcfg.name.as_str()).to_string_compact();
                    let reply = fetch_text(
                        wcfg.connect,
                        "POST",
                        &format!("/jobs/{job}/lease"),
                        Some(&lease_body),
                    );
                    let (status, body) = match reply {
                        Ok(r) => r,
                        Err(e) => {
                            *wire_error.lock().unwrap_or_else(|p| p.into_inner()) = Some(e);
                            job_over.store(true, Ordering::Relaxed);
                            break;
                        }
                    };
                    if status != 200 {
                        // 404/409: the job finished or was cancelled.
                        job_over.store(true, Ordering::Relaxed);
                        break;
                    }
                    let lease =
                        Json::parse(&body).ok().and_then(|d| LeaseReply::from_json(&d).ok());
                    match lease {
                        Some(LeaseReply::Grant { chunk, range, .. }) => {
                            held.lock().unwrap_or_else(|p| p.into_inner()).insert(chunk);
                            let mut tally = CampaignTally::empty();
                            // Arm-cycle order: result-identical for any
                            // order, but armed neighbors share a snapshot
                            // so warm-workspace restores stay cheap.
                            let mut order: Vec<usize> = range.clone().collect();
                            order.sort_by_key(|&i| prep.arm_cycle_of(cfg, i));
                            for index in order {
                                match run_injection_supervised_in(prep, cfg, index, &mut ws) {
                                    SupervisedOutcome::Classified(r) => tally.apply(&r),
                                    SupervisedOutcome::Hung { .. } => tally.apply_hung(),
                                    SupervisedOutcome::Quarantined(q) => tally.apply_quarantined(q),
                                }
                            }
                            injections.fetch_add(range.len() as u64, Ordering::Relaxed);
                            let inv_delta = {
                                let mut sent = inv_sent.lock().unwrap_or_else(|p| p.into_inner());
                                let cur = prep.invariants().stats();
                                let delta = cur.delta_since(&sent);
                                *sent = cur;
                                delta
                            };
                            let req = CompleteRequest {
                                worker: wcfg.name.clone(),
                                chunk,
                                range: range.clone(),
                                tally,
                                invariants: inv_delta,
                                // Cache-hit accounting rides the first
                                // completion of the job (best effort: a
                                // post lost to a dying job drops it from
                                // the daemon's stats, never the local
                                // summary).
                                artifact_cache_hits: cache_hits_unreported
                                    .swap(0, Ordering::Relaxed),
                            };
                            match post_complete(wcfg, job, &req, stop) {
                                Ok(Some(reply)) => {
                                    if reply.duplicate {
                                        duplicates.fetch_add(1, Ordering::Relaxed);
                                    } else {
                                        chunks.fetch_add(1, Ordering::Relaxed);
                                    }
                                    if reply.done {
                                        drained.store(true, Ordering::Relaxed);
                                        job_over.store(true, Ordering::Relaxed);
                                    }
                                }
                                Ok(None) => {
                                    // Job vanished mid-post (finished and
                                    // deregistered): our work was either
                                    // merged or re-run elsewhere.
                                    job_over.store(true, Ordering::Relaxed);
                                }
                                Err(e) => {
                                    *wire_error.lock().unwrap_or_else(|p| p.into_inner()) = Some(e);
                                    job_over.store(true, Ordering::Relaxed);
                                }
                            }
                            held.lock().unwrap_or_else(|p| p.into_inner()).remove(&chunk);
                        }
                        Some(LeaseReply::Empty { done }) => {
                            if done {
                                drained.store(true, Ordering::Relaxed);
                                job_over.store(true, Ordering::Relaxed);
                                break;
                            }
                            // All remaining work is leased out; an expiry
                            // may hand us some shortly.
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        None => {
                            job_over.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            });
        }

        // Heartbeat loop on this thread: renew held chunks at ttl/3
        // until every executor exits.
        let beat = (ttl / 3).max(Duration::from_millis(10));
        let mut last_beat = Instant::now();
        while !job_over.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(10));
            if stop.load(Ordering::Relaxed)
                && held.lock().unwrap_or_else(|p| p.into_inner()).is_empty()
            {
                break;
            }
            if last_beat.elapsed() < beat {
                continue;
            }
            last_beat = Instant::now();
            let ids: Vec<u64> =
                held.lock().unwrap_or_else(|p| p.into_inner()).iter().copied().collect();
            if ids.is_empty() {
                continue;
            }
            let body = Json::obj()
                .set("worker", wcfg.name.as_str())
                .set("chunks", Json::Arr(ids.iter().map(|&c| Json::from(c)).collect()))
                .to_string_compact();
            // A failed heartbeat is not fatal: the next one may get
            // through before the TTL, and expiry is safe regardless.
            let _ =
                fetch_text(wcfg.connect, "POST", &format!("/jobs/{job}/heartbeat"), Some(&body));
        }
    });

    if let Some(e) = wire_error.into_inner().unwrap_or_else(|p| p.into_inner()) {
        return Err(e);
    }
    let did_chunks = chunks.load(Ordering::Relaxed);
    if did_chunks > 0 || injections.load(Ordering::Relaxed) > 0 {
        summary.jobs += 1;
    }
    summary.chunks += did_chunks;
    summary.duplicates += duplicates.load(Ordering::Relaxed);
    summary.injections += injections.load(Ordering::Relaxed);
    Ok(drained.load(Ordering::Relaxed))
}

/// Posts a completion, retrying transient failures — the daemon dedups,
/// so retrying a maybe-delivered post is always safe. `Ok(None)`: the
/// job is gone (404/410) and the post will never land.
fn post_complete(
    wcfg: &WorkerConfig,
    job: u64,
    req: &CompleteRequest,
    stop: &AtomicBool,
) -> io::Result<Option<crate::protocol::CompleteReply>> {
    let body = req.to_json().to_string_compact();
    let mut backoff = Duration::from_millis(50);
    for attempt in 0.. {
        match fetch_text(wcfg.connect, "POST", &format!("/jobs/{job}/complete"), Some(&body)) {
            Ok((200, reply)) => {
                let doc = Json::parse(&reply)
                    .map_err(|e| err_other(format!("bad complete reply: {e}")))?;
                let parsed = crate::protocol::CompleteReply::from_json(&doc).map_err(err_other)?;
                return Ok(Some(parsed));
            }
            Ok((404 | 409 | 410, _)) => return Ok(None),
            Ok((status, reply)) => {
                return Err(err_other(format!("complete rejected: HTTP {status}: {reply}")))
            }
            Err(e) => {
                // Connection-level failure: the post may or may not have
                // landed. Retry — idempotent by construction — a few
                // times before giving the job up.
                if attempt >= 5 || stop.load(Ordering::Relaxed) {
                    return Err(e);
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(BACKOFF_CAP);
            }
        }
    }
    unreachable!("retry loop returns")
}

/// One CRC-verified manifest artifact, with the on-disk location it
/// was cached at (when a cache directory is configured).
struct FetchedArtifact {
    name: String,
    body: Vec<u8>,
    cached_path: Option<PathBuf>,
}

/// Every manifest artifact, fetched and envelope-checked.
struct FetchedArtifacts {
    artifacts: Vec<FetchedArtifact>,
    /// How many came from the disk cache instead of the wire.
    cache_hits: u64,
}

/// Resolves one artifact: disk cache first (re-verifying its length
/// and CRC — a corrupt cache entry is treated as a miss, re-fetched,
/// and overwritten), then the wire. Either way the returned body has
/// passed its content-address check.
fn fetch_one_artifact(
    wcfg: &WorkerConfig,
    job: u64,
    art: &crate::protocol::ArtifactRef,
) -> io::Result<(Vec<u8>, Option<PathBuf>, bool)> {
    let cached = wcfg.cache_dir.as_ref().map(|dir| dir.join(format!("{:08x}.bin", art.crc32)));
    if let Some(path) = &cached {
        if let Ok(body) = std::fs::read(path) {
            if body.len() == art.len && crc32(&body) == art.crc32 {
                return Ok((body, cached, true));
            }
        }
    }
    let path = format!("/jobs/{job}/artifacts/{:08x}", art.crc32);
    let (status, body) = fetch(wcfg.connect, "GET", &path, None)?;
    if status != 200 {
        return Err(err_other(format!("artifact {} fetch: HTTP {status}", art.name)));
    }
    if body.len() != art.len || crc32(&body) != art.crc32 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("artifact {} failed its content address check", art.name),
        ));
    }
    // Populate the cache atomically (temp + rename) so a concurrent
    // worker process never reads a half-written body. Cache writes are
    // best effort: a full disk degrades to re-fetching.
    let written = cached.filter(|path| write_cache_entry(path, &body, &wcfg.name).is_ok());
    Ok((body, written, false))
}

fn write_cache_entry(path: &Path, body: &[u8], name: &str) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension(format!("tmp-{}-{name}", std::process::id()));
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Fetches every manifest artifact and checks its CRC envelope.
fn fetch_artifacts(
    wcfg: &WorkerConfig,
    job: u64,
    manifest: &Manifest,
) -> io::Result<FetchedArtifacts> {
    let mut out = FetchedArtifacts { artifacts: Vec::new(), cache_hits: 0 };
    for art in &manifest.artifacts {
        let (body, cached_path, hit) = fetch_one_artifact(wcfg, job, art)?;
        out.cache_hits += u64::from(hit);
        out.artifacts.push(FetchedArtifact { name: art.name.clone(), body, cached_path });
    }
    Ok(out)
}

/// Maps the coordinator's snapshot store, if the manifest shipped one.
/// The mapping is backed by the cache file when one exists; otherwise
/// the body is spilled to a scratch file that is unlinked once mapped,
/// so the worker never holds the store in its heap either way. Any
/// failure returns `None` — the caller rebuilds the store locally.
fn adopt_store(fetched: &FetchedArtifacts) -> Option<Arc<MappedStore>> {
    let art = fetched.artifacts.iter().find(|a| a.name == "store")?;
    if let Some(path) = &art.cached_path {
        if let Ok(store) = MappedStore::open(path) {
            return Some(Arc::new(store));
        }
    }
    let scratch = std::env::temp_dir().join(format!(
        "argus-store-{}-{:08x}.bin",
        std::process::id(),
        crc32(&art.body)
    ));
    std::fs::write(&scratch, &art.body).ok()?;
    let store = MappedStore::open(&scratch);
    let _ = std::fs::remove_file(&scratch);
    store.ok().map(Arc::new)
}

/// Fingerprint-compares the entry snapshot against the locally rebuilt
/// entry state — the proof that this binary reconstructed the
/// coordinator's campaign exactly.
fn verify_entry_artifact(
    fetched: &FetchedArtifacts,
    prep: &argus_faults::campaign::PreparedCampaign,
    cfg: &CampaignConfig,
) -> io::Result<()> {
    for art in fetched.artifacts.iter().filter(|a| a.name == "entry") {
        let (m, argus) = snapshot_from_slice(&art.body)?;
        let theirs = combined_fingerprint(&m, &argus);
        let (lm, largus) = prep.entry_state(cfg);
        let ours = combined_fingerprint(&lm, &largus);
        if theirs != ours {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "entry-state fingerprint mismatch (coordinator {theirs:016x}, local \
                     {ours:016x}) — refusing to inject against a skewed campaign"
                ),
            ));
        }
    }
    Ok(())
}

/// Looks a workload up by manifest name in the compiled-in set.
fn resolve_workload(name: &str) -> Option<argus_workloads::Workload> {
    if name == "stress" {
        return Some(argus_workloads::stress());
    }
    if name == "stress_xl" {
        return Some(argus_workloads::stress_xl());
    }
    argus_workloads::suite().into_iter().find(|w| w.name == name)
}
