//! Property: **any** interleaving of worker crashes, lease expiries,
//! and duplicate `complete` posts yields a merged tally identical to a
//! serial run over the same indices.
//!
//! The simulation drives a real [`CampaignShare`] (the exact dedup gate
//! the daemon's HTTP handlers call) with a synthetic clock and
//! synthetic per-index tallies. Each index `i` contributes a
//! quarantine record whose fields are functions of `i` alone — the
//! distributed-determinism contract in miniature — so the merged tally
//! exposes *which* indices were counted and *how many times*: a single
//! double-merge or dropped chunk changes the index-sorted quarantine
//! ledger and the accounting totals.

use argus_faults::campaign::QuarantineRecord;
use argus_orchestrator::{tally_to_json, CampaignTally};
use argus_remote::{CampaignShare, CompleteVerdict, LeasePool, LeaseReply, Manifest};
use argus_sim::fault::FaultKind;
use proptest::prelude::*;
use std::collections::HashMap;
use std::ops::Range;
use std::time::{Duration, Instant};

const N: usize = 30;
const TTL: Duration = Duration::from_secs(1);
const WORKERS: [&str; 4] = ["alpha", "beta", "gamma", "local:0"];

/// The deterministic per-index contribution: what a real injection's
/// result is to a real campaign — a pure function of the index.
fn index_tally(range: &Range<usize>) -> CampaignTally {
    let mut t = CampaignTally::empty();
    for i in range.clone() {
        t.apply_quarantined(QuarantineRecord {
            index: i as u64,
            seed: 0xA5A5 ^ i as u64,
            panic_msg: format!("synthetic-{i}"),
        });
    }
    t
}

fn serial_reference() -> CampaignTally {
    index_tally(&(0..N))
}

fn fresh_share() -> CampaignShare {
    let manifest = Manifest {
        version: argus_remote::PROTOCOL_VERSION,
        job: 1,
        workload: "stress".into(),
        injections: N,
        seed: 0,
        kind: FaultKind::Transient,
        snapshot_every: None,
        golden_cycles: 1,
        lease_ttl_ms: TTL.as_millis() as u64,
        invariants: Default::default(),
        artifacts: vec![],
    };
    let whole = 0..N;
    let pool = LeasePool::new(vec![whole], 3, TTL);
    CampaignShare::new(manifest, vec![], pool, Vec::new(), CampaignTally::empty(), N)
}

/// One scripted action against the share.
#[derive(Debug, Clone)]
enum Op {
    /// Worker leases a chunk and holds it.
    Lease(usize),
    /// Worker completes its oldest held chunk.
    Complete(usize),
    /// Worker re-posts an already-acknowledged completion verbatim
    /// (lost-reply retry).
    DuplicatePost(usize),
    /// Worker crashes: held chunks are forgotten, never completed.
    Crash(usize),
    /// The clock jumps past the TTL and the coordinator sweeps.
    ExpireSweep,
    /// Worker renews its held chunks.
    Heartbeat(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..6, 0usize..WORKERS.len()).prop_map(|(kind, w)| match kind {
        0 => Op::Lease(w),
        1 => Op::Complete(w),
        2 => Op::DuplicatePost(w),
        3 => Op::Crash(w),
        4 => Op::ExpireSweep,
        _ => Op::Heartbeat(w),
    })
}

proptest! {
    #[test]
    fn any_crash_and_duplicate_interleaving_matches_serial(
        ops in prop::collection::vec(op_strategy(), 0..120)
    ) {
        let share = fresh_share();
        let base = Instant::now();
        let mut now = base;
        // Held grants per worker, and every acknowledged completion
        // (for duplicate re-posts).
        let mut held: HashMap<usize, Vec<(u64, Range<usize>)>> = HashMap::new();
        let mut acked: Vec<(usize, u64, Range<usize>)> = Vec::new();

        for op in &ops {
            match op {
                Op::Lease(w) => {
                    if let LeaseReply::Grant { chunk, range, .. } =
                        share.lease(WORKERS[*w], now)
                    {
                        held.entry(*w).or_default().push((chunk, range));
                    }
                }
                Op::Complete(w) => {
                    if let Some((chunk, range)) =
                        held.get_mut(w).and_then(|v| (!v.is_empty()).then(|| v.remove(0)))
                    {
                        let v = share.complete(
                            WORKERS[*w], chunk, &range, &index_tally(&range),
                        );
                        prop_assert!(
                            !matches!(v, CompleteVerdict::Conflict(_)),
                            "live completion must never conflict"
                        );
                        acked.push((*w, chunk, range));
                    }
                }
                Op::DuplicatePost(w) => {
                    if let Some((_, chunk, range)) =
                        acked.iter().find(|(ow, _, _)| ow == w).cloned()
                    {
                        let v = share.complete(
                            WORKERS[w.to_owned()], chunk, &range, &index_tally(&range),
                        );
                        prop_assert!(
                            matches!(v, CompleteVerdict::Duplicate { .. }),
                            "verbatim re-post must be classified duplicate, got {v:?}"
                        );
                    }
                }
                Op::Crash(w) => {
                    // SIGKILL: grants vanish from the worker's memory;
                    // the pool still holds them until expiry.
                    held.remove(w);
                }
                Op::ExpireSweep => {
                    now += TTL + Duration::from_millis(1);
                    share.expire(now);
                    // Chunks the sweep reclaimed can re-lease; grants
                    // still in `held` may now be stale — completing
                    // them later exercises the late-complete path.
                }
                Op::Heartbeat(w) => {
                    let ids: Vec<u64> =
                        held.get(w).map(|v| v.iter().map(|(c, _)| *c).collect()).unwrap_or_default();
                    share.heartbeat(WORKERS[*w], &ids, now);
                }
            }
        }

        // Drain: one surviving worker finishes whatever is left, with
        // expiry sweeps recovering anything still stuck in dead hands.
        let mut spins = 0;
        while !share.finished() {
            spins += 1;
            prop_assert!(spins < 10_000, "drain loop wedged");
            match share.lease("drainer", now) {
                LeaseReply::Grant { chunk, range, .. } => {
                    share.complete("drainer", chunk, &range, &index_tally(&range));
                }
                LeaseReply::Empty { done } => {
                    prop_assert!(!done || share.finished());
                    now += TTL + Duration::from_millis(1);
                    share.expire(now);
                }
            }
        }

        // Stragglers limp in after the campaign finished: every held
        // grant completes late, then every acked completion re-posts.
        // None of it may perturb the tally.
        for (w, grants) in &held {
            for (chunk, range) in grants {
                let v = share.complete(WORKERS[*w], *chunk, range, &index_tally(range));
                prop_assert!(matches!(v, CompleteVerdict::Duplicate { .. }));
            }
        }
        for (w, chunk, range) in &acked {
            let v = share.complete(WORKERS[*w], *chunk, range, &index_tally(range));
            prop_assert!(matches!(v, CompleteVerdict::Duplicate { .. }));
        }

        let (_, merged) = share.checkpoint_state();
        let serial = serial_reference();
        prop_assert_eq!(
            tally_to_json(&merged).to_string_compact(),
            tally_to_json(&serial).to_string_compact(),
            "merged tally must be byte-identical to the serial run"
        );
    }
}
