//! Snapshot-forking throughput check.
//!
//! Runs the same serial campaign with snapshots off and at 1k/10k-cycle
//! intervals, asserts every configuration produces identical outcome
//! tallies (forking never changes results), and reports injections/sec
//! plus the speedup over cold boot. Results land in `BENCH_snapshot.json`
//! at the repo root.
//!
//! The expected win scales with golden-run length: each cold-boot
//! injection replays ~3/8 of the golden run on average (arm cycles are
//! uniform over the first 3/4), which snapshots cut to at most the
//! interval. On `stress` (~7k cycles) a 10k interval leaves only the
//! cycle-0 checkpoint and buys nothing; on `pegwit` (~92k cycles) it
//! should clear 1.3x comfortably.

use argus_faults::campaign::{run_campaign, CampaignConfig};
use argus_faults::Outcome;
use argus_orchestrator::Json;
use argus_workloads::Workload;
use std::time::Instant;

struct Row {
    workload: &'static str,
    interval: Option<u64>,
    secs: f64,
    rate: f64,
    speedup: f64,
}

fn bench_workload(w: &Workload, name: &'static str, injections: usize, rows: &mut Vec<Row>) {
    let base_cfg = CampaignConfig { injections, ..Default::default() };
    let mut cold_rate = 0.0;
    let mut cold_counts: Vec<u64> = Vec::new();
    for interval in [None, Some(1_000u64), Some(10_000)] {
        let cfg = CampaignConfig { snapshot_every: interval, ..base_cfg.clone() };
        let t = Instant::now();
        let rep = run_campaign(w, &cfg);
        let secs = t.elapsed().as_secs_f64();
        let counts: Vec<u64> = Outcome::ALL.iter().map(|&o| rep.count(o) as u64).collect();
        match interval {
            None => {
                cold_counts = counts;
                cold_rate = injections as f64 / secs;
            }
            Some(every) => assert_eq!(
                counts, cold_counts,
                "{name}: snapshot-every={every} changed campaign results"
            ),
        }
        let rate = injections as f64 / secs;
        let speedup = if interval.is_some() { rate / cold_rate } else { 1.0 };
        println!(
            "{:>8} | {:>9} | {:>7.2}s | {:>8.1} inj/s | {:>5.2}x",
            name,
            interval.map_or("off".to_owned(), |e| format!("every {e}")),
            secs,
            rate,
            speedup,
        );
        rows.push(Row { workload: name, interval, secs, rate, speedup });
    }
}

fn main() {
    let injections =
        std::env::var("ARGUS_INJECTIONS").ok().and_then(|s| s.parse().ok()).unwrap_or(300);
    println!("== snapshot forking speedup ({injections} injections/config, serial engine) ==");
    println!("(ARGUS_INJECTIONS overrides the campaign size)\n");
    println!(
        "{:>8} | {:>9} | {:>8} | {:>14} | speedup",
        "workload", "snapshots", "time", "throughput"
    );

    let mut rows = Vec::new();
    bench_workload(&argus_workloads::stress(), "stress", injections, &mut rows);
    let pegwit = argus_workloads::pegwit::pegwit();
    bench_workload(&pegwit, "pegwit", injections, &mut rows);

    let best = rows
        .iter()
        .filter(|r| r.interval == Some(10_000))
        .map(|r| r.speedup)
        .fold(0.0f64, f64::max);
    println!("\nbest 10k-interval speedup: {best:.2}x (identical tallies everywhere)");
    assert!(
        best >= 1.3,
        "expected >= 1.3x from 10k-cycle snapshots on at least one workload, got {best:.2}x"
    );

    let json = Json::obj()
        .set("injections", injections as u64)
        .set(
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj()
                            .set("workload", r.workload)
                            .set("snapshot_every", r.interval.map_or(Json::Null, Json::from))
                            .set("seconds", r.secs)
                            .set("injections_per_second", r.rate)
                            .set("speedup_vs_cold", r.speedup)
                    })
                    .collect(),
            ),
        )
        .set("best_10k_speedup", best);
    let text = json.to_string_compact();
    Json::parse(&text).expect("bench emitted invalid JSON");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_snapshot.json");
    std::fs::write(out, &text).expect("write BENCH_snapshot.json");
    println!("wrote BENCH_snapshot.json");
}
