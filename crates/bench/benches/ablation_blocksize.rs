//! Ablation: basic-block split limit.
//!
//! §3.2.2 requires "a fixed limit on the size of basic blocks" to bound
//! the time between control-flow checks. Short blocks also bound the
//! window in which a small-signature divergence can alias away before the
//! next DCS comparison (see `argus_core::shs`), at the cost of extra
//! end-of-block Signature markers. This ablation sweeps the split limit
//! and reports coverage against static code-size overhead.

use argus_compiler::{compile, EmbedConfig, Mode};
use argus_faults::campaign::{run_campaign, CampaignConfig, Outcome};
use argus_sim::fault::FaultKind;

fn main() {
    println!("== Ablation: basic-block split limit ==\n");
    println!("{:>6} | {:>9} | {:>9} | {:>13}", "limit", "SDC", "coverage", "static ovh");
    let w = argus_workloads::stress();
    let base = compile(&w.unit, Mode::Baseline, &EmbedConfig::default()).unwrap();
    for limit in [8u32, 16, 24, 32, 48] {
        let ecfg = EmbedConfig { split_limit: limit, ..Default::default() };
        let rep = run_campaign(
            &w,
            &CampaignConfig {
                injections: 1200,
                kind: FaultKind::Permanent,
                ecfg,
                ..Default::default()
            },
        );
        let argus = compile(&w.unit, Mode::Argus, &ecfg).unwrap();
        let ovh = 100.0 * (argus.stats.static_instrs as f64 - base.stats.static_instrs as f64)
            / base.stats.static_instrs as f64;
        println!(
            "{limit:>6} | {:>8.2}% | {:>8.1}% | {:>12.2}%",
            100.0 * rep.fraction(Outcome::UnmaskedUndetected),
            100.0 * rep.unmasked_coverage(),
            ovh
        );
    }
    println!("\nshorter blocks → more frequent DCS checks (better coverage,");
    println!("shorter detection latency) but more marker instructions.");
}
