//! Block-compiled execution gate (the JIT-lite tentpole's headline number).
//!
//! Measures golden-run throughput — quiescent injector, argus-mode binary —
//! through the one-step interpreter (`block_exec` off) and through the
//! block-compiled engine (`block_exec` on, plan cache warmed by `preplan`),
//! machine-only and with the checker batched per block. Every run first
//! asserts the two paths land on the same `state_digest`, so the speedup is
//! never bought with a semantic change.
//!
//! Results land in `BENCH_blockexec.json` at the repo root. The gate: the
//! block-compiled machine-only configuration must clear
//! [`REQUIRED_SPEEDUP`]x the quiescent interpreter baseline recorded in
//! [`PRE_PR_QUIESCENT_STEPS_PER_SEC`] (from `BENCH_throughput.json` at the
//! pre-PR tree) on at least one workload.
//!
//! `ARGUS_BENCH_SMOKE=1` caps each row at a fixed handful of runs and
//! gates on the *relative* in-run speedup instead (block-on vs. block-off
//! within the same smoke run), so CI machines with different absolute
//! throughput still verify the engine engages. `ARGUS_BENCH_SECS`
//! overrides the full-mode per-row measuring window.

use argus_compiler::{compile, preplan, EmbedConfig, Mode, Program};
use argus_core::{Argus, ArgusConfig};
use argus_machine::{Machine, MachineConfig, StepOutcome};
use argus_orchestrator::Json;
use argus_sim::fault::FaultInjector;
use argus_workloads::Workload;
use std::time::Instant;

/// Golden-run (argus-on, quiescent-injector, machine-only interpreter)
/// steps/sec of the pre-PR tree, from `BENCH_throughput.json` measured at
/// commit 3b2db9d on the build machine with the same release profile.
const PRE_PR_QUIESCENT_STEPS_PER_SEC: &[(&str, f64)] = &[("stress", 9.60e6), ("pegwit", 1.59e7)];

/// Speedup the block-compiled machine-only path must reach over the
/// pre-PR interpreter baseline on at least one workload (full mode).
const REQUIRED_SPEEDUP: f64 = 3.0;

/// Relative block-on vs. block-off speedup required in smoke mode, where
/// absolute baselines from another machine are meaningless.
const SMOKE_RELATIVE_SPEEDUP: f64 = 1.3;

const BOUND: u64 = 500_000_000;

fn smoke() -> bool {
    std::env::var_os("ARGUS_BENCH_SMOKE").is_some()
}

#[derive(Clone, Copy, PartialEq)]
enum Engine {
    /// One-step interpreter, `block_exec` off.
    Interp,
    /// Block-compiled, machine-only (`run_to_halt` fast path).
    Blocks,
    /// Block-compiled with batched SHS/DCS checking.
    BlocksChecked,
}

/// One full program execution; returns (steps, final state digest).
fn run_once(prog: &Program, engine: Engine) -> (u64, u64) {
    let mcfg = MachineConfig { block_exec: engine != Engine::Interp, ..MachineConfig::default() };
    let mut m = Machine::new(mcfg);
    prog.load(&mut m);
    let mut inj = FaultInjector::none();
    match engine {
        Engine::Interp => {
            while let StepOutcome::Committed(_) | StepOutcome::Stalled = m.step(&mut inj) {
                assert!(m.cycle() < BOUND, "workload must halt");
            }
        }
        Engine::Blocks => {
            preplan(prog, &mut m);
            let res = m.run_to_halt(&mut inj, BOUND);
            assert!(res.halted, "workload must halt");
        }
        Engine::BlocksChecked => {
            preplan(prog, &mut m);
            let mut argus = Argus::new(ArgusConfig::default());
            if let Some(d) = prog.entry_dcs {
                argus.expect_entry(d);
            }
            loop {
                if let Some(gate) = m.plan_block(&inj, BOUND) {
                    if argus.block_ready(&gate, &inj) {
                        if let Some(commit) = m.exec_block(&mut inj, &gate) {
                            let plan =
                                m.plan_at(gate.addr).expect("completed block keeps its plan");
                            argus.on_block(plan, &commit, &mut inj);
                            continue;
                        }
                    }
                }
                match m.step(&mut inj) {
                    StepOutcome::Committed(rec) => {
                        argus.on_commit(&rec, &mut inj);
                    }
                    StepOutcome::Stalled => {}
                    StepOutcome::Halted => break,
                }
                assert!(m.cycle() < BOUND, "workload must halt");
            }
            assert!(argus.events().is_empty(), "fault-free run raised a detection");
        }
    }
    assert!(m.halted(), "workload must halt");
    (m.cycle(), m.state_digest())
}

struct Row {
    workload: &'static str,
    config: &'static str,
    runs: u64,
    steps: u64,
    secs: f64,
    rate: f64,
    peak_rss: u64,
}

fn bench_engine(
    w: &Workload,
    prog: &Program,
    engine: Engine,
    config: &'static str,
    window_secs: f64,
) -> Row {
    // Warm-up run (page faults, cache warming) outside the window.
    run_once(prog, engine);
    let (mut steps, mut runs) = (0u64, 0u64);
    let t = Instant::now();
    loop {
        steps += run_once(prog, engine).0;
        runs += 1;
        // Smoke caps on run count, not wall time: enough repeats to make
        // the relative gate stable, few enough to stay fast in CI.
        if smoke() {
            if runs >= 25 {
                break;
            }
        } else if t.elapsed().as_secs_f64() >= window_secs {
            break;
        }
    }
    let secs = t.elapsed().as_secs_f64();
    let rate = steps as f64 / secs;
    println!(
        "{:>8} | {:<22} | {:>4} runs | {:>9} steps | {:>6.3}s | {:>10.0} steps/s",
        w.name, config, runs, steps, secs, rate
    );
    Row {
        workload: w.name,
        config,
        runs,
        steps,
        secs,
        rate,
        peak_rss: argus_bench::peak_rss_bytes().unwrap_or(0),
    }
}

fn main() {
    let window_secs: f64 =
        std::env::var("ARGUS_BENCH_SECS").ok().and_then(|s| s.parse().ok()).unwrap_or(0.6);
    println!("== block-compiled execution throughput ==");
    if smoke() {
        println!("(smoke mode: 25 runs per row, relative gate only)");
    }

    let workloads = [argus_workloads::stress(), argus_workloads::pegwit::pegwit()];
    let mut rows = Vec::new();
    let mut relative = Vec::new();
    for w in &workloads {
        let prog = compile(&w.unit, Mode::Argus, &EmbedConfig::default())
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));

        // Digest parity before any timing: the engine under test must be
        // semantically invisible.
        let (steps_i, digest_i) = run_once(&prog, Engine::Interp);
        let (steps_b, digest_b) = run_once(&prog, Engine::Blocks);
        let (steps_c, digest_c) = run_once(&prog, Engine::BlocksChecked);
        assert_eq!(digest_i, digest_b, "{}: block-exec digest diverged", w.name);
        assert_eq!(digest_i, digest_c, "{}: batched-checking digest diverged", w.name);
        assert_eq!(steps_i, steps_b, "{}: block-exec trajectory diverged", w.name);
        assert_eq!(steps_i, steps_c, "{}: batched-checking trajectory diverged", w.name);

        let interp = bench_engine(w, &prog, Engine::Interp, "interp/quiescent", window_secs);
        let blocks = bench_engine(w, &prog, Engine::Blocks, "blocks/quiescent", window_secs);
        let checked =
            bench_engine(w, &prog, Engine::BlocksChecked, "blocks_checked/quiescent", window_secs);
        relative.push((w.name, blocks.rate / interp.rate));
        rows.extend([interp, blocks, checked]);
    }

    let mut speedups = Vec::new();
    for &(name, base) in PRE_PR_QUIESCENT_STEPS_PER_SEC {
        let row = rows
            .iter()
            .find(|r| r.workload == name && r.config == "blocks/quiescent")
            .expect("blocks row present");
        speedups.push((name, row.rate / base));
    }
    println!();
    for &(name, s) in &speedups {
        println!("{name}: {s:.2}x vs pre-PR quiescent interpreter baseline");
    }
    let best_speedup = speedups.iter().map(|&(_, s)| s).fold(0.0f64, f64::max);
    let best_relative = relative.iter().map(|&(_, s)| s).fold(0.0f64, f64::max);

    let json = Json::obj()
        .set("bench", "block_exec")
        .set("smoke", smoke())
        .set(
            "pre_pr_quiescent_steps_per_sec",
            PRE_PR_QUIESCENT_STEPS_PER_SEC
                .iter()
                .fold(Json::obj(), |j, &(name, rate)| j.set(name, rate)),
        )
        .set(
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj()
                            .set("workload", r.workload)
                            .set("config", r.config)
                            .set("runs", r.runs)
                            .set("steps", r.steps)
                            .set("seconds", r.secs)
                            .set("steps_per_sec", r.rate)
                            .set("peak_rss_bytes", r.peak_rss)
                    })
                    .collect(),
            ),
        )
        .set(
            "block_speedup_vs_pre_pr",
            speedups.iter().fold(Json::obj(), |j, &(name, s)| j.set(name, s)),
        )
        .set(
            "block_speedup_vs_interp_in_run",
            relative.iter().fold(Json::obj(), |j, &(name, s)| j.set(name, s)),
        )
        .set("best_speedup_vs_pre_pr", best_speedup)
        .set("best_speedup_vs_interp", best_relative);
    let text = json.to_string_compact();
    Json::parse(&text).expect("bench emitted invalid JSON");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_blockexec.json");
    std::fs::write(out, &text).expect("write BENCH_blockexec.json");
    println!("wrote BENCH_blockexec.json");

    if smoke() {
        assert!(
            best_relative >= SMOKE_RELATIVE_SPEEDUP,
            "block-exec smoke gate: block-compiled golden run must clear \
             {SMOKE_RELATIVE_SPEEDUP}x the in-run interpreter rate on at least one workload, \
             got {best_relative:.2}x"
        );
    } else {
        assert!(
            best_speedup >= REQUIRED_SPEEDUP,
            "block-exec gate: block-compiled golden-run steps/sec must clear \
             {REQUIRED_SPEEDUP}x the pre-PR quiescent baseline on at least one workload, \
             got {best_speedup:.2}x"
        );
    }
}
