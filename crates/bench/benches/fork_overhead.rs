//! Fork-overhead gate (injections/sec through the campaign engine).
//!
//! PR 4 forked every injection by building a fresh machine and copying
//! every page out of the snapshot store — O(machine state) per fork — and
//! replayed even injections whose fault provably never fires. This bench
//! pins the cost of forking down and gates the delta-restore engine: the
//! same snapshot-enabled pegwit campaign, run serially with the current
//! `CampaignConfig` defaults (delta restore into a reused workspace +
//! inert-fault shortcut), must clear [`REQUIRED_SPEEDUP`]x the pre-PR
//! throughput recorded in [`PRE_PR_INJ_PER_SEC`].
//!
//! The sweep isolates where the win comes from, coldest to warmest:
//!
//! * `cold_boot` — snapshots ignored, every injection replays from cycle 0;
//! * `full_fork` — fresh allocation + every-page copy per fork (PR 4);
//! * `delta_fork` — reused workspace, only pages dirtied since the last
//!   fork rewritten;
//! * `delta_fork+shortcut` — defaults: delta restore plus the inert-fault
//!   shortcut (a fault with sensitization 0 can never fire, so its run is
//!   provably identical to the golden run and is classified without
//!   stepping).
//!
//! Every configuration must produce identical outcome tallies — fork
//! strategy and the shortcut are perf knobs, never result knobs.
//!
//! Results land in `BENCH_fork.json` at the repo root.
//! `ARGUS_BENCH_SMOKE=1` shrinks the campaign and skips the gate (CI smoke
//! mode: proves the bench runs and emits valid JSON). `ARGUS_INJECTIONS`
//! overrides the campaign size.

use argus_faults::campaign::{run_campaign, CampaignConfig, ForkStrategy};
use argus_faults::Outcome;
use argus_orchestrator::Json;
use std::time::Instant;

/// Serial snapshot-enabled pegwit throughput (150 injections, 1k-cycle
/// snapshot interval, default seed) of the pre-PR tree, measured at commit
/// c6bdf4f on the build machine with the same release profile. The
/// delta-restore fork engine is gated against this.
const PRE_PR_INJ_PER_SEC: f64 = 90.3;

/// Speedup the delta-restore defaults must reach over the pre-PR engine.
const REQUIRED_SPEEDUP: f64 = 2.0;

fn smoke() -> bool {
    std::env::var_os("ARGUS_BENCH_SMOKE").is_some()
}

struct Scenario {
    config: &'static str,
    fork: ForkStrategy,
    shortcut_inert: bool,
}

const SCENARIOS: &[Scenario] = &[
    Scenario { config: "cold_boot", fork: ForkStrategy::Cold, shortcut_inert: false },
    Scenario { config: "full_fork", fork: ForkStrategy::Full, shortcut_inert: false },
    Scenario { config: "delta_fork", fork: ForkStrategy::Delta, shortcut_inert: false },
    Scenario { config: "delta_fork+shortcut", fork: ForkStrategy::Delta, shortcut_inert: true },
];

struct Row {
    config: &'static str,
    secs: f64,
    rate: f64,
    peak_rss: u64,
}

fn main() {
    let injections: usize = std::env::var("ARGUS_INJECTIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke() { 10 } else { 150 });
    println!("== fork overhead (serial snapshot-enabled pegwit campaign) ==");
    if smoke() {
        println!("(smoke mode: {injections} injections, no speedup gate)");
    }
    println!("{:>20} | {:>7} | throughput", "config", "time");

    let pegwit = argus_workloads::pegwit::pegwit();
    let mut rows = Vec::new();
    let mut reference: Vec<u64> = Vec::new();
    for sc in SCENARIOS {
        let cfg = CampaignConfig {
            injections,
            snapshot_every: Some(1_000),
            fork: sc.fork,
            shortcut_inert: sc.shortcut_inert,
            ..Default::default()
        };
        let t = Instant::now();
        let rep = run_campaign(&pegwit, &cfg);
        let secs = t.elapsed().as_secs_f64();
        let counts: Vec<u64> = Outcome::ALL.iter().map(|&o| rep.count(o) as u64).collect();
        if reference.is_empty() {
            reference = counts;
        } else {
            assert_eq!(counts, reference, "{}: fork strategy changed campaign results", sc.config);
        }
        let rate = injections as f64 / secs;
        let peak_rss = argus_bench::peak_rss_bytes().unwrap_or(0);
        println!("{:>20} | {:>6.2}s | {:>8.1} inj/s", sc.config, secs, rate);
        rows.push(Row { config: sc.config, secs, rate, peak_rss });
    }

    let headline = rows.last().expect("scenarios ran").rate;
    let speedup = headline / PRE_PR_INJ_PER_SEC;
    println!("\ndefaults: {headline:.1} inj/s = {speedup:.2}x vs pre-PR full-fork engine");

    let json = Json::obj()
        .set("bench", "fork_overhead")
        .set("smoke", smoke())
        .set("workload", "pegwit")
        .set("injections", injections as u64)
        .set("snapshot_every", 1_000u64)
        .set("pre_pr_inj_per_sec", PRE_PR_INJ_PER_SEC)
        .set(
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj()
                            .set("config", r.config)
                            .set("seconds", r.secs)
                            .set("injections_per_second", r.rate)
                            .set("peak_rss_bytes", r.peak_rss)
                    })
                    .collect(),
            ),
        )
        .set("default_inj_per_sec", headline)
        .set("speedup_vs_pre_pr", speedup);
    let text = json.to_string_compact();
    Json::parse(&text).expect("bench emitted invalid JSON");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fork.json");
    std::fs::write(out, &text).expect("write BENCH_fork.json");
    println!("wrote BENCH_fork.json");

    if !smoke() {
        assert!(
            speedup >= REQUIRED_SPEEDUP,
            "fork gate: the delta-restore defaults must clear {REQUIRED_SPEEDUP}x the pre-PR \
             engine ({PRE_PR_INJ_PER_SEC} inj/s), got {speedup:.2}x"
        );
    }
}
