//! Ablation: EDC (parity + address embedding, the Argus-1 design point)
//! versus SEC-DED ECC on the data cache — the §4.2 alternative for
//! bounding memory-error detection latency.
//!
//! Measures: area cost of each scheme, and a Monte-Carlo comparison of
//! what happens to corrupted memory words (EDC: detect on next load,
//! recover via checkpoint; ECC: correct in place, no recovery needed;
//! double-bit: EDC parity misses entirely, SEC-DED still detects).

use argus_area::cache_model::{cache_area_protected, CacheGeometry, Protection};
use argus_mem::ecc::{decode, encode, EccOutcome};
use argus_sim::bits::parity32;
use argus_sim::rng::SplitMix64;

fn main() {
    println!("== Ablation: EDC (Argus-1 parity) vs SEC-DED ECC on the D-cache ==\n");

    // --- area -------------------------------------------------------------
    println!("{:12} {:>10} {:>10} {:>10}", "scheme", "1-way mm²", "2-way mm²", "overhead");
    let base1 = cache_area_protected(CacheGeometry::kb8(1), Protection::None);
    for (name, prot) in [
        ("none", Protection::None),
        ("parity", Protection::Parity),
        ("sec-ded", Protection::SecDed),
    ] {
        let a1 = cache_area_protected(CacheGeometry::kb8(1), prot);
        let a2 = cache_area_protected(CacheGeometry::kb8(2), prot);
        println!("{name:12} {a1:>10.2} {a2:>10.2} {:>9.1}%", 100.0 * (a1 - base1) / base1);
    }

    // --- behaviour under memory corruption --------------------------------
    let trials = 100_000u32;
    let mut rng = SplitMix64::new(0xECC0);
    let mut edc_detected = 0u32;
    let mut ecc_corrected = 0u32;
    let mut ecc_detected = 0u32;
    let mut edc_missed_double = 0u32;
    let mut ecc_missed = 0u32;
    for _ in 0..trials {
        let w = rng.next_u32();
        let double = rng.below(5) == 0; // 20% double-bit errors
        let mut bad = w ^ (1u32 << rng.below(32));
        if double {
            loop {
                let b = 1u32 << rng.below(32);
                if bad ^ b != w {
                    bad ^= b;
                    break;
                }
            }
        }
        // EDC: parity over the word.
        if parity32(bad) != parity32(w) {
            edc_detected += 1;
        } else if bad != w {
            edc_missed_double += 1;
        }
        // ECC.
        match decode(bad, encode(w)) {
            EccOutcome::CorrectedData { word, .. } if word == w => ecc_corrected += 1,
            EccOutcome::DoubleError => ecc_detected += 1,
            EccOutcome::Clean | EccOutcome::CorrectedCheck => ecc_missed += 1,
            EccOutcome::CorrectedData { .. } => ecc_missed += 1,
        }
    }
    let pct = |n: u32| 100.0 * n as f64 / trials as f64;
    println!("\nper-word corruption outcomes ({trials} trials, 20% double-bit):");
    println!("  EDC  detected:          {:5.1}%  (needs checkpoint recovery)", pct(edc_detected));
    println!("  EDC  silent (even-bit): {:5.1}%  (the parity blind spot)", pct(edc_missed_double));
    println!("  ECC  corrected inline:  {:5.1}%  (no recovery, zero latency)", pct(ecc_corrected));
    println!("  ECC  detected (double): {:5.1}%", pct(ecc_detected));
    println!("  ECC  silent:            {:5.1}%", pct(ecc_missed));
    println!("\ntrade-off: SEC-DED spends 7× the redundancy bits (≈22% D-cache area");
    println!("vs parity's ≈5%) to turn every single-bit memory error into a");
    println!("zero-latency inline correction and to close parity's double-bit");
    println!("blind spot — the paper's suggested remedy for the unbounded EDC");
    println!("detection latency of §4.2.");
}
