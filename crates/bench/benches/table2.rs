//! Reproduces **Table 2** (area overhead, mm², VTVT 0.25µm).
//!
//! Paper reference:
//!
//! ```text
//!                 OR1200   with Argus-1   overhead
//! core              6.58           7.67      16.6%
//! I-cache: 1-way    2.14           2.14         0%
//!          2-way    2.42           2.42
//! D-cache: 1-way    2.14           2.24       4.9%
//!          2-way    2.42           2.54       5.1%
//! total:   1-way   10.86          12.05      10.9%
//!          2-way   11.42          12.63      10.6%
//! ```

fn main() {
    println!("== Table 2: area overhead (analytical standard-cell + cache model) ==\n");
    let t = argus_area::table2();
    println!("{t}");
    println!("paper: core +16.6%, D-cache +4.9%/+5.1%, total +10.9%/+10.6%");

    println!("\n-- Argus-1 additions by block --");
    let adds = argus_area::core_model::argus_additions(Default::default());
    for c in &adds {
        println!(
            "  {:28} {:>7.0} gates  ({:.3} mm²)",
            c.name,
            c.gates,
            argus_area::cells::gates_to_mm2(c.gates)
        );
    }
    let total = argus_area::core_model::total_gates(&adds);
    println!("  {:28} {:>7.0} gates", "TOTAL", total);
}
