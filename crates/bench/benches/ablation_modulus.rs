//! Ablation: residue-checker modulus.
//!
//! §3.3.2: the mod-M checker's aliasing probability "can be made
//! arbitrarily small by increasing M, at the cost of a larger multiplier
//! in the sub-checker". This ablation measures the Monte-Carlo escape rate
//! of the multiplier checker (fraction of random single/double-bit product
//! corruptions that alias mod M) against its area.

use argus_area::core_model::{argus_additions, total_gates, ArgusParams};
use argus_core::cc::modm;
use argus_sim::fault::FaultInjector;
use argus_sim::rng::SplitMix64;

fn escape_rate(m: u32, trials: u32) -> f64 {
    let mut rng = SplitMix64::new(0x00AB_1A7E ^ m as u64);
    let mut escapes = 0u32;
    let mut inj = FaultInjector::none();
    for _ in 0..trials {
        let a = rng.next_u32();
        let b = rng.next_u32();
        let full = a as u64 * b as u64;
        // Corrupt 1 or 2 bits of the 64-bit product.
        let mut bad = full ^ (1u64 << rng.below(64));
        if rng.below(4) == 0 {
            bad ^= 1u64 << rng.below(64);
        }
        if bad == full {
            continue;
        }
        if modm::check_mul(m, false, a, b, bad as u32, (bad >> 32) as u32, &mut inj) {
            escapes += 1;
        }
    }
    escapes as f64 / trials as f64
}

fn main() {
    println!("== Ablation: mod-M residue checker ==\n");
    println!("{:>5} | {:>11} | {:>13}", "M", "escape rate", "checker gates");
    for m in [3u32, 7, 15, 31, 63, 127, 255] {
        let gates = total_gates(&argus_additions(ArgusParams { sig_width: 5, modulus: m }))
            - total_gates(&argus_additions(ArgusParams { sig_width: 5, modulus: 3 }));
        let rel = escape_rate(m, 40_000);
        println!("{m:>5} | {:>10.3}% | {:>10.0} (+)", 100.0 * rel, gates);
    }
    println!("\nMersenne moduli (2^k − 1) keep the fold cheap; the paper picks");
    println!("M = 31. Single-bit product flips never alias (2^i mod M ≠ 0);");
    println!("the residual escapes are multi-bit corruptions whose difference");
    println!("is a multiple of M.");
}
