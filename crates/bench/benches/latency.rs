//! Reproduces the **§4.2 detection-latency** characterization.
//!
//! Paper (qualitative): computation errors are detected the cycle after
//! the erroneous computation; dataflow errors at the end of the current
//! basic block; inter-block control-flow errors by the end of the next
//! block; memory (EDC) errors have arbitrarily long latency, bounded only
//! by scrubbing.

use argus_faults::campaign::{run_campaign, CampaignConfig};
use argus_faults::latency::LatencyReport;
use argus_sim::fault::FaultKind;

fn main() {
    println!("== §4.2: error-detection latency ==\n");
    let rep = run_campaign(
        &argus_workloads::stress(),
        &CampaignConfig { injections: 2500, kind: FaultKind::Permanent, ..Default::default() },
    );
    let lat = LatencyReport::from_campaign(&rep);
    println!("{}", lat.summary());
    println!("paper: computation ≈1 cycle; DCS ≤ end of (next) basic block;");
    println!("       memory EDC unbounded (here: bounded by the end-of-run scrub,");
    println!("       visible as the parity checker's long tail).");
}
