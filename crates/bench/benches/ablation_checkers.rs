//! Ablation: checker subsets.
//!
//! §4.1.1 concludes that "a composition of all checkers is necessary in
//! order to achieve good coverage". This ablation disables one checker
//! family at a time and measures the unmasked-error coverage drop.

use argus_core::ArgusConfig;
use argus_faults::campaign::{run_campaign, CampaignConfig};
use argus_sim::fault::FaultKind;

fn coverage(acfg: ArgusConfig, injections: usize) -> f64 {
    let rep = run_campaign(
        &argus_workloads::stress(),
        &CampaignConfig { injections, kind: FaultKind::Permanent, acfg, ..Default::default() },
    );
    100.0 * rep.unmasked_coverage()
}

fn main() {
    println!("== Ablation: coverage of unmasked errors by checker subset ==\n");
    let injections = 1500;
    let full = ArgusConfig::default();
    let configs: Vec<(&str, ArgusConfig)> = vec![
        ("all checkers", full),
        ("no computation", ArgusConfig { enable_cc: false, ..full }),
        ("no parity", ArgusConfig { enable_parity: false, ..full }),
        ("no DCS", ArgusConfig { enable_dcs: false, ..full }),
        ("no watchdog", ArgusConfig { enable_watchdog: false, ..full }),
        (
            "DCS only",
            ArgusConfig { enable_cc: false, enable_parity: false, enable_watchdog: false, ..full },
        ),
    ];
    for (name, acfg) in configs {
        println!("{name:16} coverage {:.1}%", coverage(acfg, injections));
    }
    println!("\npaper: every family contributes (cc 45%, parity 36%, dcs 16%, wd 3%");
    println!("of detections) — removing any of the big three must cost coverage.");
}
