//! Out-of-core store scale gate (the ARGSTORE tentpole's headline run).
//!
//! Drives a million-injection sharded campaign on `stress_xl` — the XL
//! workload tier with a 16 MiB machine image, ~10× the default tier —
//! forking every injection from the memory-mapped ARGSTORE, and proves
//! the two claims the out-of-core store makes:
//!
//! * **Heap stays bounded by the working set, not the snapshot count.**
//!   Campaign-phase growth of the *anonymous* resident set (`RssAnon`,
//!   sampled across the run — file-backed pages the store maps are
//!   kernel-reclaimable and deliberately excluded) must stay within
//!   [`RSS_FACTOR`]× the single-snapshot working set per campaign
//!   actor: one workspace image per shard, plus the golden-run/prepare
//!   context and the inert-fork template. Snapshot count must not
//!   appear in that budget — that is the out-of-core claim.
//! * **Out-of-core costs no throughput.** Aggregate injections/s must be
//!   at least the serial `delta_fork+shortcut` rate recorded in
//!   `BENCH_fork.json` (`default_inj_per_sec`) — the store must not
//!   regress the fork engine it feeds.
//!
//! Results land in `BENCH_store.json` at the repo root.
//! `ARGUS_BENCH_SMOKE=1` shrinks the campaign and skips the throughput
//! gate but keeps the RSS ceiling (CI runs this as `store-scale-smoke`).
//! `ARGUS_INJECTIONS` / `ARGUS_SHARDS` override the campaign shape.

use argus_faults::campaign::CampaignConfig;
use argus_faults::StoreKind;
use argus_orchestrator::{run_sharded, Json, OrchestratorConfig, Progress};
use std::sync::atomic::AtomicBool;
use std::time::Instant;

/// Campaign-phase RSS growth allowed per shard, in units of the
/// single-snapshot working set (the 16 MiB `stress_xl` memory image).
const RSS_FACTOR: u64 = 2;

/// Fallback throughput floor when `BENCH_fork.json` is absent: the
/// serial delta-fork default rate recorded there at commit fc95aeb.
const FALLBACK_FORK_INJ_PER_SEC: f64 = 246.09264152568383;

fn smoke() -> bool {
    std::env::var_os("ARGUS_BENCH_SMOKE").is_some()
}

/// `default_inj_per_sec` from the repo-root `BENCH_fork.json`.
fn fork_baseline() -> f64 {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fork.json");
    std::fs::read_to_string(path)
        .ok()
        .and_then(|s| Json::parse(&s).ok())
        .and_then(|doc| doc.get("default_inj_per_sec").and_then(Json::as_f64))
        .unwrap_or(FALLBACK_FORK_INJ_PER_SEC)
}

fn main() {
    let injections: usize = std::env::var("ARGUS_INJECTIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke() { 2_000 } else { 1_000_000 });
    let shards: usize = std::env::var("ARGUS_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&v| v >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1));

    // Tuned default: stress_xl runs ~100k golden cycles, so 8_000 yields
    // ~13 checkpoints — dense enough to bound replay, sparse enough that
    // snapshot transitions (the expensive cross-snapshot page rewrites)
    // stay rare under arm-cycle-sorted leases.
    let snapshot_every: u64 = std::env::var("ARGUS_SNAPSHOT_EVERY")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(8_000);
    let store = match std::env::var("ARGUS_STORE").ok().as_deref() {
        Some(s) => StoreKind::parse(s).expect("ARGUS_STORE must be ram or mmap"),
        None => StoreKind::Mapped,
    };

    let w = argus_workloads::stress_xl();
    let working_set = u64::from(w.min_mem_bytes);
    assert!(working_set >= 1 << 24, "stress_xl is the XL tier");
    let cfg = CampaignConfig {
        injections,
        seed: 0x5CA1E,
        snapshot_every: Some(snapshot_every),
        store,
        ..Default::default()
    };
    // Large leases let the arm-cycle sort group many injections per
    // snapshot (results are lease-size-invariant; this is pure locality).
    let ocfg = OrchestratorConfig { shards, chunk: 4096, ..Default::default() };

    println!(
        "== out-of-core store scale ({} injections, {shards} shards, stress_xl) ==",
        injections
    );
    if smoke() {
        println!("(smoke mode: shrunk campaign, RSS ceiling only, no throughput gate)");
    }

    // RssAnon before the campaign is the process baseline (binary,
    // runtime, bench harness); everything the campaign adds on top —
    // golden run, store build, per-shard workspaces, page caches — is
    // the growth under test. A sampler thread tracks the peak, since
    // /proc/self/status has no high-water mark for RssAnon.
    let rss_before = argus_bench::anon_rss_bytes().unwrap_or(0);
    let sampling = AtomicBool::new(true);
    let stop = AtomicBool::new(false);
    let progress = Progress::new(shards);
    let (rep, secs, rss_anon_peak) = std::thread::scope(|scope| {
        let sampler = scope.spawn(|| {
            let mut peak = 0u64;
            while sampling.load(std::sync::atomic::Ordering::Relaxed) {
                peak = peak.max(argus_bench::anon_rss_bytes().unwrap_or(0));
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            peak.max(argus_bench::anon_rss_bytes().unwrap_or(0))
        });
        let t = Instant::now();
        let rep =
            run_sharded(&w, &cfg, &ocfg, &stop, &progress).expect("store-scale campaign runs");
        let secs = t.elapsed().as_secs_f64();
        sampling.store(false, std::sync::atomic::Ordering::Relaxed);
        (rep, secs, sampler.join().expect("sampler thread"))
    });
    let rss_growth = rss_anon_peak.saturating_sub(rss_before);
    // One working-set-sized actor per shard (the reused workspace), plus
    // the golden-run/prepare context and the inert-fork template; 2x per
    // actor covers allocator slack and non-image state. No snapshot term.
    let rss_budget = (shards as u64 + 2) * RSS_FACTOR * working_set;

    assert_eq!(rep.completed, injections, "campaign must complete");
    assert!(rep.snapshots > 1, "expected golden-run checkpoints, got {}", rep.snapshots);
    let rate = injections as f64 / secs;
    let baseline = fork_baseline();
    println!(
        "{injections} injections in {secs:.1}s = {rate:.1} inj/s ({} snapshot checkpoints)",
        rep.snapshots
    );
    println!(
        "campaign anon-RSS growth {:.1} MiB (budget {:.1} MiB = {} actors x {RSS_FACTOR}x {:.0} MiB working set)",
        rss_growth as f64 / (1 << 20) as f64,
        rss_budget as f64 / (1 << 20) as f64,
        shards + 2,
        working_set as f64 / (1 << 20) as f64,
    );

    let json = Json::obj()
        .set("bench", "store_scale")
        .set("smoke", smoke())
        .set("workload", "stress_xl")
        .set("store", store.label())
        .set("injections", injections as u64)
        .set("shards", shards as u64)
        .set("snapshot_every", snapshot_every)
        .set("snapshots", rep.snapshots)
        .set("seconds", secs)
        .set("injections_per_second", rate)
        .set("fork_baseline_inj_per_sec", baseline)
        .set("working_set_bytes", working_set)
        .set("anon_rss_before_bytes", rss_before)
        .set("anon_rss_peak_bytes", rss_anon_peak)
        .set("anon_rss_growth_bytes", rss_growth)
        .set("anon_rss_budget_bytes", rss_budget)
        .set("peak_rss_bytes", argus_bench::peak_rss_bytes().unwrap_or(0));
    let text = json.to_string_compact();
    Json::parse(&text).expect("bench emitted invalid JSON");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
    std::fs::write(out, &text).expect("write BENCH_store.json");
    println!("wrote BENCH_store.json");

    // The RSS ceiling holds in smoke mode too (it is the CI job's whole
    // point); only the absolute throughput gate needs the full campaign.
    assert!(
        rss_growth <= rss_budget,
        "RSS gate: campaign anon-RSS growth {rss_growth} B exceeds {rss_budget} B \
         ({} actors x {RSS_FACTOR}x {working_set} B working set) — the store is not out of core",
        shards + 2,
    );
    if !smoke() {
        assert!(
            rate >= baseline,
            "throughput gate: {rate:.1} inj/s on the XL tier fell below the serial \
             delta-fork baseline {baseline:.1} inj/s from BENCH_fork.json"
        );
    }
}
