//! Ablation: signature width.
//!
//! §2 claims DCS aliasing "can be arbitrarily reduced by increasing
//! signature sizes"; §3.2.2 picks 5 bits as the smallest width giving each
//! register a unique initial value. This ablation sweeps the SHS/DCS width,
//! measuring silent-corruption rate against checker area.

use argus_area::core_model::{argus_additions, total_gates, ArgusParams};
use argus_compiler::EmbedConfig;
use argus_core::ArgusConfig;
use argus_faults::campaign::{run_campaign, CampaignConfig, Outcome};
use argus_sim::fault::FaultKind;

fn main() {
    println!("== Ablation: SHS/DCS signature width ==\n");
    println!("{:>5} | {:>9} | {:>9} | {:>12}", "bits", "SDC", "coverage", "checker gates");
    for w in [3u32, 4, 5] {
        let rep = run_campaign(
            &argus_workloads::stress(),
            &CampaignConfig {
                injections: 1200,
                kind: FaultKind::Permanent,
                acfg: ArgusConfig { sig_width: w, ..Default::default() },
                ecfg: EmbedConfig { sig_width: w, ..Default::default() },
                ..Default::default()
            },
        );
        let gates = total_gates(&argus_additions(ArgusParams { sig_width: w, modulus: 31 }));
        println!(
            "{w:>5} | {:>8.2}% | {:>8.1}% | {gates:>12.0}",
            100.0 * rep.fraction(Outcome::UnmaskedUndetected),
            100.0 * rep.unmasked_coverage(),
        );
    }
    println!("\npaper design point: 5 bits — the widest signature the embedding");
    println!("budget supports (one 5-bit slot per successor; indirect targets");
    println!("carry 5 top bits), and the narrowest giving every register a");
    println!("unique initial value. The area model (argus-area) extrapolates");
    println!("hypothetical 6-8 bit checkers for cost comparison only.");
}
