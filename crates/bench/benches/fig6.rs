//! Reproduces **Figure 6** — runtime overhead with direct-mapped 8KB
//! caches (paper: 3.9% average, with high per-benchmark variance including
//! occasional speedups from basic-block re-alignment).

use argus_bench::{chart, mean_of, measure_suite};

fn main() {
    println!("== Figure 6: runtime overhead, 1-way I-cache (paper avg ≈3.9%) ==\n");
    let rows = measure_suite(1);
    for r in &rows {
        println!("{}", chart::row(r.name, r.runtime_pct(), 3.0));
    }
    let mean = mean_of(&rows, |r| r.runtime_pct());
    println!("{}", chart::row("mean", mean, 3.0));
    println!("\nsummary: runtime overhead {mean:.2}% (paper 3.9%)");
    println!(
        "cycles: {:?}",
        rows.iter().map(|r| (r.name, r.cycles_base, r.cycles_argus)).collect::<Vec<_>>()
    );
}
