//! Interpreter throughput gate (steps/sec through `Machine::step`).
//!
//! Every experiment in the reproduction — coverage campaigns, latency
//! sweeps, sharded injections, snapshot forks — bottoms out in the
//! simulator step loop, so steps/sec is the single multiplier on campaign
//! scale. This bench pins a number on it across the axes that matter:
//!
//! * workload: `stress` (short, branchy) and `pegwit` (long, compute-heavy);
//! * argus mode on (signature-embedded binary) vs. off (baseline binary);
//! * injector quiescent (no fault, the golden-run configuration) vs. armed
//!   (a fault resident in the injector from cycle 0 — here with
//!   sensitization 0 so execution is architecturally identical and only
//!   the injector-path overhead is measured);
//! * plus a `checked` row stepping the full Argus checker in lockstep
//!   (the per-injection campaign loop), and `blocks` rows running the
//!   block-compiled engine — machine-only (`argus_on_blocks`) and with
//!   batched SHS/DCS checking (`argus_on_checked_blocks`).
//!
//! Results land in `BENCH_throughput.json` at the repo root. The gate: the argus-on,
//! quiescent-injector golden-run configuration must clear 1.5x the pre-PR
//! baseline recorded in [`PRE_PR_GOLDEN_STEPS_PER_SEC`].
//!
//! `ARGUS_BENCH_SMOKE=1` runs one iteration per row and skips the speedup
//! gate (CI smoke mode: proves the bench runs and emits valid JSON).
//! `ARGUS_BENCH_SECS` overrides the per-row measuring window.

use argus_compiler::{compile, preplan, EmbedConfig, Mode, Program};
use argus_core::{Argus, ArgusConfig};
use argus_machine::{sites, Machine, MachineConfig, StepOutcome};
use argus_orchestrator::Json;
use argus_sim::fault::{Fault, FaultInjector, FaultKind, SiteFlavor};
use argus_workloads::Workload;
use std::time::Instant;

/// Golden-run (argus-on, quiescent-injector, machine-only) steps/sec of the
/// pre-PR tree, measured at commit f54c319 on the build machine with the
/// same release profile. The hot-loop overhaul is gated against these.
const PRE_PR_GOLDEN_STEPS_PER_SEC: &[(&str, f64)] = &[("stress", 4.93e6), ("pegwit", 5.94e6)];

/// Speedup the optimized step path must reach on every workload's
/// golden-run configuration.
const REQUIRED_SPEEDUP: f64 = 1.5;

fn smoke() -> bool {
    std::env::var_os("ARGUS_BENCH_SMOKE").is_some()
}

/// A fault resident in the injector from cycle 0 whose sensitization is
/// zero: it never corrupts a signal (execution stays bit-identical to the
/// golden run) but forces every tap through the armed slow path — the
/// structurally-masked population of a real campaign.
fn armed_inert_fault() -> Fault {
    Fault {
        site: sites::EX_RESULT_BUS,
        bit: 0,
        kind: FaultKind::Permanent,
        arm_cycle: 0,
        flavor: SiteFlavor::Single,
        width: 32,
        sensitization: 0.0,
    }
}

struct Scenario {
    config: &'static str,
    argus_mode: bool,
    armed: bool,
    checked: bool,
    /// Run through the block-compiled engine (`run_to_halt` with the plan
    /// cache warmed) instead of the one-step interpreter loop.
    blocks: bool,
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        config: "argus_on/quiescent",
        argus_mode: true,
        armed: false,
        checked: false,
        blocks: false,
    },
    Scenario {
        config: "argus_on/armed",
        argus_mode: true,
        armed: true,
        checked: false,
        blocks: false,
    },
    Scenario {
        config: "argus_off/quiescent",
        argus_mode: false,
        armed: false,
        checked: false,
        blocks: false,
    },
    Scenario {
        config: "argus_off/armed",
        argus_mode: false,
        armed: true,
        checked: false,
        blocks: false,
    },
    Scenario {
        config: "argus_on_checked/quiescent",
        argus_mode: true,
        armed: false,
        checked: true,
        blocks: false,
    },
    Scenario {
        config: "argus_on_blocks/quiescent",
        argus_mode: true,
        armed: false,
        checked: false,
        blocks: true,
    },
    Scenario {
        config: "argus_on_checked_blocks/quiescent",
        argus_mode: true,
        armed: false,
        checked: true,
        blocks: true,
    },
];

/// One full program execution; returns steps taken (commits + stalls).
fn run_once(prog: &Program, mcfg: MachineConfig, sc: &Scenario, bound: u64) -> u64 {
    let mut m = Machine::new(mcfg);
    prog.load(&mut m);
    let mut inj = if sc.armed {
        FaultInjector::with_fault(armed_inert_fault())
    } else {
        FaultInjector::none()
    };
    if sc.blocks {
        // Block-compiled path: lower every static block up front (the cost
        // is inside the measured window, as in a real golden run), then
        // retire whole blocks per iteration. Quiescent execution never
        // stalls, so cycles == steps.
        preplan(prog, &mut m);
        if !sc.checked {
            let res = m.run_to_halt(&mut inj, bound);
            assert!(res.halted, "workload must halt");
            return res.cycles;
        }
        let mut argus = Argus::new(ArgusConfig::default());
        if let Some(d) = prog.entry_dcs {
            argus.expect_entry(d);
        }
        loop {
            if let Some(gate) = m.plan_block(&inj, bound) {
                if argus.block_ready(&gate, &inj) {
                    if let Some(commit) = m.exec_block(&mut inj, &gate) {
                        let plan = m.plan_at(gate.addr).expect("completed block keeps its plan");
                        argus.on_block(plan, &commit, &mut inj);
                        continue;
                    }
                }
            }
            match m.step(&mut inj) {
                StepOutcome::Committed(rec) => {
                    argus.on_commit(&rec, &mut inj);
                }
                StepOutcome::Stalled => {}
                StepOutcome::Halted => break,
            }
            assert!(m.cycle() < bound, "workload must halt");
        }
        assert!(m.halted(), "workload must halt");
        assert!(argus.events().is_empty(), "fault-free run raised a detection");
        return m.cycle();
    }
    let mut checker = sc.checked.then(|| {
        let mut a = Argus::new(ArgusConfig::default());
        if let Some(d) = prog.entry_dcs {
            a.expect_entry(d);
        }
        a
    });
    let mut steps = 0u64;
    loop {
        match m.step(&mut inj) {
            StepOutcome::Committed(rec) => {
                steps += 1;
                if let Some(a) = checker.as_mut() {
                    a.on_commit(&rec, &mut inj);
                }
            }
            StepOutcome::Stalled => steps += 1,
            StepOutcome::Halted => break,
        }
        assert!(m.cycle() < bound, "workload must halt");
    }
    assert!(m.halted(), "workload must halt");
    steps
}

struct Row {
    workload: &'static str,
    config: &'static str,
    runs: u64,
    steps: u64,
    secs: f64,
    rate: f64,
}

fn bench_workload(w: &Workload, rows: &mut Vec<Row>, window_secs: f64) {
    let argus_prog = compile(&w.unit, Mode::Argus, &EmbedConfig::default())
        .unwrap_or_else(|e| panic!("{}: argus compile failed: {e}", w.name));
    let baseline_prog = compile(&w.unit, Mode::Baseline, &EmbedConfig::default())
        .unwrap_or_else(|e| panic!("{}: baseline compile failed: {e}", w.name));
    let bound = 500_000_000;

    for sc in SCENARIOS {
        let (prog, mcfg) = if sc.argus_mode {
            (&argus_prog, MachineConfig::default())
        } else {
            (&baseline_prog, MachineConfig { argus_mode: false, ..MachineConfig::default() })
        };
        // Warm-up run (page faults, cache warming) outside the window.
        run_once(prog, mcfg, sc, bound);
        let (mut steps, mut runs) = (0u64, 0u64);
        let t = Instant::now();
        loop {
            steps += run_once(prog, mcfg, sc, bound);
            runs += 1;
            if smoke() || t.elapsed().as_secs_f64() >= window_secs {
                break;
            }
        }
        let secs = t.elapsed().as_secs_f64();
        let rate = steps as f64 / secs;
        println!(
            "{:>8} | {:<26} | {:>4} runs | {:>9} steps | {:>6.3}s | {:>10.0} steps/s",
            w.name, sc.config, runs, steps, secs, rate
        );
        rows.push(Row { workload: w.name, config: sc.config, runs, steps, secs, rate });
    }
}

fn main() {
    let window_secs: f64 =
        std::env::var("ARGUS_BENCH_SECS").ok().and_then(|s| s.parse().ok()).unwrap_or(0.6);
    println!("== interpreter throughput (Machine::step) ==");
    if smoke() {
        println!("(smoke mode: one run per row, no speedup gate)");
    }
    let header = ["workload", "config", "runs", "steps", "time", "throughput"];
    println!(
        "{:>8} | {:<26} | {:>9} | {:>15} | {:>7} | {}",
        header[0], header[1], header[2], header[3], header[4], header[5]
    );

    let mut rows = Vec::new();
    bench_workload(&argus_workloads::stress(), &mut rows, window_secs);
    bench_workload(&argus_workloads::pegwit::pegwit(), &mut rows, window_secs);

    // Speedup of the headline configuration over the pre-PR baseline.
    let mut speedups = Vec::new();
    for &(name, base) in PRE_PR_GOLDEN_STEPS_PER_SEC {
        let row = rows
            .iter()
            .find(|r| r.workload == name && r.config == "argus_on/quiescent")
            .expect("headline row present");
        speedups.push((name, row.rate / base));
    }
    let min_speedup = speedups.iter().map(|&(_, s)| s).fold(f64::INFINITY, f64::min);
    println!();
    for &(name, s) in &speedups {
        println!("{name}: {s:.2}x vs pre-PR golden-run baseline");
    }

    let json = Json::obj()
        .set("bench", "throughput")
        .set("smoke", smoke())
        .set(
            "pre_pr_baseline_steps_per_sec",
            PRE_PR_GOLDEN_STEPS_PER_SEC
                .iter()
                .fold(Json::obj(), |j, &(name, rate)| j.set(name, rate)),
        )
        .set(
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj()
                            .set("workload", r.workload)
                            .set("config", r.config)
                            .set("runs", r.runs)
                            .set("steps", r.steps)
                            .set("seconds", r.secs)
                            .set("steps_per_sec", r.rate)
                    })
                    .collect(),
            ),
        )
        .set(
            "golden_speedup_vs_pre_pr",
            speedups.iter().fold(Json::obj(), |j, &(name, s)| j.set(name, s)),
        )
        .set("min_golden_speedup", min_speedup);
    let text = json.to_string_compact();
    Json::parse(&text).expect("bench emitted invalid JSON");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    std::fs::write(out, &text).expect("write BENCH_throughput.json");
    println!("wrote BENCH_throughput.json");

    if !smoke() {
        assert!(
            min_speedup >= REQUIRED_SPEEDUP,
            "hot-loop gate: golden-run steps/sec must clear {REQUIRED_SPEEDUP}x the pre-PR \
             baseline on every workload, got {min_speedup:.2}x"
        );
    }
}
