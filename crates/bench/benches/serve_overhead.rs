//! Daemon-overhead gate: campaign-as-a-service must cost (almost)
//! nothing over the bare engine.
//!
//! The `argus serve` daemon wraps `run_sharded` in a job queue, an HTTP
//! API, a progress sampler, per-transition job-table persistence, and
//! continuous checkpointing. All of that is bookkeeping around the same
//! injection loop, so a campaign submitted over HTTP must complete in at
//! most [`MAX_OVERHEAD`] more wall-clock time than the identical
//! campaign run directly on the engine — measured end to end, including
//! submission, scheduling, polling, and report fetch. Both sides
//! checkpoint at the daemon's interval: every daemon job checkpoints (it
//! is the durability contract behind crash resume), so the reference run
//! gets the same `--checkpoint` the one-shot CLI would use, and the gate
//! isolates the *service* overhead — queue, HTTP, sampling, persistence
//! — instead of charging the daemon for durability itself.
//!
//! The run also re-checks the identity guarantee while it is at it: the
//! report fetched over HTTP must match the direct run's deterministic
//! payload byte for byte (volatile `"run"` section removed).
//!
//! Results land in `BENCH_serve.json` at the repo root.
//! `ARGUS_BENCH_SMOKE=1` shrinks the campaign and skips the gate.
//! `ARGUS_INJECTIONS` overrides the campaign size.

use argus_faults::CampaignConfig;
use argus_orchestrator::{run_sharded, Json, OrchestratorConfig, Progress};
use argus_server::http::http_request;
use argus_server::{Server, ServerConfig};
use std::sync::atomic::AtomicBool;
use std::time::{Duration, Instant};

/// Allowed daemon overhead over the bare engine (fraction of the direct
/// run's wall clock).
const MAX_OVERHEAD: f64 = 0.05;

/// Campaign seed: fixed so the identity check is meaningful.
const SEED: u64 = 0xBE7C;

fn smoke() -> bool {
    std::env::var_os("ARGUS_BENCH_SMOKE").is_some()
}

/// Direct engine run with the same worker count and checkpoint cadence
/// the daemon will use.
fn run_direct(n: usize, workers: usize, checkpoint_interval: Duration) -> (f64, String) {
    let ckpt = std::env::temp_dir().join(format!("argus-bench-direct-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let mut cfg = CampaignConfig { injections: n, ..Default::default() };
    cfg.seed = SEED;
    let ocfg = OrchestratorConfig {
        shards: workers,
        checkpoint_path: Some(ckpt.clone()),
        checkpoint_interval,
        ..Default::default()
    };
    let progress = Progress::new(workers);
    let t = Instant::now();
    let rep =
        run_sharded(&argus_workloads::stress(), &cfg, &ocfg, &AtomicBool::new(false), &progress)
            .expect("direct campaign");
    let secs = t.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(ckpt.with_extension("bak"));
    (secs, rep.to_json().without("run").to_string_compact())
}

/// Same campaign end-to-end through the daemon: start, submit over HTTP,
/// poll to completion, fetch the report, drain.
fn run_via_daemon(n: usize, workers: usize, checkpoint_interval: Duration) -> (f64, String) {
    let state_dir = std::env::temp_dir().join(format!("argus-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let t = Instant::now();
    let mut server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        http_threads: 2,
        state_dir: state_dir.clone(),
        checkpoint_interval,
        lease_ttl: Duration::from_secs(10),
    })
    .expect("daemon start");
    let addr = server.addr();
    let body = format!("{{\"n\":{n},\"seed\":{SEED}}}");
    let (status, resp) = http_request(addr, "POST", "/jobs", Some(&body)).expect("submit");
    assert_eq!(status, 201, "{resp}");
    let id =
        Json::parse(&resp).ok().and_then(|d| d.get("id").and_then(Json::as_u64)).expect("job id");
    // Follow the job through the long-poll events endpoint rather than
    // busy-polling: parked connections cost the engine nothing, which
    // matters on small machines where a 20 ms poll loop would steal
    // worker CPU and show up as phantom service overhead.
    let mut since = 0u64;
    loop {
        let (status, resp) = http_request(
            addr,
            "GET",
            &format!("/jobs/{id}/events?since={since}&wait_ms=10000"),
            None,
        )
        .expect("events");
        assert_eq!(status, 200, "{resp}");
        let doc = Json::parse(&resp).expect("events payload");
        since = doc.get("next_since").and_then(Json::as_u64).expect("next_since");
        match doc.get("state").and_then(Json::as_str) {
            Some("done") => break,
            Some("failed") | Some("cancelled") => panic!("job ended early: {resp}"),
            _ => {}
        }
    }
    let (status, report) =
        http_request(addr, "GET", &format!("/jobs/{id}/report"), None).expect("report");
    assert_eq!(status, 200, "{report}");
    server.drain();
    let secs = t.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&state_dir);
    let payload = Json::parse(&report).expect("report JSON").without("run").to_string_compact();
    (secs, payload)
}

fn main() {
    // The daemon's costs are almost all fixed (startup, job-table
    // persistence, the 20 ms poll quantum, drain — ~0.2 s total), so the
    // campaign must be long enough to amortize them: the gate measures
    // the *service* overhead on real campaigns, not daemon startup. 8k
    // injections ≈ 5 s direct on 2 workers, putting the fixed slice well
    // under the 5% budget.
    let injections: usize = std::env::var("ARGUS_INJECTIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke() { 20 } else { 8_000 });
    let workers = 2;
    println!("== serve overhead (daemon round-trip vs bare engine, {workers} workers) ==");
    if smoke() {
        println!("(smoke mode: {injections} injections, no overhead gate)");
    }

    // Interleave D-d-D-d to split any machine warmup drift across both
    // sides, keep the best of each: the gate compares steady-state costs,
    // not scheduler noise.
    let mut direct_secs = f64::INFINITY;
    let mut daemon_secs = f64::INFINITY;
    let mut direct_payload = String::new();
    let mut daemon_payload = String::new();
    let checkpoint_interval = Duration::from_millis(500);
    let rounds = if smoke() { 1 } else { 2 };
    for _ in 0..rounds {
        let (s, p) = run_direct(injections, workers, checkpoint_interval);
        direct_secs = direct_secs.min(s);
        direct_payload = p;
        let (s, p) = run_via_daemon(injections, workers, checkpoint_interval);
        daemon_secs = daemon_secs.min(s);
        daemon_payload = p;
    }

    assert_eq!(
        daemon_payload, direct_payload,
        "identity violated: HTTP-fetched report differs from the direct engine run"
    );

    let overhead = daemon_secs / direct_secs - 1.0;
    println!("direct engine : {direct_secs:>7.2}s");
    println!("via daemon    : {daemon_secs:>7.2}s  (overhead {:+.1}%)", overhead * 100.0);

    let json = Json::obj()
        .set("bench", "serve_overhead")
        .set("smoke", smoke())
        .set("workload", "stress")
        .set("injections", injections as u64)
        .set("workers", workers as u64)
        .set("direct_seconds", direct_secs)
        .set("daemon_seconds", daemon_secs)
        .set("overhead_fraction", overhead)
        .set("max_overhead_fraction", MAX_OVERHEAD)
        .set("identity_check", "passed");
    let text = json.to_string_compact();
    Json::parse(&text).expect("bench emitted invalid JSON");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(out, &text).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");

    if !smoke() {
        assert!(
            overhead <= MAX_OVERHEAD,
            "serve gate: daemon round-trip must cost <= {:.0}% over the bare engine, got {:+.1}%",
            MAX_OVERHEAD * 100.0,
            overhead * 100.0
        );
    }
}
