//! Reproduces **Figure 5** — dynamic instruction-count overhead of
//! signature embedding per benchmark (paper: 3.5% average; static
//! overhead 7% average), on the MediaBench-like suite.

use argus_bench::{chart, mean_of, measure_suite};

fn main() {
    println!("== Figure 5: dynamic instruction overhead (paper avg ≈3.5%) ==\n");
    let rows = measure_suite(1);
    for r in &rows {
        println!("{}", chart::row(r.name, r.dynamic_pct(), 3.0));
    }
    let dyn_mean = mean_of(&rows, |r| r.dynamic_pct());
    let stat_mean = mean_of(&rows, |r| r.static_pct());
    println!("{}", chart::row("mean", dyn_mean, 3.0));
    println!("\nstatic instruction overhead per benchmark (paper avg ≈7%):");
    for r in &rows {
        println!(
            "  {:12} {:6.2}%  ({} → {})",
            r.name,
            r.static_pct(),
            r.static_base,
            r.static_argus
        );
    }
    println!("  {:12} {:6.2}%", "mean", stat_mean);
    println!("\nsummary: dynamic {dyn_mean:.2}% (paper 3.5%), static {stat_mean:.2}% (paper 7%)");
}
