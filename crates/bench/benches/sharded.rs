//! Sharded-campaign scaling check.
//!
//! Runs the same campaign serially and with 1/2/4/8 shards, asserts every
//! configuration produces identical outcome tallies (the orchestrator's
//! headline guarantee), and reports wall-clock plus speedup per shard
//! count. Speedup tracks the host's core count — on a single-core box all
//! configurations time roughly the same, which is expected.

use argus_faults::campaign::{run_campaign, CampaignConfig};
use argus_faults::Outcome;
use argus_orchestrator::{run_sharded, OrchestratorConfig, Progress};
use std::sync::atomic::AtomicBool;
use std::time::Instant;

fn main() {
    let injections =
        std::env::var("ARGUS_INJECTIONS").ok().and_then(|s| s.parse().ok()).unwrap_or(1500);
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let cfg = CampaignConfig { injections, ..Default::default() };
    let w = argus_workloads::stress();

    println!("== sharded campaign scaling ({injections} injections, {cores} host cores) ==");
    println!("(ARGUS_INJECTIONS overrides the campaign size)\n");

    let t0 = Instant::now();
    let serial = run_campaign(&w, &cfg);
    let serial_s = t0.elapsed().as_secs_f64();
    let serial_counts: Vec<u64> = Outcome::ALL.iter().map(|&o| serial.count(o) as u64).collect();
    println!("{:>7} | {:>8.2}s | {:>7} | tallies {:?}", "serial", serial_s, "1.00x", serial_counts);

    for shards in [1usize, 2, 4, 8] {
        let ocfg = OrchestratorConfig { shards, ..Default::default() };
        let progress = Progress::new(shards);
        let stop = AtomicBool::new(false);
        let t = Instant::now();
        let rep = run_sharded(&w, &cfg, &ocfg, &stop, &progress).expect("sharded run");
        let secs = t.elapsed().as_secs_f64();
        let counts: Vec<u64> = Outcome::ALL.iter().map(|&o| rep.count(o)).collect();
        assert_eq!(counts, serial_counts, "shards={shards} diverged from the serial engine");
        println!(
            "{:>7} | {:>8.2}s | {:>6.2}x | tallies {:?} (identical)",
            format!("{shards} shard"),
            secs,
            serial_s / secs,
            counts
        );
    }
    println!("\nall shard counts reproduce the serial tallies bit-for-bit");
}
