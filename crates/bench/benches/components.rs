//! Criterion microbenchmarks of the library itself: simulator throughput,
//! checker update rates, and the hot primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use argus_compiler::{compile, EmbedConfig, Mode};
use argus_core::dcs::DcsUnit;
use argus_core::shs::{ShsEngine, ShsFile};
use argus_core::{Argus, ArgusConfig};
use argus_machine::{Machine, MachineConfig, StepOutcome};
use argus_sim::crc::Crc;
use argus_sim::fault::FaultInjector;

fn bench_crc(c: &mut Criterion) {
    let crc = Crc::new(5);
    c.bench_function("crc5_update", |b| {
        b.iter(|| {
            let mut s = 0u32;
            for i in 0..32u32 {
                s = crc.update(black_box(s), black_box(i & 31));
            }
            s
        })
    });
}

fn bench_shs_dcs(c: &mut Criterion) {
    let engine = ShsEngine::new(5);
    let dcs = DcsUnit::new(5);
    let add = argus_isa::Instr::Alu {
        op: argus_isa::AluOp::Add,
        rd: argus_isa::Reg::new(1),
        ra: argus_isa::Reg::new(2),
        rb: argus_isa::Reg::new(3),
    };
    c.bench_function("shs_apply_block_of_16", |b| {
        b.iter(|| {
            let mut f = ShsFile::new(5);
            for _ in 0..16 {
                engine.apply_static(&mut f, black_box(&add));
            }
            dcs.compute(&f)
        })
    });
}

fn machine_with_stress(argus_mode: bool) -> Machine {
    let w = argus_workloads::stress();
    let mode = if argus_mode { Mode::Argus } else { Mode::Baseline };
    let prog = compile(&w.unit, mode, &EmbedConfig::default()).unwrap();
    let mut m = Machine::new(MachineConfig { argus_mode, ..Default::default() });
    prog.load(&mut m);
    m
}

fn bench_machine(c: &mut Criterion) {
    c.bench_function("machine_run_stress_baseline", |b| {
        b.iter_batched(
            || machine_with_stress(false),
            |mut m| m.run_to_halt(&mut FaultInjector::none(), 10_000_000),
            criterion::BatchSize::LargeInput,
        )
    });
    c.bench_function("machine_run_stress_checked", |b| {
        b.iter_batched(
            || machine_with_stress(true),
            |mut m| {
                let mut argus = Argus::new(ArgusConfig::default());
                let mut inj = FaultInjector::none();
                loop {
                    match m.step(&mut inj) {
                        StepOutcome::Committed(rec) => {
                            argus.on_commit(&rec, &mut inj);
                        }
                        StepOutcome::Stalled => {}
                        StepOutcome::Halted => break,
                    }
                }
                argus.events().len()
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_compile(c: &mut Criterion) {
    let unit = argus_workloads::stress().unit;
    c.bench_function("compile_stress_argus", |b| {
        b.iter(|| compile(black_box(&unit), Mode::Argus, &EmbedConfig::default()).unwrap())
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_crc, bench_shs_dcs, bench_machine, bench_compile
);
criterion_main!(benches);
