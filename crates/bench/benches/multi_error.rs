//! Multiple-error study (§4.1's acknowledged limitation).
//!
//! "Argus-1 cannot detect when one error causes the core to execute
//! incorrectly and another error in the corresponding checker logic
//! prevents detection." This bench quantifies how rare that scenario is:
//! it injects *pairs* of permanent faults — one in the core, one in the
//! checker hardware — and compares the silent-corruption rate against the
//! single-fault baseline.

use argus_compiler::{compile, EmbedConfig, Mode};
use argus_core::{Argus, ArgusConfig};
use argus_faults::sites::{sample_points, SamplePoint};
use argus_machine::{Machine, MachineConfig, StepOutcome};
use argus_sim::fault::{Fault, FaultInjector, FaultKind};
use argus_sim::rng::SplitMix64;

fn run_pair(
    prog: &argus_compiler::Program,
    faults: Vec<Fault>,
    golden: (u64, u64),
) -> (bool, bool) {
    let (gdigest, gcycles) = golden;
    let mut m = Machine::new(MachineConfig::default());
    prog.load(&mut m);
    let mut argus = Argus::new(ArgusConfig::default());
    argus.expect_entry(prog.entry_dcs.unwrap());
    let mut inj = FaultInjector::with_faults(faults);
    loop {
        match m.step(&mut inj) {
            StepOutcome::Committed(rec) => {
                argus.on_commit(&rec, &mut inj);
            }
            StepOutcome::Stalled => {
                argus.on_stall(1, &mut inj);
            }
            StepOutcome::Halted => break,
        }
        if m.cycle() > gcycles * 2 + 2_000 {
            break;
        }
    }
    if argus.first_detection().is_none() {
        argus.scrub_memory(&m, prog.data_base, &mut inj);
    }
    let masked = m.halted() && m.state_digest() == gdigest;
    (masked, argus.first_detection().is_some())
}

fn main() {
    let w = argus_workloads::stress();
    let prog = compile(&w.unit, Mode::Argus, &EmbedConfig::default()).unwrap();
    let mut gm = Machine::new(MachineConfig::default());
    prog.load(&mut gm);
    gm.run_to_halt(&mut FaultInjector::none(), 100_000_000);
    let golden = (gm.state_digest(), gm.cycle());

    let inventory = argus_faults::sites::full_inventory();
    let core_sites: Vec<_> =
        inventory.iter().filter(|s| !s.unit.is_argus_hardware()).cloned().collect();
    let argus_sites: Vec<_> =
        inventory.iter().filter(|s| s.unit.is_argus_hardware()).cloned().collect();

    let n = 800usize;
    let core_pts = sample_points(&core_sites, n, 0xD0B1);
    let chk_pts = sample_points(&argus_sites, n, 0xD0B2);
    let mut arm_rng = SplitMix64::new(0xD0B3);
    let mk = |p: &SamplePoint, arm: u64| p.fault(FaultKind::Permanent, arm);

    let mut single_sdc = 0u32;
    let mut single_unmasked = 0u32;
    let mut pair_sdc = 0u32;
    let mut pair_unmasked = 0u32;
    for (cp, kp) in core_pts.iter().zip(&chk_pts) {
        let arm = arm_rng.below(golden.1 * 3 / 4);
        // Single core fault.
        let (masked, detected) = run_pair(&prog, vec![mk(cp, arm)], golden);
        if !masked {
            single_unmasked += 1;
            if !detected {
                single_sdc += 1;
            }
        }
        // Core fault + simultaneous checker fault.
        let (masked, detected) = run_pair(&prog, vec![mk(cp, arm), mk(kp, arm)], golden);
        if !masked {
            pair_unmasked += 1;
            if !detected {
                pair_sdc += 1;
            }
        }
    }

    println!("== Multiple-error study: core fault alone vs core + checker fault ==\n");
    println!("{n} samples, permanent faults, stress microbenchmark\n");
    println!(
        "single fault : {:4} unmasked, {:3} silent  (SDC {:4.2}% of injections)",
        single_unmasked,
        single_sdc,
        100.0 * single_sdc as f64 / n as f64
    );
    println!(
        "fault pair   : {:4} unmasked, {:3} silent  (SDC {:4.2}% of injections)",
        pair_unmasked,
        pair_sdc,
        100.0 * pair_sdc as f64 / n as f64
    );
    println!("\nthe pair's extra silent corruptions are exactly the paper's");
    println!("\"error in the corresponding checker prevents detection\" class;");
    println!("most checker faults instead *add* detections (false alarms), so");
    println!("the increase stays small.");
}
