//! Distributed-execution gate: remote chunk leasing must scale and must
//! not tax the injection loop.
//!
//! Two claims, both measured over real loopback HTTP with remote-only
//! (`budget: 0`) jobs so every injection crosses the wire:
//!
//! 1. **Scaling**: two `argus worker` runtimes finish the same campaign
//!    at ≥ [`MIN_SCALING`]× the throughput of one — the lease protocol
//!    (chunk grants, completions, heartbeats) must not serialize
//!    workers. Gated only on hosts with ≥ 2 cores: a single-core machine
//!    has no parallelism for a second worker to exhibit, so the ratio is
//!    reported but cannot gate there.
//! 2. **Wire overhead**: two remote single-thread workers must finish
//!    within [`MAX_WIRE_OVERHEAD`] of the identical in-process
//!    `run_sharded` campaign on 2 shards — manifest fetch, artifact
//!    cold-start, JSON tallies and all.
//!
//! The run also re-checks the identity bar: the report fetched from the
//! daemon must match the in-process run byte for byte outside the
//! volatile `"run"` section.
//!
//! Results land in `BENCH_remote.json` at the repo root.
//! `ARGUS_BENCH_SMOKE=1` shrinks the campaign and skips both gates.
//! `ARGUS_INJECTIONS` overrides the campaign size.

use argus_faults::CampaignConfig;
use argus_orchestrator::{run_sharded, Json, OrchestratorConfig, Progress};
use argus_server::http::http_request;
use argus_server::{Server, ServerConfig};
use std::sync::atomic::AtomicBool;
use std::time::{Duration, Instant};

/// Two workers must beat one by at least this factor.
const MIN_SCALING: f64 = 1.5;

/// Allowed wall-clock overhead of 2 remote workers vs 2 in-process
/// shards (fraction of the in-process run).
const MAX_WIRE_OVERHEAD: f64 = 0.10;

/// Fixed seed so the identity check is meaningful.
const SEED: u64 = 0xD157;

fn smoke() -> bool {
    std::env::var_os("ARGUS_BENCH_SMOKE").is_some()
}

/// In-process reference: the same campaign on `shards` engine workers.
fn run_direct(n: usize, shards: usize) -> (f64, String) {
    let mut cfg = CampaignConfig { injections: n, ..Default::default() };
    cfg.seed = SEED;
    let ocfg = OrchestratorConfig { shards, ..Default::default() };
    let progress = Progress::new(shards);
    let t = Instant::now();
    let rep =
        run_sharded(&argus_workloads::stress(), &cfg, &ocfg, &AtomicBool::new(false), &progress)
            .expect("direct campaign");
    (t.elapsed().as_secs_f64(), rep.to_json().without("run").to_string_compact())
}

/// The same campaign as a remote-only distributed job: daemon + `workers`
/// single-thread `run_worker` runtimes over loopback. The clock covers
/// the whole distributed span — submit, cold-start (manifest + artifact
/// fetch + fingerprint check), leasing, execution, completion posts —
/// but not daemon startup/drain, which `serve_overhead` already gates.
fn run_remote(n: usize, workers: usize) -> (f64, String) {
    let state_dir =
        std::env::temp_dir().join(format!("argus-bench-remote-{}-{workers}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let mut server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        http_threads: 4,
        state_dir: state_dir.clone(),
        checkpoint_interval: Duration::from_millis(500),
        lease_ttl: Duration::from_secs(10),
    })
    .expect("daemon start");
    let addr = server.addr();

    let t = Instant::now();
    let body = format!("{{\"n\":{n},\"seed\":{SEED},\"distributed\":true,\"budget\":0}}");
    let (status, resp) = http_request(addr, "POST", "/jobs", Some(&body)).expect("submit");
    assert_eq!(status, 201, "{resp}");
    let id =
        Json::parse(&resp).ok().and_then(|d| d.get("id").and_then(Json::as_u64)).expect("job id");

    static STOP: AtomicBool = AtomicBool::new(false);
    let handles: Vec<_> = (0..workers)
        .map(|k| {
            let wcfg = argus_remote::WorkerConfig {
                connect: addr,
                workers: 1,
                poll: Duration::from_millis(20),
                job: Some(id),
                name: format!("bench-{k}"),
                cache_dir: None,
            };
            std::thread::spawn(move || argus_remote::run_worker(&wcfg, &STOP).expect("worker"))
        })
        .collect();

    let mut since = 0u64;
    loop {
        let (status, resp) = http_request(
            addr,
            "GET",
            &format!("/jobs/{id}/events?since={since}&wait_ms=10000"),
            None,
        )
        .expect("events");
        assert_eq!(status, 200, "{resp}");
        let doc = Json::parse(&resp).expect("events payload");
        since = doc.get("next_since").and_then(Json::as_u64).expect("next_since");
        match doc.get("state").and_then(Json::as_str) {
            Some("done") => break,
            Some("failed") | Some("cancelled") => panic!("job ended early: {resp}"),
            _ => {}
        }
    }
    let secs = t.elapsed().as_secs_f64();
    for h in handles {
        h.join().expect("worker thread");
    }
    let (status, report) =
        http_request(addr, "GET", &format!("/jobs/{id}/report"), None).expect("report");
    assert_eq!(status, 200, "{report}");
    server.drain();
    let _ = std::fs::remove_dir_all(&state_dir);
    let payload = Json::parse(&report).expect("report JSON").without("run").to_string_compact();
    (secs, payload)
}

fn main() {
    // Long enough that the fixed distributed costs — each worker's
    // cold-start golden run, manifest/artifact fetches, the submit and
    // report round-trips — amortize into the steady state the gates
    // describe. On a single-core host every one of those costs is pure
    // added CPU (nothing overlaps), so this is the conservative end of
    // the wire-overhead measurement, not a favorable one.
    let injections: usize = std::env::var("ARGUS_INJECTIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke() { 20 } else { 12_000 });
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    println!("== remote overhead (loopback workers vs in-process engine, {cores} host cores) ==");
    if smoke() {
        println!("(smoke mode: {injections} injections, no gates)");
    }

    let (direct_secs, direct_payload) = run_direct(injections, 2);
    let (one_secs, one_payload) = run_remote(injections, 1);
    let (two_secs, two_payload) = run_remote(injections, 2);

    assert_eq!(one_payload, direct_payload, "identity violated: 1-worker remote run differs");
    assert_eq!(two_payload, direct_payload, "identity violated: 2-worker remote run differs");

    let scaling = one_secs / two_secs;
    let wire_overhead = two_secs / direct_secs - 1.0;
    println!("in-process, 2 shards : {direct_secs:>7.2}s");
    println!("remote, 1 worker     : {one_secs:>7.2}s");
    println!(
        "remote, 2 workers    : {two_secs:>7.2}s  (scaling {scaling:.2}x, wire {:+.1}%)",
        wire_overhead * 100.0
    );

    let scaling_gated = !smoke() && cores >= 2;
    let json = Json::obj()
        .set("bench", "remote_overhead")
        .set("smoke", smoke())
        .set("workload", "stress")
        .set("host_cores", cores as u64)
        .set("scaling_gated", scaling_gated)
        .set("injections", injections as u64)
        .set("direct_seconds", direct_secs)
        .set("one_worker_seconds", one_secs)
        .set("two_worker_seconds", two_secs)
        .set("scaling_factor", scaling)
        .set("min_scaling_factor", MIN_SCALING)
        .set("wire_overhead_fraction", wire_overhead)
        .set("max_wire_overhead_fraction", MAX_WIRE_OVERHEAD)
        .set("identity_check", "passed");
    let text = json.to_string_compact();
    Json::parse(&text).expect("bench emitted invalid JSON");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_remote.json");
    std::fs::write(out, &text).expect("write BENCH_remote.json");
    println!("wrote BENCH_remote.json");

    if !smoke() {
        if scaling_gated {
            assert!(
                scaling >= MIN_SCALING,
                "remote gate: 2 workers must be >= {MIN_SCALING}x as fast as 1, got {scaling:.2}x"
            );
        } else {
            println!(
                "(single-core host: scaling reported, not gated — \
                 a second worker has no core to run on)"
            );
        }
        assert!(
            wire_overhead <= MAX_WIRE_OVERHEAD,
            "remote gate: wire overhead must be <= {:.0}% over in-process, got {:+.1}%",
            MAX_WIRE_OVERHEAD * 100.0,
            wire_overhead * 100.0
        );
    }
}
