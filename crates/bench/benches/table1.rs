//! Reproduces **Table 1** (error-injection results) and the §4.1.1
//! detection-attribution numbers.
//!
//! Paper reference (stress-test microbenchmark, single bit-inversions):
//!
//! ```text
//!            unmasked,undet  unmasked,det  masked,undet  masked,det(DME)
//! transient       0.76%          37.4%         38.2%         23.7%
//! permanent       0.46%          37.6%         38.2%         23.7%
//! coverage of unmasked errors: 98.0% / 98.8%
//! attribution: computation 45%, parity 36%, DCS 16%, watchdog 3%
//! ```

use argus_faults::campaign::{run_campaign, CampaignConfig};
use argus_sim::fault::FaultKind;

fn main() {
    let injections =
        std::env::var("ARGUS_INJECTIONS").ok().and_then(|s| s.parse().ok()).unwrap_or(3000);
    println!("== Table 1: error injection on the stress-test microbenchmark ==");
    println!("({injections} injections per fault type; ARGUS_INJECTIONS overrides)\n");
    println!("{:9} | {:>9} | {:>9} | {:>9} | {:>9}", "type", "SDC", "unm.det", "mask.und", "DME");
    for kind in [FaultKind::Transient, FaultKind::Permanent] {
        let rep = run_campaign(
            &argus_workloads::stress(),
            &CampaignConfig { injections, kind, ..Default::default() },
        );
        println!("{}", rep.table_row());
        println!(
            "{:9} | unmasked-error coverage: {:.1}%  (paper: {})",
            "",
            100.0 * rep.unmasked_coverage(),
            match kind {
                FaultKind::Transient => "98.0%",
                FaultKind::Permanent => "98.8%",
            }
        );
        println!(
            "\n-- §4.1.1 detection attribution (paper: cc 45% / parity 36% / dcs 16% / wd 3%) --"
        );
        println!("{}", rep.attribution);
    }
    println!("paper reference rows:");
    println!("transient |     0.76% |     37.4% |     38.2% |     23.7%");
    println!("permanent |     0.46% |     37.6% |     38.2% |     23.7%");
}
