//! Reproduces **Figure 7** — runtime overhead with 2-way set-associative
//! 8KB caches (paper: 3.2% average, with less variance than the
//! direct-mapped configuration because associativity absorbs the
//! re-alignment conflict noise).

use argus_bench::{chart, mean_of, measure_suite};

fn main() {
    println!("== Figure 7: runtime overhead, 2-way I-cache (paper avg ≈3.2%) ==\n");
    let rows = measure_suite(2);
    for r in &rows {
        println!("{}", chart::row(r.name, r.runtime_pct(), 3.0));
    }
    let mean = mean_of(&rows, |r| r.runtime_pct());
    println!("{}", chart::row("mean", mean, 3.0));

    // Variance comparison against the 1-way configuration (the paper's
    // qualitative claim for Figure 7 vs Figure 6).
    let rows1 = measure_suite(1);
    let spread = |rows: &[argus_bench::OverheadRow]| {
        let mut s = argus_sim::stats::OnlineStats::new();
        for r in rows {
            s.push(r.runtime_pct());
        }
        s.stddev()
    };
    println!(
        "\nsummary: runtime overhead {mean:.2}% (paper 3.2%); stddev 2-way {:.2} vs 1-way {:.2}",
        spread(&rows),
        spread(&rows1)
    );
}
