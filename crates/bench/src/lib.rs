//! # argus-bench — the experiment harness
//!
//! One bench target per table and figure of the paper's evaluation
//! (§4), plus ablations for the design choices DESIGN.md calls out:
//!
//! | target | reproduces |
//! |--------|------------|
//! | `table1` | §4.1 error-injection quadrants + §4.1.1 attribution |
//! | `table2` | §4.3 area overheads |
//! | `fig5` | Figure 5 — dynamic instruction overhead (and the static 7%) |
//! | `fig6` | Figure 6 — runtime overhead, direct-mapped I-cache |
//! | `fig7` | Figure 7 — runtime overhead, 2-way I-cache |
//! | `latency` | §4.2 — detection latency per checker |
//! | `ablation_checkers` | "a composition of all checkers is necessary" |
//! | `ablation_signature` | aliasing vs. signature width |
//! | `ablation_modulus` | residue-checker escape rate vs. M |
//! | `ablation_blocksize` | coverage/overhead vs. block split limit |
//! | `components` | Criterion microbenches of the library itself |
//!
//! Run everything with `cargo bench -p argus-bench`; each target prints
//! the paper-style rows.

use argus_compiler::{compile, EmbedConfig, Mode};
use argus_machine::MachineConfig;
use argus_mem::MemConfig;
use argus_sim::stats::OnlineStats;
use argus_workloads::Workload;

pub mod chart;

/// Per-benchmark overhead measurements (one Figure-5/6/7 bar).
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Static instructions, baseline / Argus.
    pub static_base: u64,
    /// Static instructions with signatures embedded.
    pub static_argus: u64,
    /// Dynamic instructions, baseline / Argus.
    pub dyn_base: u64,
    /// Dynamic instructions with signatures.
    pub dyn_argus: u64,
    /// Cycles, baseline / Argus.
    pub cycles_base: u64,
    /// Cycles with signatures.
    pub cycles_argus: u64,
}

impl OverheadRow {
    /// Static instruction-count overhead in percent.
    pub fn static_pct(&self) -> f64 {
        pct(self.static_base, self.static_argus)
    }

    /// Dynamic instruction-count overhead in percent (Figure 5).
    pub fn dynamic_pct(&self) -> f64 {
        pct(self.dyn_base, self.dyn_argus)
    }

    /// Runtime overhead in percent (Figures 6/7).
    pub fn runtime_pct(&self) -> f64 {
        pct(self.cycles_base, self.cycles_argus)
    }
}

fn pct(base: u64, argus: u64) -> f64 {
    100.0 * (argus as f64 - base as f64) / base as f64
}

/// Runs one workload in both modes on machines with `ways`-associative
/// 8KB caches, verifying self-checks, and returns the overhead row.
///
/// # Panics
///
/// Panics if the workload fails to compile, halt, or self-check, or if the
/// checker reports a false positive.
pub fn measure_workload(w: &Workload, ways: u32) -> OverheadRow {
    let mem = if ways == 2 { MemConfig::default().two_way() } else { MemConfig::default() };
    let ecfg = EmbedConfig::default();
    let base_prog =
        compile(&w.unit, Mode::Baseline, &ecfg).unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let argus_prog =
        compile(&w.unit, Mode::Argus, &ecfg).unwrap_or_else(|e| panic!("{}: {e}", w.name));

    let base = argus_compiler::verify::run_baseline(
        &base_prog,
        MachineConfig { argus_mode: false, mem, ..Default::default() },
        500_000_000,
    );
    let argus = argus_compiler::verify::run_checked(
        &argus_prog,
        MachineConfig { argus_mode: true, mem, ..Default::default() },
        argus_core::ArgusConfig::default(),
        &mut argus_sim::fault::FaultInjector::none(),
        500_000_000,
    );
    assert!(base.halted && argus.halted, "{} did not halt", w.name);
    assert!(argus.events.is_empty(), "{}: false positives {:?}", w.name, argus.events);
    w.check(&base.machine).unwrap_or_else(|e| panic!("baseline {e}"));
    w.check(&argus.machine).unwrap_or_else(|e| panic!("argus {e}"));

    OverheadRow {
        name: w.name,
        static_base: base_prog.stats.static_instrs as u64,
        static_argus: argus_prog.stats.static_instrs as u64,
        dyn_base: base.retired,
        dyn_argus: argus.retired,
        cycles_base: base.cycles,
        cycles_argus: argus.cycles,
    }
}

/// Runs the whole MediaBench-like suite.
pub fn measure_suite(ways: u32) -> Vec<OverheadRow> {
    argus_workloads::suite().iter().map(|w| measure_workload(w, ways)).collect()
}

/// Mean of a per-row metric.
pub fn mean_of(rows: &[OverheadRow], metric: impl Fn(&OverheadRow) -> f64) -> f64 {
    let mut s = OnlineStats::new();
    for r in rows {
        s.push(metric(r));
    }
    s.mean()
}

/// Reads one `kB`-denominated field of `/proc/self/status` into bytes.
#[cfg(target_os = "linux")]
fn proc_status_bytes(key: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(key))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

#[cfg(not(target_os = "linux"))]
fn proc_status_bytes(_key: &str) -> Option<u64> {
    None
}

/// Peak resident set size (`VmHWM`) of this process, in bytes — the
/// self-sampler every bench row records as `peak_rss_bytes`, so memory
/// regressions show up in the benchmark trajectory alongside time.
/// `None` on platforms without `/proc/self/status`.
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_bytes("VmHWM:")
}

/// Current resident set size (`VmRSS`) of this process, in bytes.
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_bytes("VmRSS:")
}

/// Current *anonymous* resident set (`RssAnon`) of this process, in
/// bytes: heap and stacks, excluding file-backed mappings. This is the
/// number an out-of-core store must keep bounded — pages resident via a
/// shared read-only `mmap` show up in `VmRSS` but are reclaimable by the
/// kernel at will, while anonymous pages are not. `None` off Linux.
pub fn anon_rss_bytes() -> Option<u64> {
    proc_status_bytes("RssAnon:")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(target_os = "linux")]
    #[test]
    fn rss_sampler_reports_plausible_numbers() {
        let peak = peak_rss_bytes().expect("/proc/self/status has VmHWM");
        let cur = current_rss_bytes().expect("/proc/self/status has VmRSS");
        assert!(peak >= cur, "peak {peak} < current {cur}");
        assert!(cur > 1 << 20, "a running test process holds more than 1 MiB resident");
    }

    #[test]
    fn measure_one_workload() {
        let w = argus_workloads::suite().remove(0);
        let row = measure_workload(&w, 1);
        assert!(row.static_argus > row.static_base, "embedding adds instructions");
        assert!(row.dyn_argus >= row.dyn_base);
        assert!(row.dynamic_pct() >= 0.0);
        assert!(row.static_pct() > 0.0);
    }

    #[test]
    fn two_way_measurement_also_works() {
        let w = argus_workloads::suite().remove(2);
        let row = measure_workload(&w, 2);
        assert!(row.cycles_argus > 0);
    }

    #[test]
    fn mean_helper() {
        let rows = vec![
            OverheadRow {
                name: "a",
                static_base: 100,
                static_argus: 110,
                dyn_base: 100,
                dyn_argus: 102,
                cycles_base: 100,
                cycles_argus: 104,
            },
            OverheadRow {
                name: "b",
                static_base: 100,
                static_argus: 104,
                dyn_base: 100,
                dyn_argus: 106,
                cycles_base: 100,
                cycles_argus: 100,
            },
        ];
        assert!((mean_of(&rows, |r| r.dynamic_pct()) - 4.0).abs() < 1e-12);
        assert!((mean_of(&rows, |r| r.static_pct()) - 7.0).abs() < 1e-12);
    }
}
