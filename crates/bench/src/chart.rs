//! Minimal ASCII bar rendering for figure-style output.

/// Renders one horizontal bar for a percentage value (negative values
/// render to the left of the axis, as the paper's re-alignment speedups
/// do in Figure 6).
pub fn bar(pct: f64, scale: f64) -> String {
    let units = (pct.abs() * scale).round() as usize;
    let body = "#".repeat(units.min(60));
    if pct < 0.0 {
        format!("{body:>20}|")
    } else {
        format!("{:>20}|{}", "", body)
    }
}

/// Renders a labeled figure row.
pub fn row(name: &str, pct: f64, scale: f64) -> String {
    format!("{name:12} {pct:7.2}% {}", bar(pct, scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_render_on_the_correct_side() {
        assert!(bar(5.0, 2.0).ends_with("##########"));
        let neg = bar(-2.0, 2.0);
        assert!(neg.ends_with('|'));
        assert!(neg.contains("####"));
    }

    #[test]
    fn bars_are_capped() {
        assert!(bar(1000.0, 10.0).len() < 100);
    }

    #[test]
    fn row_contains_name_and_value() {
        let s = row("jpeg_enc", 3.25, 2.0);
        assert!(s.contains("jpeg_enc") && s.contains("3.25"));
    }
}
