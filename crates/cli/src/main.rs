//! `argus` — thin argv shim over [`argus_cli`].

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprintln!("{}", argus_cli::USAGE);
        std::process::exit(2);
    }
    let cmd = argv.remove(0);
    match argus_cli::dispatch(&cmd, argus_cli::Args::new(argv)) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("argus: {e}");
            std::process::exit(e.code);
        }
    }
}
