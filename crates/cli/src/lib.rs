//! # argus-cli — command-line driver
//!
//! A small front end over the workspace for interactive use:
//!
//! ```text
//! argus asm <file.s> [--argus]           disassemble the compiled image
//! argus run <file.s> [--baseline] [--two-way] [--regs r3,r4]
//! argus inject <file.s> --site S --bit N [--permanent] [--arm C]
//! argus campaign [-n N] [--permanent] [--snapshot-every N] [--shards N]
//!                [--store ram|mmap] [--checkpoint PATH]
//!                [--checkpoint-interval-ms MS] [--resume]
//!                [--inj-cycle-factor F] [--quarantine-limit N] [--strict]
//!                [--json] [--quiet]
//! argus snapshot save|pack|info|restore  standalone state files
//! argus sites                            list the fault-site inventory
//! ```
//!
//! `campaign` runs serially by default (the historical path); any of the
//! sharded-engine flags (`--shards/--checkpoint/--resume/--json/--quiet/
//! --strict/--quarantine-limit/--checkpoint-interval-ms`) routes it through
//! the sharded [`argus_orchestrator`] engine, which adds Ctrl-C-safe
//! cancellation, checkpoint/resume, live progress on stderr, and the
//! supervision layer (panic quarantine, injection watchdogs,
//! corrupt-artifact recovery). Tallies are identical either way for a
//! given seed.
//!
//! The library half exposes the command implementations so they are unit
//! testable; `main.rs` is a thin argv shim.

use argus_compiler::{asm, compile, EmbedConfig, Mode};
use argus_core::{Argus, ArgusConfig};
use argus_faults::campaign::{run_campaign, CampaignConfig, ChaosConfig};
use argus_faults::{Outcome, StoreKind};
use argus_invariants::InvariantMode;
use argus_machine::{Machine, MachineConfig, StepOutcome};
use argus_mem::MemConfig;
use argus_orchestrator::{run_sharded, OrchestratorConfig, Progress, ShardedReport};
use argus_sim::fault::{Fault, FaultInjector, FaultKind};
use std::fmt::Write as _;

// Signal wiring (SIGINT + SIGTERM -> one stop flag) lives in
// `argus_sim::supervise::signals`, shared between `argus campaign` and the
// `argus serve` daemon; it is installed only by the long-running verbs so
// other subcommands keep the default interrupt behaviour.
use argus_sim::supervise::signals;

/// A CLI-level failure, printed to stderr with its exit code.
///
/// Exit codes are uniform across every verb:
///
/// - `0` — success
/// - `1` — runtime failure (I/O, compile, engine, verification)
/// - `2` — usage error (unknown command/flag, malformed or out-of-range
///   flag value)
#[derive(Debug)]
pub struct CliError {
    /// Message for stderr.
    pub msg: String,
    /// Process exit code (`1` runtime, `2` usage).
    pub code: i32,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for CliError {}

/// A runtime failure (exit code 1).
fn fail(msg: impl Into<String>) -> CliError {
    CliError { msg: msg.into(), code: 1 }
}

/// A usage error (exit code 2).
fn usage(msg: impl Into<String>) -> CliError {
    CliError { msg: msg.into(), code: 2 }
}

/// Simple flag scanner: `--name value` and boolean `--name`.
pub struct Args {
    rest: Vec<String>,
}

impl Args {
    /// Wraps raw arguments (without the program name and subcommand).
    pub fn new(rest: Vec<String>) -> Self {
        Self { rest }
    }

    /// Removes and returns a boolean flag.
    pub fn flag(&mut self, name: &str) -> bool {
        if let Some(i) = self.rest.iter().position(|a| a == name) {
            self.rest.remove(i);
            true
        } else {
            false
        }
    }

    /// Removes and returns a `--name value` option.
    pub fn opt(&mut self, name: &str) -> Option<String> {
        let i = self.rest.iter().position(|a| a == name)?;
        if i + 1 >= self.rest.len() {
            return None;
        }
        let v = self.rest.remove(i + 1);
        self.rest.remove(i);
        Some(v)
    }

    /// Removes and returns the first positional argument.
    pub fn positional(&mut self) -> Option<String> {
        let i = self.rest.iter().position(|a| !a.starts_with("--"))?;
        Some(self.rest.remove(i))
    }

    /// Errors if anything was left unconsumed.
    pub fn finish(self) -> Result<(), CliError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(usage(format!("unrecognized arguments: {:?}", self.rest)))
        }
    }
}

fn load_unit(path: &str) -> Result<argus_compiler::ProgramUnit, CliError> {
    let src =
        std::fs::read_to_string(path).map_err(|e| fail(format!("cannot read `{path}`: {e}")))?;
    asm::assemble(&src).map_err(|e| fail(format!("{path}: {e}")))
}

/// `argus asm`: compile and disassemble.
pub fn cmd_asm(mut args: Args) -> Result<String, CliError> {
    let path = args.positional().ok_or_else(|| usage("usage: argus asm <file.s> [--argus]"))?;
    let mode = if args.flag("--argus") { Mode::Argus } else { Mode::Baseline };
    args.finish()?;
    let unit = load_unit(&path)?;
    let prog = compile(&unit, mode, &EmbedConfig::default()).map_err(|e| fail(e.to_string()))?;
    let mut out = asm::disassemble(&prog.code, prog.code_base);
    let _ = writeln!(
        out,
        "; {} instructions ({} signature words), {} data words, mode {:?}",
        prog.stats.static_instrs,
        prog.stats.sig_instrs,
        prog.data.len(),
        mode
    );
    Ok(out)
}

/// `argus run`: compile + execute, optionally under the checker.
pub fn cmd_run(mut args: Args) -> Result<String, CliError> {
    let path = args.positional().ok_or_else(|| {
        usage("usage: argus run <file.s> [--baseline] [--two-way] [--regs r3,r4]")
    })?;
    let baseline = args.flag("--baseline");
    let two_way = args.flag("--two-way");
    let regs: Vec<argus_isa::Reg> = match args.opt("--regs") {
        Some(spec) => spec
            .split(',')
            .map(|t| {
                t.trim()
                    .strip_prefix('r')
                    .and_then(|n| n.parse::<u8>().ok())
                    .filter(|&n| n < 32)
                    .map(argus_isa::Reg::new)
                    .ok_or_else(|| usage(format!("bad register `{t}`")))
            })
            .collect::<Result<_, _>>()?,
        None => vec![],
    };
    let max_cycles: u64 = match args.opt("--max-cycles") {
        Some(s) => s.parse().map_err(|_| usage("bad --max-cycles"))?,
        None => 200_000_000,
    };
    let trace: u64 = match args.opt("--trace") {
        Some(s) => s.parse().map_err(|_| usage("bad --trace"))?,
        None => 0,
    };
    args.finish()?;

    let unit = load_unit(&path)?;
    let mode = if baseline { Mode::Baseline } else { Mode::Argus };
    let prog = compile(&unit, mode, &EmbedConfig::default()).map_err(|e| fail(e.to_string()))?;
    let mem = if two_way { MemConfig::default().two_way() } else { MemConfig::default() };
    let mut m = Machine::new(MachineConfig { argus_mode: !baseline, mem, ..Default::default() });
    prog.load(&mut m);

    let mut out = String::new();
    let mut checker = (!baseline).then(|| {
        let mut c = Argus::new(ArgusConfig::default());
        c.expect_entry(prog.entry_dcs.unwrap_or(0));
        c
    });
    let mut inj = FaultInjector::none();
    // Same loop shape and timeout classification as `Machine::run_to_halt`:
    // `halted` distinguishes a clean `halt` from a cycle-budget timeout.
    while !m.halted() && m.cycle() < max_cycles {
        match m.step(&mut inj) {
            StepOutcome::Committed(rec) => {
                if m.retired() <= trace {
                    let _ = writeln!(
                        out,
                        "[{:>6}] {:#06x}: {}{}",
                        rec.cycle,
                        rec.pc,
                        rec.instr,
                        if rec.block_end { "   ; block end" } else { "" }
                    );
                }
                if let Some(c) = checker.as_mut() {
                    for ev in c.on_commit(&rec, &mut inj) {
                        let _ = writeln!(out, "DETECTED: {ev}");
                    }
                }
            }
            StepOutcome::Stalled => {
                if let Some(c) = checker.as_mut() {
                    c.on_stall(1, &mut inj);
                }
            }
            StepOutcome::Halted => break,
        }
    }
    let res = m.run_result();
    let _ = writeln!(
        out,
        "halted={} cycles={} retired={} detections={}",
        res.halted,
        res.cycles,
        res.retired,
        checker.as_ref().map(|c| c.events().len()).unwrap_or(0)
    );
    for r in regs {
        let _ = writeln!(out, "{r} = {:#010x}", m.reg(r));
    }
    Ok(out)
}

/// `argus inject`: single-fault run with outcome report.
pub fn cmd_inject(mut args: Args) -> Result<String, CliError> {
    let path = args.positional().ok_or_else(|| {
        usage("usage: argus inject <file.s> --site S --bit N [--permanent] [--arm C]")
    })?;
    let site_name = args.opt("--site").ok_or_else(|| usage("--site is required"))?;
    let bit: u8 = args
        .opt("--bit")
        .ok_or_else(|| usage("--bit is required"))?
        .parse()
        .map_err(|_| usage("bad --bit"))?;
    let kind = if args.flag("--permanent") { FaultKind::Permanent } else { FaultKind::Transient };
    let arm: u64 = match args.opt("--arm") {
        Some(s) => s.parse().map_err(|_| usage("bad --arm"))?,
        None => 100,
    };
    args.finish()?;

    let inventory = argus_faults::sites::full_inventory();
    let site = inventory
        .iter()
        .find(|s| s.name == site_name)
        .ok_or_else(|| usage(format!("unknown site `{site_name}` (try `argus sites`)")))?;
    if bit >= site.width {
        return Err(usage(format!(
            "bit {bit} out of range for {site_name} (width {})",
            site.width
        )));
    }

    let unit = load_unit(&path)?;
    let prog =
        compile(&unit, Mode::Argus, &EmbedConfig::default()).map_err(|e| fail(e.to_string()))?;

    // Golden run for masking classification.
    let mut golden = Machine::new(MachineConfig::default());
    prog.load(&mut golden);
    golden.run_to_halt(&mut FaultInjector::none(), 200_000_000);
    let (gd, gc) = (golden.state_digest(), golden.cycle());

    let mut m = Machine::new(MachineConfig::default());
    prog.load(&mut m);
    let mut checker = Argus::new(ArgusConfig::default());
    checker.expect_entry(prog.entry_dcs.unwrap_or(0));
    let mut inj = FaultInjector::with_fault(Fault {
        site: site.name,
        bit,
        kind,
        arm_cycle: arm,
        flavor: site.flavor,
        width: site.width,
        sensitization: 1.0,
    });
    loop {
        match m.step(&mut inj) {
            StepOutcome::Committed(rec) => {
                checker.on_commit(&rec, &mut inj);
            }
            StepOutcome::Stalled => {
                checker.on_stall(1, &mut inj);
            }
            StepOutcome::Halted => break,
        }
        if m.cycle() > gc * 2 + 2_000 {
            break;
        }
    }
    if checker.first_detection().is_none() {
        checker.scrub_memory(&m, prog.data_base, &mut inj);
    }

    let masked = m.halted() && m.state_digest() == gd;
    let mut out = String::new();
    let _ = writeln!(out, "site {site_name} bit {bit} ({kind:?}, armed at cycle {arm})");
    let _ = writeln!(out, "exercised: {:?}", inj.first_flip_cycle());
    match checker.first_detection() {
        Some(ev) => {
            let _ = writeln!(out, "detected: {ev}");
        }
        None => {
            let _ = writeln!(out, "detected: no");
        }
    }
    let _ = writeln!(
        out,
        "outcome: {}",
        match (masked, checker.first_detection().is_some()) {
            (false, false) => "UNMASKED, UNDETECTED — silent data corruption",
            (false, true) => "unmasked, detected",
            (true, false) => "masked, undetected",
            (true, true) => "masked, detected (DME)",
        }
    );
    Ok(out)
}

/// `argus sites`: the fault-site inventory.
pub fn cmd_sites(args: Args) -> Result<String, CliError> {
    args.finish()?;
    let mut out =
        format!("{:24} {:>5} {:>9} {:>7} {}\n", "site", "width", "weight", "sens", "unit");
    for s in argus_faults::sites::full_inventory() {
        let _ = writeln!(
            out,
            "{:24} {:>5} {:>9.2} {:>7.2} {}{}",
            s.name,
            s.width,
            s.weight,
            s.sensitization,
            s.unit,
            if matches!(s.flavor, argus_sim::fault::SiteFlavor::Double) { " (double)" } else { "" }
        );
    }
    Ok(out)
}

/// `argus campaign`: a Table-1 campaign on the stress microbenchmark.
///
/// Without orchestrator flags this is the historical single-threaded path.
/// `--shards/--checkpoint/--resume/--json/--quiet` switch to the sharded
/// engine: same tallies for the same seed, plus parallelism, Ctrl-C-safe
/// checkpoints, and live progress on stderr.
pub fn cmd_campaign(mut args: Args) -> Result<String, CliError> {
    let n: usize = match args.opt("-n") {
        Some(s) => s.parse().map_err(|_| usage("bad -n"))?,
        None => 1000,
    };
    let kind = if args.flag("--permanent") { FaultKind::Permanent } else { FaultKind::Transient };
    let seed: Option<u64> = match args.opt("--seed") {
        Some(s) => Some(s.parse().map_err(|_| usage("bad --seed"))?),
        None => None,
    };
    let snapshot_every: Option<u64> = match args.opt("--snapshot-every") {
        Some(s) => Some(
            s.parse()
                .ok()
                .filter(|&v| v >= 1)
                .ok_or_else(|| usage("bad --snapshot-every (want an integer >= 1)"))?,
        ),
        None => None,
    };
    let inj_cycle_factor: Option<f64> = match args.opt("--inj-cycle-factor") {
        Some(s) => Some(
            s.parse()
                .ok()
                .filter(|v: &f64| v.is_finite() && *v >= 1.0)
                .ok_or_else(|| usage("bad --inj-cycle-factor (want a number >= 1)"))?,
        ),
        None => None,
    };
    let quarantine_limit: Option<usize> = match args.opt("--quarantine-limit") {
        Some(s) => Some(
            s.parse()
                .ok()
                .filter(|&v: &usize| v >= 1)
                .ok_or_else(|| usage("bad --quarantine-limit (want an integer >= 1)"))?,
        ),
        None => None,
    };
    let checkpoint_interval_ms: Option<u64> = match args.opt("--checkpoint-interval-ms") {
        Some(s) => Some(
            s.parse()
                .ok()
                .filter(|&v| v >= 1)
                .ok_or_else(|| usage("bad --checkpoint-interval-ms (want an integer >= 1)"))?,
        ),
        None => None,
    };
    let store: StoreKind = match args.opt("--store") {
        Some(s) => StoreKind::parse(&s).ok_or_else(|| usage("bad --store (want ram|mmap)"))?,
        // Out-of-core by default: snapshot pages live in a mapped file,
        // so campaign RSS stays bounded at any machine size. Reports
        // are bit-identical either way.
        None => StoreKind::Mapped,
    };
    let strict = args.flag("--strict");
    let invariants: Option<InvariantMode> = match args.opt("--invariants") {
        Some(s) => Some(
            InvariantMode::parse(&s)
                .ok_or_else(|| usage("bad --invariants (want off|sampled|full)"))?,
        ),
        None => None,
    };
    let chaos_panic_at: Option<Vec<usize>> = match args.opt("--chaos-panic-at") {
        Some(s) => Some(
            s.split(',')
                .map(|p| p.trim().parse::<usize>())
                .collect::<Result<Vec<_>, _>>()
                .map_err(|_| usage("bad --chaos-panic-at (want INDEX[,INDEX...])"))?,
        ),
        None => None,
    };
    let shards_arg = args.opt("--shards");
    let chunk: Option<usize> = match args.opt("--chunk") {
        Some(s) => Some(
            s.parse()
                .ok()
                .filter(|&v| v >= 1)
                .ok_or_else(|| usage("bad --chunk (want an integer >= 1)"))?,
        ),
        None => None,
    };
    let checkpoint = args.opt("--checkpoint");
    let resume = args.flag("--resume");
    let json = args.flag("--json");
    let quiet = args.flag("--quiet");
    args.finish()?;

    let mut cfg =
        CampaignConfig { injections: n, kind, snapshot_every, store, ..Default::default() };
    if let Some(s) = seed {
        cfg.seed = s;
    }
    if let Some(f) = inj_cycle_factor {
        cfg.inj_cycle_factor = f;
    }
    if let Some(mode) = invariants {
        cfg.invariants = mode;
    }
    if let Some(panic_at) = &chaos_panic_at {
        cfg.chaos = Some(ChaosConfig { panic_at: panic_at.clone(), livelock_at: vec![] });
    }

    let sharded = shards_arg.is_some()
        || chunk.is_some()
        || checkpoint.is_some()
        || resume
        || json
        || quiet
        || strict
        || invariants.is_some()
        || chaos_panic_at.is_some()
        || quarantine_limit.is_some()
        || checkpoint_interval_ms.is_some();
    if !sharded {
        let rep = run_campaign(&argus_workloads::stress(), &cfg);
        return Ok(format!("{rep}"));
    }

    let shards = match shards_arg {
        Some(s) => s
            .parse::<usize>()
            .ok()
            .filter(|&v| v >= 1)
            .ok_or_else(|| usage("bad --shards (want an integer >= 1)"))?,
        None => std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
    };
    if resume && checkpoint.is_none() {
        return Err(usage("--resume needs --checkpoint PATH"));
    }
    let mut ocfg = OrchestratorConfig {
        shards,
        checkpoint_path: checkpoint.map(std::path::PathBuf::from),
        resume,
        strict,
        ..Default::default()
    };
    if let Some(c) = chunk {
        ocfg.chunk = c;
    }
    if let Some(limit) = quarantine_limit {
        ocfg.quarantine_limit = limit;
    }
    if let Some(ms) = checkpoint_interval_ms {
        ocfg.checkpoint_interval = std::time::Duration::from_millis(ms);
    }

    signals::install();
    let progress = Progress::new(shards);
    let report = std::thread::scope(|scope| {
        let monitor = (!quiet).then(|| {
            scope.spawn(|| {
                let mut since_print = std::time::Duration::ZERO;
                let tick = std::time::Duration::from_millis(100);
                while !progress.finished() {
                    std::thread::sleep(tick);
                    since_print += tick;
                    if since_print >= std::time::Duration::from_millis(500) {
                        eprintln!("{}", progress.snapshot());
                        since_print = std::time::Duration::ZERO;
                    }
                }
            })
        });
        let report =
            run_sharded(&argus_workloads::stress(), &cfg, &ocfg, &signals::STOP, &progress);
        if let Some(m) = monitor {
            let _ = m.join();
        }
        report
    })
    .map_err(|e| fail(e.to_string()))?;

    if !quiet {
        eprintln!("{}", progress.snapshot());
    }
    // Recovery/supervision warnings always go to stderr so they reach the
    // operator even when stdout carries the JSON report.
    for w in &report.recovery_warnings {
        eprintln!("warning: {w}");
    }
    if json {
        return Ok(format!("{}\n", report.to_json().to_string_compact()));
    }
    Ok(render_sharded_report(&report, ocfg.checkpoint_path.as_deref()))
}

/// `argus serve`: the campaign-as-a-service daemon.
///
/// Binds an HTTP/JSON API over a shared worker pool and blocks until
/// SIGINT/SIGTERM or a `POST /drain`, then drains gracefully: stops
/// leasing, checkpoints every running job, persists the job table, and
/// exits 0. Unfinished jobs resume on the next start from the same
/// `--state-dir`.
pub fn cmd_serve(mut args: Args) -> Result<String, CliError> {
    let addr = args.opt("--addr").unwrap_or_else(|| "127.0.0.1:7700".to_string());
    let workers: usize = match args.opt("--workers") {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&v| v >= 1)
            .ok_or_else(|| usage("bad --workers (want an integer >= 1)"))?,
        None => std::thread::available_parallelism()
            .map(|p| p.get().saturating_sub(1).max(1))
            .unwrap_or(1),
    };
    let http_threads: usize = match args.opt("--http-threads") {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&v| v >= 1)
            .ok_or_else(|| usage("bad --http-threads (want an integer >= 1)"))?,
        None => 4,
    };
    let state_dir = args.opt("--state-dir").unwrap_or_else(|| "argus-serve-state".to_string());
    let checkpoint_interval_ms: u64 = match args.opt("--checkpoint-interval-ms") {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&v| v >= 1)
            .ok_or_else(|| usage("bad --checkpoint-interval-ms (want an integer >= 1)"))?,
        None => 500,
    };
    let lease_ttl_ms: u64 = match args.opt("--lease-ttl-ms") {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&v| v >= 1)
            .ok_or_else(|| usage("bad --lease-ttl-ms (want an integer >= 1)"))?,
        None => 10_000,
    };
    args.finish()?;

    signals::install();
    let mut server = argus_server::Server::start(argus_server::ServerConfig {
        addr,
        workers,
        http_threads,
        state_dir: std::path::PathBuf::from(&state_dir),
        checkpoint_interval: std::time::Duration::from_millis(checkpoint_interval_ms),
        lease_ttl: std::time::Duration::from_millis(lease_ttl_ms),
    })
    .map_err(fail)?;
    eprintln!(
        "argus serve: listening on http://{} ({} campaign workers, state dir `{state_dir}`)",
        server.addr(),
        workers,
    );

    while !signals::stop_requested() && !server.drain_requested() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let cause = signals::stop_cause().unwrap_or("drain request");
    eprintln!("argus serve: draining ({cause})");
    server.drain();
    eprintln!("argus serve: drained; unfinished jobs resume on next start");
    Ok(String::new())
}

/// `argus worker`: a remote campaign worker.
///
/// Connects to an `argus serve` daemon, leases injection chunks from its
/// distributed jobs, executes them against locally reconstructed state,
/// and posts the merged tallies back. Reconnects with capped backoff
/// when the daemon is unreachable; SIGINT/SIGTERM drains gracefully
/// (finish held chunks, stop leasing, exit 0).
pub fn cmd_worker(mut args: Args) -> Result<String, CliError> {
    let connect: std::net::SocketAddr = args
        .opt("--connect")
        .ok_or_else(|| usage("--connect HOST:PORT is required"))?
        .parse()
        .map_err(|_| usage("bad --connect (want HOST:PORT)"))?;
    let workers: usize = match args.opt("--workers") {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&v| v >= 1)
            .ok_or_else(|| usage("bad --workers (want an integer >= 1)"))?,
        None => 1,
    };
    let poll_ms: u64 = match args.opt("--poll-ms") {
        Some(s) => s
            .parse()
            .ok()
            .filter(|&v| v >= 1)
            .ok_or_else(|| usage("bad --poll-ms (want an integer >= 1)"))?,
        None => 500,
    };
    let job: Option<u64> = match args.opt("--job") {
        Some(s) => Some(s.parse().map_err(|_| usage("bad --job (want an integer id)"))?),
        None => None,
    };
    let name = args.opt("--name").unwrap_or_else(|| format!("w{}", std::process::id()));
    if name.is_empty() || name.starts_with("local:") {
        return Err(usage("--name must be non-empty and not use the `local:` prefix"));
    }
    let cache_dir = args.opt("--cache-dir").map(std::path::PathBuf::from);
    args.finish()?;

    signals::install();
    let wcfg = argus_remote::WorkerConfig {
        connect,
        workers,
        poll: std::time::Duration::from_millis(poll_ms),
        job,
        name: name.clone(),
        cache_dir,
    };
    eprintln!(
        "argus worker: `{name}` connecting to http://{connect} ({workers} executor thread(s))"
    );
    let summary =
        argus_remote::run_worker(&wcfg, &signals::STOP).map_err(|e| fail(e.to_string()))?;
    if let Some(cause) = signals::stop_cause() {
        eprintln!("argus worker: drained ({cause})");
    }
    Ok(format!(
        "worker `{name}`: {} job(s), {} chunk(s) accepted ({} duplicate(s)), {} injection(s), \
         {} artifact cache hit(s)\n",
        summary.jobs, summary.chunks, summary.duplicates, summary.injections, summary.cache_hits
    ))
}

/// Human-readable rendering of a sharded campaign's merged tallies.
///
/// Everything run-shaped (wall clock, rate, scheduler utilization) stays
/// on the first line; every later line is deterministic for the campaign,
/// so output diffs after dropping one line.
fn render_sharded_report(rep: &ShardedReport, checkpoint: Option<&std::path::Path>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "campaign: {}/{} injections ({:?}), {} shards, chunk {}, {} leases ({} stolen), busy {:.0}%, tail {:.2}s, {:.1}s ({:.1} inj/s)",
        rep.completed,
        rep.total,
        rep.kind,
        rep.shards,
        rep.chunk,
        rep.leases,
        rep.steals,
        rep.busy_pct(),
        rep.tail_imbalance.as_secs_f64(),
        rep.elapsed.as_secs_f64(),
        rep.rate(),
    );
    if let Some(every) = rep.snapshot_every {
        let _ = writeln!(
            out,
            "snapshots: {} golden-run checkpoints every {} cycles",
            rep.snapshots, every
        );
    }
    for o in Outcome::ALL {
        let _ = writeln!(
            out,
            "  {:20} {:>8}  {:5.1}%",
            o.label(),
            rep.count(o),
            100.0 * rep.fraction(o)
        );
    }
    let _ = writeln!(out, "unmasked coverage: {:.1}%", 100.0 * rep.unmasked_coverage());
    let quarantined = rep.quarantine.len() as u64;
    if quarantined > 0 || rep.hung > 0 {
        let _ = writeln!(
            out,
            "anomalies: {quarantined} quarantined (panicked), {} hung (watchdog) — excluded from tallies",
            rep.hung
        );
        for q in &rep.quarantine {
            let _ = writeln!(
                out,
                "  quarantined injection {} (seed {:#x}): {}",
                q.index, q.seed, q.panic_msg
            );
        }
    }
    // Invariant results are printed only on violation: `checks_run` depends
    // on worker scheduling, and every later line of this report must stay
    // deterministic for a given seed regardless of shard count.
    if rep.invariants.violations > 0 {
        let _ = writeln!(
            out,
            "INVARIANT VIOLATIONS: {} ({} mode)",
            rep.invariants.violations, rep.invariants.mode
        );
        for (name, count) in &rep.invariants.per_invariant {
            if *count > 0 {
                let _ = writeln!(out, "  {name}: {count}");
            }
        }
        for (name, detail) in &rep.invariants.examples {
            let _ = writeln!(out, "  example [{name}]: {detail}");
        }
    }
    if rep.snapshot_fallbacks > 0 {
        let _ = writeln!(
            out,
            "snapshot integrity: {} injections cold-booted past corrupt snapshots",
            rep.snapshot_fallbacks
        );
    }
    if rep.degraded {
        let _ = writeln!(
            out,
            "DEGRADED: checkpoint flushing needed retries ({} failed attempts)",
            rep.flush_failures
        );
    }
    if rep.used_backup_checkpoint {
        let _ = writeln!(out, "recovered from backup (.bak) checkpoint");
    }
    if rep.latency.count() > 0 {
        let _ = writeln!(
            out,
            "detect latency: mean {:.1} p50 {} p99 {} max {} cycles",
            rep.latency.mean(),
            rep.latency.percentile(0.5).unwrap_or(0),
            rep.latency.percentile(0.99).unwrap_or(0),
            rep.latency.max().unwrap_or(0),
        );
    }
    let _ = writeln!(out, "detection attribution:");
    let _ = write!(out, "{}", rep.attribution);
    if rep.interrupted {
        let hint = checkpoint
            .map(|p| format!(" — resume with --resume --checkpoint {}", p.display()))
            .unwrap_or_default();
        let _ = writeln!(out, "INTERRUPTED at {}/{}{hint}", rep.completed, rep.total);
    }
    out
}

/// Steps a machine + checker pair in lockstep until the machine halts or
/// `stop_at` cycles elapse (fault-free).
fn run_checked(m: &mut Machine, checker: &mut Argus, stop_at: u64) {
    let mut inj = FaultInjector::none();
    while !m.halted() && m.cycle() < stop_at {
        match m.step(&mut inj) {
            StepOutcome::Committed(rec) => {
                checker.on_commit(&rec, &mut inj);
            }
            StepOutcome::Stalled => {
                checker.on_stall(1, &mut inj);
            }
            StepOutcome::Halted => break,
        }
    }
}

/// `argus snapshot`: standalone state files — capture a program at a
/// cycle, inspect a file, or restore one and resume execution.
pub fn cmd_snapshot(mut args: Args) -> Result<String, CliError> {
    const SNAP_USAGE: &str = "usage: argus snapshot <save|pack|info|restore>
  argus snapshot save <file.s> --out PATH [--at-cycle C] [--two-way]
  argus snapshot pack <file.s> --out PATH [--every N] [--until-cycle C]
  argus snapshot info <PATH>
  argus snapshot restore <PATH> [--run] [--regs r3,r4]";
    let verb = args.positional().ok_or_else(|| usage(SNAP_USAGE))?;
    match verb.as_str() {
        "save" => {
            let path = args.positional().ok_or_else(|| usage(SNAP_USAGE))?;
            let out_path = args.opt("--out").ok_or_else(|| usage("--out PATH is required"))?;
            let at_cycle: u64 = match args.opt("--at-cycle") {
                Some(s) => s.parse().map_err(|_| usage("bad --at-cycle"))?,
                None => 0,
            };
            let two_way = args.flag("--two-way");
            args.finish()?;

            let unit = load_unit(&path)?;
            let prog = compile(&unit, Mode::Argus, &EmbedConfig::default())
                .map_err(|e| fail(e.to_string()))?;
            let mem = if two_way { MemConfig::default().two_way() } else { MemConfig::default() };
            let mut m = Machine::new(MachineConfig { mem, ..Default::default() });
            prog.load(&mut m);
            let mut checker = Argus::new(ArgusConfig::default());
            checker.expect_entry(prog.entry_dcs.unwrap_or(0));
            run_checked(&mut m, &mut checker, at_cycle);

            let mut pool = argus_snapshot::PageStore::new();
            let snap = argus_snapshot::Snapshot::capture(&m, &checker, &mut pool);
            let mut f = std::fs::File::create(&out_path)
                .map_err(|e| fail(format!("cannot create `{out_path}`: {e}")))?;
            argus_snapshot::io::write_snapshot(&mut f, &snap)
                .map_err(|e| fail(format!("writing `{out_path}`: {e}")))?;
            Ok(format!(
                "saved snapshot: cycle {} retired {} fingerprint {:#018x} -> {}\n",
                snap.cycle(),
                m.retired(),
                snap.fingerprint(),
                out_path
            ))
        }
        "pack" => {
            let path = args.positional().ok_or_else(|| usage(SNAP_USAGE))?;
            let out_path = args.opt("--out").ok_or_else(|| usage("--out PATH is required"))?;
            let every: u64 = match args.opt("--every") {
                Some(s) => s
                    .parse()
                    .ok()
                    .filter(|&v| v >= 1)
                    .ok_or_else(|| usage("bad --every (want an integer >= 1)"))?,
                None => 1000,
            };
            let until_cycle: u64 = match args.opt("--until-cycle") {
                Some(s) => s.parse().map_err(|_| usage("bad --until-cycle"))?,
                None => 200_000_000,
            };
            args.finish()?;

            let unit = load_unit(&path)?;
            let prog = compile(&unit, Mode::Argus, &EmbedConfig::default())
                .map_err(|e| fail(e.to_string()))?;
            let mut m = Machine::new(MachineConfig::default());
            prog.load(&mut m);
            let mut checker = Argus::new(ArgusConfig::default());
            checker.expect_entry(prog.entry_dcs.unwrap_or(0));

            let mut writer =
                argus_snapshot::mapped::MappedStoreWriter::create(out_path.as_ref(), every)
                    .map_err(|e| fail(format!("cannot create `{out_path}`: {e}")))?;
            let pack_err = |e: std::io::Error| fail(format!("writing `{out_path}`: {e}"));
            // Seed cycle 0 like the campaign golden run, then capture on
            // the interval until the program halts.
            writer.capture_now(&m, &checker).map_err(pack_err)?;
            let mut inj = FaultInjector::none();
            while !m.halted() && m.cycle() < until_cycle {
                match m.step(&mut inj) {
                    StepOutcome::Committed(rec) => {
                        checker.on_commit(&rec, &mut inj);
                    }
                    StepOutcome::Stalled => {
                        checker.on_stall(1, &mut inj);
                    }
                    StepOutcome::Halted => break,
                }
                writer.maybe_capture(&m, &checker).map_err(pack_err)?;
            }
            let store = writer.finish().map_err(pack_err)?;
            let stats = store.stats();
            Ok(format!(
                "packed {out_path}: {} snapshot(s) every {every} cycles, {} distinct page(s) \
                 of {} referenced, {} bytes saved by dedup\n",
                store.len(),
                stats.pages_distinct,
                stats.pages_total,
                stats.bytes_saved,
            ))
        }
        "info" => {
            let path = args.positional().ok_or_else(|| usage(SNAP_USAGE))?;
            args.finish()?;
            if file_has_magic(&path, b"ARGSTORE") {
                return store_info(&path);
            }
            let (m, checker) = read_snapshot_file(&path)?;
            let mut out = String::new();
            let _ = writeln!(out, "snapshot {path}");
            let _ = writeln!(
                out,
                "  cycle {} retired {} pc {:#06x} halted {}",
                m.cycle(),
                m.retired(),
                m.pc(),
                m.halted()
            );
            let _ = writeln!(
                out,
                "  fingerprint {:#018x}",
                argus_snapshot::combined_fingerprint(&m, &checker)
            );
            let _ = writeln!(
                out,
                "  memory {} words, detections so far {}",
                m.mem().memory().words().len(),
                checker.events().len()
            );
            Ok(out)
        }
        "restore" => {
            let path = args.positional().ok_or_else(|| usage(SNAP_USAGE))?;
            let run = args.flag("--run");
            let regs: Vec<argus_isa::Reg> = match args.opt("--regs") {
                Some(spec) => spec
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .strip_prefix('r')
                            .and_then(|n| n.parse::<u8>().ok())
                            .filter(|&n| n < 32)
                            .map(argus_isa::Reg::new)
                            .ok_or_else(|| usage(format!("bad register `{t}`")))
                    })
                    .collect::<Result<_, _>>()?,
                None => vec![],
            };
            args.finish()?;
            let (mut m, mut checker) = read_snapshot_file(&path)?;
            let mut out = String::new();
            let _ = writeln!(out, "restored at cycle {} (pc {:#06x})", m.cycle(), m.pc());
            if run {
                run_checked(&mut m, &mut checker, 200_000_000);
            }
            let _ = writeln!(
                out,
                "halted={} cycles={} retired={} detections={}",
                m.halted(),
                m.cycle(),
                m.retired(),
                checker.events().len()
            );
            for r in regs {
                let _ = writeln!(out, "{r} = {:#010x}", m.reg(r));
            }
            Ok(out)
        }
        other => Err(usage(format!("unknown snapshot verb `{other}`\n{SNAP_USAGE}"))),
    }
}

fn read_snapshot_file(path: &str) -> Result<(Machine, Argus), CliError> {
    let mut f =
        std::fs::File::open(path).map_err(|e| fail(format!("cannot open `{path}`: {e}")))?;
    argus_snapshot::io::read_snapshot(&mut f).map_err(|e| fail(format!("{path}: {e}")))
}

/// Whether the file starts with the given magic — how `snapshot info`
/// tells a packed ARGSTORE from a single-snapshot ARGSNAP file, so a
/// corrupt store reports a store error rather than a bad-magic one.
fn file_has_magic(path: &str, magic: &[u8]) -> bool {
    use std::io::Read as _;
    let mut head = vec![0u8; magic.len()];
    std::fs::File::open(path).and_then(|mut f| f.read_exact(&mut head)).is_ok() && head == magic
}

/// `argus snapshot info` on an ARGSTORE file: open (verifying the
/// whole-file CRC envelope) and report the dedup accounting.
fn store_info(path: &str) -> Result<String, CliError> {
    let store = argus_snapshot::mapped::MappedStore::open(path.as_ref())
        .map_err(|e| fail(format!("{path}: {e}")))?;
    let stats = store.stats();
    let first = store.cycle(0).unwrap_or(0);
    let last = store.len().checked_sub(1).and_then(|i| store.cycle(i)).unwrap_or(first);
    let mut out = String::new();
    let _ = writeln!(out, "store {path}");
    let _ = writeln!(
        out,
        "  {} snapshot(s) every {} cycles, covering cycles {first}..={last}",
        store.len(),
        stats.interval,
    );
    let _ = writeln!(
        out,
        "  pages: {} referenced, {} distinct, {} bytes saved by dedup",
        stats.pages_total, stats.pages_distinct, stats.bytes_saved,
    );
    let _ = writeln!(
        out,
        "  file {} bytes, materialized image {} bytes",
        store.file_bytes().len(),
        store.materialized_bytes(),
    );
    Ok(out)
}

/// `argus verify`: compile in Argus mode and statically verify the image's
/// embedded signatures.
pub fn cmd_verify(mut args: Args) -> Result<String, CliError> {
    let path = args.positional().ok_or_else(|| usage("usage: argus verify <file.s>"))?;
    args.finish()?;
    let unit = load_unit(&path)?;
    let ecfg = EmbedConfig::default();
    let prog = compile(&unit, Mode::Argus, &ecfg).map_err(|e| fail(e.to_string()))?;
    let rep = argus_compiler::binver::verify_image(&prog, &ecfg)
        .map_err(|e| fail(format!("verification FAILED: {e}")))?;
    Ok(format!(
        "image verifies: {} blocks, {} embedded successor slots checked, entry DCS {:#04x}\n",
        rep.blocks,
        rep.slots_checked,
        prog.entry_dcs.unwrap_or(0)
    ))
}

/// `argus invariants`: inspect the always-on invariant registry.
///
/// `list` prints every registered invariant with its severity, the hooks
/// it observes, and the `expected_to_catch` documentation — the registry
/// is self-describing so operators can map a violation name in a report
/// straight to the failure class it guards against.
pub fn cmd_invariants(mut args: Args) -> Result<String, CliError> {
    const INV_USAGE: &str = "usage: argus invariants list";
    let verb = args.positional().ok_or_else(|| usage(INV_USAGE))?;
    args.finish()?;
    match verb.as_str() {
        "list" => {
            let regs = argus_invariants::registry();
            let mut out = String::new();
            let _ =
                writeln!(out, "{} registered invariants (modes: off|sampled|full):", regs.len());
            for inv in &regs {
                let hooks: Vec<&str> = inv.hooks().iter().map(|h| h.label()).collect();
                let _ = writeln!(
                    out,
                    "{} [{}] hooks: {}",
                    inv.name(),
                    inv.severity().label(),
                    hooks.join(",")
                );
                let _ = writeln!(out, "    expected to catch: {}", inv.expected_to_catch());
            }
            Ok(out)
        }
        other => Err(usage(format!("unknown invariants verb `{other}`\n{INV_USAGE}"))),
    }
}

/// Dispatches a subcommand; returns the text to print.
pub fn dispatch(cmd: &str, args: Args) -> Result<String, CliError> {
    match cmd {
        "asm" => cmd_asm(args),
        "run" => cmd_run(args),
        "inject" => cmd_inject(args),
        "sites" => cmd_sites(args),
        "campaign" => cmd_campaign(args),
        "serve" => cmd_serve(args),
        "worker" => cmd_worker(args),
        "snapshot" => cmd_snapshot(args),
        "invariants" => cmd_invariants(args),
        "verify" => cmd_verify(args),
        other => Err(usage(format!("unknown command `{other}`\n{USAGE}"))),
    }
}

/// Top-level usage text.
pub const USAGE: &str =
    "usage: argus <asm|run|inject|verify|sites|campaign|serve|worker|snapshot|invariants> [options]
  argus asm <file.s> [--argus]
  argus run <file.s> [--baseline] [--two-way] [--regs r3,r4] [--max-cycles N]
  argus inject <file.s> --site S --bit N [--permanent] [--arm C]
  argus verify <file.s>
  argus campaign [-n N] [--permanent] [--seed S] [--snapshot-every N]
                 [--store ram|mmap] [--shards N] [--chunk N]
                 [--checkpoint PATH] [--checkpoint-interval-ms MS] [--resume]
                 [--inj-cycle-factor F] [--quarantine-limit N]
                 [--invariants off|sampled|full] [--chaos-panic-at I,J,...]
                 [--strict] [--json] [--quiet]
  argus serve [--addr HOST:PORT] [--workers N] [--http-threads N]
              [--state-dir PATH] [--checkpoint-interval-ms MS]
              [--lease-ttl-ms MS]
  argus worker --connect HOST:PORT [--workers N] [--poll-ms MS]
               [--job ID] [--name NAME] [--cache-dir PATH]
  argus snapshot save <file.s> --out PATH [--at-cycle C] [--two-way]
  argus snapshot pack <file.s> --out PATH [--every N] [--until-cycle C]
  argus snapshot info <PATH>
  argus snapshot restore <PATH> [--run] [--regs r3,r4]
  argus invariants list
  argus sites
campaign runs serially by default; any sharded-engine flag (--shards,
--chunk, --checkpoint, --resume, --json, --quiet, --strict,
--invariants, --chaos-panic-at, --quarantine-limit,
--checkpoint-interval-ms) uses the work-stealing engine
(same tallies and same JSON for the same seed under ANY worker count;
Ctrl-C flushes a checkpoint, --resume continues it — even under a different
--shards; progress goes to stderr, results to stdout). --chunk caps the
scheduler lease size (default 32); leases shrink toward 1 at the tail.
--snapshot-every N checkpoints the golden run every N cycles and forks each
injection from the nearest checkpoint at or before its arm cycle — identical
results, fewer replayed cycles.
--store picks where those checkpoints live: mmap (default) streams deduped
pages to a memory-mapped scratch file so campaign RSS stays bounded at any
machine size; ram keeps them in the heap. Reports are bit-identical.
snapshot pack writes the same out-of-core format standalone (inspect it
with snapshot info); worker --cache-dir caches fetched job artifacts by
content address so reconnects skip re-fetching and golden-run rebuilds.
--invariants selects how densely the always-on invariant registry audits
the run (off, sampled [default], full); violations land in the report
(JSON: run.invariants) and, with --strict, abort the campaign naming the
violating invariant. `argus invariants list` documents every check.
--chaos-panic-at injects deliberate panics at the given injection indices
(testing aid for quarantine/checkpoint recovery paths).
Supervision: each injection runs behind a panic net and a watchdog whose
cycle budget is golden-run length x --inj-cycle-factor (default 4); panicked
injections are quarantined (campaign aborts past --quarantine-limit, default
64); --strict disables the net so the first panic crashes and a hang is
fatal. Corrupt checkpoints fall back to their .bak generation, then restart
affected shards from scratch (strict mode refuses instead).
serve turns the same engine into a daemon: submit/inspect/cancel fault
campaigns over an HTTP/JSON API with priorities, per-job worker budgets,
checkpoint-backed preemption, and streaming progress; SIGTERM/SIGINT (or
POST /drain) checkpoints everything and exits 0, and the next start
resumes all unfinished jobs. See EXPERIMENTS.md for the API reference.
worker joins a daemon's distributed jobs (submitted with
\"distributed\":true) from any machine: it cold-starts from the job
manifest, verifies its reconstruction against content-addressed
snapshots, then leases chunks, runs them, and posts tallies back.
Results are byte-identical to a local run regardless of worker count,
crashes, or duplicated posts.
Exit codes (all verbs): 0 success, 1 runtime failure, 2 usage error";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(xs: &[&str]) -> Args {
        Args::new(xs.iter().map(|s| s.to_string()).collect())
    }

    fn write_temp(name: &str, contents: &str) -> String {
        let dir = std::env::temp_dir().join("argus-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::write(&p, contents).unwrap();
        p.to_string_lossy().into_owned()
    }

    const PROG: &str = "li r3, 0\nli r4, 1\nli r5, 10\nloop: add r3, r3, r4\naddi r4, r4, 1\nsfleu r4, r5\nbf loop\nnop\nhalt\n";

    #[test]
    fn args_parsing() {
        let mut a = args(&["file.s", "--permanent", "--bit", "3"]);
        assert_eq!(a.positional().as_deref(), Some("file.s"));
        assert!(a.flag("--permanent"));
        assert!(!a.flag("--permanent"));
        assert_eq!(a.opt("--bit").as_deref(), Some("3"));
        assert!(a.finish().is_ok());

        let a = args(&["--mystery"]);
        assert!(a.finish().is_err());
    }

    #[test]
    fn asm_command() {
        let p = write_temp("asm.s", PROG);
        let out = cmd_asm(args(&[p.as_str(), "--argus"])).unwrap();
        assert!(out.contains("add r3, r3, r4"));
        assert!(out.contains("signature words"));
    }

    #[test]
    fn run_command_baseline_and_checked() {
        let p = write_temp("run.s", PROG);
        let out = cmd_run(args(&[p.as_str(), "--baseline", "--regs", "r3"])).unwrap();
        assert!(out.contains("halted=true"));
        assert!(out.contains("r3 = 0x00000037"), "{out}");
        let out = cmd_run(args(&[p.as_str(), "--regs", "r3"])).unwrap();
        assert!(out.contains("detections=0"));
    }

    #[test]
    fn inject_command_detects_alu_fault() {
        let p = write_temp("inject.s", PROG);
        let out = cmd_inject(args(&[
            p.as_str(),
            "--site",
            "alu_adder_out",
            "--bit",
            "2",
            "--permanent",
            "--arm",
            "5",
        ]))
        .unwrap();
        assert!(out.contains("detected: computation"), "{out}");
    }

    #[test]
    fn inject_rejects_unknown_site() {
        let p = write_temp("bad.s", PROG);
        let e = cmd_inject(args(&[p.as_str(), "--site", "nope", "--bit", "0"])).unwrap_err();
        assert!(e.to_string().contains("unknown site"));
    }

    #[test]
    fn sites_command_lists_inventory() {
        let out = cmd_sites(args(&[])).unwrap();
        assert!(out.contains("alu_adder_out"));
        assert!(out.contains("shs_crc_out"));
    }

    #[test]
    fn dispatch_unknown_command() {
        assert!(dispatch("frobnicate", args(&[])).is_err());
    }

    /// Every subcommand advertised in `USAGE`'s `<a|b|c>` list must
    /// actually dispatch — i.e. never fall through to "unknown command".
    #[test]
    fn usage_subcommands_all_dispatch() {
        let list = USAGE
            .split_once('<')
            .and_then(|(_, rest)| rest.split_once('>'))
            .map(|(inner, _)| inner)
            .expect("USAGE lists subcommands as <a|b|...>");
        let cmds: Vec<&str> = list.split('|').collect();
        assert!(cmds.len() >= 7, "expected the full subcommand list, got {cmds:?}");
        for cmd in cmds {
            // A flag no verb knows keeps this a pure routing check: every
            // verb rejects it (or its missing file) before doing real work
            // — `serve` would otherwise start a daemon and block, and
            // `campaign` would run a full default campaign. Any error is
            // fine except "unknown command", which means USAGE advertises
            // something dispatch() cannot route.
            match dispatch(cmd, args(&["--no-such-flag"])) {
                Ok(_) => {}
                Err(e) => assert!(
                    !e.to_string().contains("unknown command"),
                    "USAGE names `{cmd}` but dispatch does not route it"
                ),
            }
        }
    }

    #[test]
    fn campaign_sharded_matches_serial_and_reports_json() {
        let serial = cmd_campaign(args(&["-n", "40", "--seed", "7"])).unwrap();
        assert!(serial.contains("unmasked coverage"), "{serial}");

        let human =
            cmd_campaign(args(&["-n", "40", "--seed", "7", "--shards", "2", "--quiet"])).unwrap();
        assert!(human.contains("campaign: 40/40"), "{human}");
        assert!(human.contains("2 shards"), "{human}");

        let js =
            cmd_campaign(args(&["-n", "40", "--seed", "7", "--shards", "3", "--json", "--quiet"]))
                .unwrap();
        let parsed = argus_orchestrator::Json::parse(&js).unwrap();
        assert_eq!(parsed.get("completed").and_then(|v| v.as_u64()), Some(40));
        assert_eq!(parsed.get("interrupted").and_then(|v| v.as_bool()), Some(false));

        // Shard count must not change the tallies: compare the sharded
        // JSON outcome block against the serial engine's counts.
        let rep = run_campaign(
            &argus_workloads::stress(),
            &CampaignConfig { injections: 40, seed: 7, ..Default::default() },
        );
        let outcomes = parsed.get("outcomes").unwrap();
        for o in Outcome::ALL {
            assert_eq!(
                outcomes.get(o.label()).and_then(|v| v.as_u64()),
                Some(rep.count(o) as u64),
                "{o:?}"
            );
        }
    }

    #[test]
    fn campaign_flag_validation() {
        let e = cmd_campaign(args(&["--shards", "0", "--quiet"])).unwrap_err();
        assert!(e.to_string().contains("bad --shards"), "{e}");
        let e = cmd_campaign(args(&["--resume", "--quiet"])).unwrap_err();
        assert!(e.to_string().contains("--resume needs --checkpoint"), "{e}");
        let e = cmd_campaign(args(&["--inj-cycle-factor", "0.5", "--quiet"])).unwrap_err();
        assert!(e.to_string().contains("bad --inj-cycle-factor"), "{e}");
        let e = cmd_campaign(args(&["--inj-cycle-factor", "nan", "--quiet"])).unwrap_err();
        assert!(e.to_string().contains("bad --inj-cycle-factor"), "{e}");
        let e = cmd_campaign(args(&["--quarantine-limit", "many", "--quiet"])).unwrap_err();
        assert!(e.to_string().contains("bad --quarantine-limit"), "{e}");
        let e = cmd_campaign(args(&["--checkpoint-interval-ms", "0", "--quiet"])).unwrap_err();
        assert!(e.to_string().contains("bad --checkpoint-interval-ms"), "{e}");
        let e = cmd_campaign(args(&["--chunk", "0", "--quiet"])).unwrap_err();
        assert!(e.to_string().contains("bad --chunk"), "{e}");
    }

    #[test]
    fn campaign_chunk_size_leaves_output_unchanged() {
        // --chunk is a scheduler knob: tallies and every line after the
        // first (wall-clock) line must be identical for any lease size.
        let tallies = |s: &str| s.split_once('\n').map(|(_, rest)| rest.to_string()).unwrap();
        let wide =
            cmd_campaign(args(&["-n", "30", "--seed", "7", "--shards", "2", "--quiet"])).unwrap();
        let narrow = cmd_campaign(args(&[
            "-n", "30", "--seed", "7", "--shards", "2", "--chunk", "1", "--quiet",
        ]))
        .unwrap();
        assert_eq!(tallies(&wide), tallies(&narrow), "--chunk changed the tallies");
        assert!(narrow.contains("chunk 1"), "{narrow}");
    }

    #[test]
    fn campaign_supervision_flags_leave_clean_tallies_unchanged() {
        // A clean campaign classifies identically with or without strict
        // mode, a custom watchdog factor, and a quarantine limit — the
        // supervision layer must be invisible when nothing goes wrong.
        let base =
            cmd_campaign(args(&["-n", "30", "--seed", "7", "--shards", "2", "--quiet"])).unwrap();
        let supervised = cmd_campaign(args(&[
            "-n",
            "30",
            "--seed",
            "7",
            "--shards",
            "2",
            "--quiet",
            "--strict",
            "--inj-cycle-factor",
            "8",
            "--quarantine-limit",
            "1",
        ]))
        .unwrap();
        // The first line carries wall-clock rate/elapsed; everything after
        // it is deterministic tallies.
        let tallies = |s: &str| s.split_once('\n').map(|(_, rest)| rest.to_string()).unwrap();
        assert_eq!(
            tallies(&base),
            tallies(&supervised),
            "supervision flags perturbed a clean campaign"
        );
        assert!(!base.contains("anomalies:"), "{base}");
        assert!(!base.contains("DEGRADED"), "{base}");

        // The JSON schema carries the supervision fields, zeroed on a
        // clean run; run-shaped health fields live under the volatile
        // "run" sub-object.
        let js = cmd_campaign(args(&["-n", "30", "--seed", "7", "--json", "--quiet"])).unwrap();
        let parsed = argus_orchestrator::Json::parse(&js).unwrap();
        assert_eq!(parsed.get("hung").and_then(|v| v.as_u64()), Some(0));
        assert_eq!(parsed.get("quarantined").and_then(|v| v.as_u64()), Some(0));
        let run = parsed.get("run").expect("volatile run sub-object");
        assert_eq!(run.get("degraded").and_then(|v| v.as_bool()), Some(false));
        assert_eq!(run.get("flush_failures").and_then(|v| v.as_u64()), Some(0));
        assert_eq!(run.get("snapshot_fallbacks").and_then(|v| v.as_u64()), Some(0));
        assert!(run.get("leases").and_then(|v| v.as_u64()).unwrap() > 0, "{js}");
        assert!(run.get("workers").is_some() && run.get("chunk").is_some(), "{js}");
    }

    #[test]
    fn verify_command() {
        let p = write_temp("verify.s", PROG);
        let out = cmd_verify(args(&[p.as_str()])).unwrap();
        assert!(out.contains("image verifies"), "{out}");
    }

    #[test]
    fn snapshot_save_info_restore_roundtrip() {
        let p = write_temp("snap.s", PROG);
        let snap_path = write_temp("snap.bin", "");

        let out = cmd_snapshot(args(&[
            "save",
            p.as_str(),
            "--out",
            snap_path.as_str(),
            "--at-cycle",
            "20",
        ]))
        .unwrap();
        assert!(out.contains("saved snapshot"), "{out}");

        let info = cmd_snapshot(args(&["info", snap_path.as_str()])).unwrap();
        assert!(info.contains("fingerprint"), "{info}");
        assert!(info.contains("halted false"), "{info}");

        // Resuming the snapshot must reach the same architectural result
        // as the uninterrupted run.
        let resumed =
            cmd_snapshot(args(&["restore", snap_path.as_str(), "--run", "--regs", "r3"])).unwrap();
        assert!(resumed.contains("halted=true"), "{resumed}");
        assert!(resumed.contains("r3 = 0x00000037"), "{resumed}");

        let direct = cmd_run(args(&[p.as_str(), "--regs", "r3"])).unwrap();
        assert!(direct.contains("r3 = 0x00000037"), "{direct}");
    }

    #[test]
    fn snapshot_rejects_bad_input() {
        let e = cmd_snapshot(args(&["frob"])).unwrap_err();
        assert!(e.to_string().contains("unknown snapshot verb"), "{e}");
        let garbage = write_temp("garbage.bin", "not a snapshot");
        let e = cmd_snapshot(args(&["info", garbage.as_str()])).unwrap_err();
        assert!(e.to_string().contains("bad magic"), "{e}");
    }

    #[test]
    fn campaign_snapshot_every_matches_cold_boot() {
        let cold = cmd_campaign(args(&["-n", "30", "--seed", "11"])).unwrap();
        let forked =
            cmd_campaign(args(&["-n", "30", "--seed", "11", "--snapshot-every", "800"])).unwrap();
        assert_eq!(cold, forked, "snapshot forking changed serial campaign output");

        let human = cmd_campaign(args(&[
            "-n",
            "30",
            "--seed",
            "11",
            "--snapshot-every",
            "800",
            "--shards",
            "2",
            "--quiet",
        ]))
        .unwrap();
        assert!(human.contains("golden-run checkpoints every 800 cycles"), "{human}");

        let e = cmd_campaign(args(&["--snapshot-every", "0", "--quiet"])).unwrap_err();
        assert!(e.to_string().contains("bad --snapshot-every"), "{e}");
    }
}
