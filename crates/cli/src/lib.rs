//! # argus-cli — command-line driver
//!
//! A small front end over the workspace for interactive use:
//!
//! ```text
//! argus asm <file.s> [--argus]           disassemble the compiled image
//! argus run <file.s> [--baseline] [--two-way] [--regs r3,r4]
//! argus inject <file.s> --site S --bit N [--permanent] [--arm C]
//! argus campaign [-n N] [--permanent]    Table-1 campaign on the stress test
//! argus sites                            list the fault-site inventory
//! ```
//!
//! The library half exposes the command implementations so they are unit
//! testable; `main.rs` is a thin argv shim.

use argus_compiler::{asm, compile, EmbedConfig, Mode};
use argus_core::{Argus, ArgusConfig};
use argus_faults::campaign::{run_campaign, CampaignConfig};
use argus_machine::{Machine, MachineConfig, StepOutcome};
use argus_mem::MemConfig;
use argus_sim::fault::{Fault, FaultInjector, FaultKind};
use std::fmt::Write as _;

/// A CLI-level failure, printed to stderr with exit code 1.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn fail(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Simple flag scanner: `--name value` and boolean `--name`.
pub struct Args {
    rest: Vec<String>,
}

impl Args {
    /// Wraps raw arguments (without the program name and subcommand).
    pub fn new(rest: Vec<String>) -> Self {
        Self { rest }
    }

    /// Removes and returns a boolean flag.
    pub fn flag(&mut self, name: &str) -> bool {
        if let Some(i) = self.rest.iter().position(|a| a == name) {
            self.rest.remove(i);
            true
        } else {
            false
        }
    }

    /// Removes and returns a `--name value` option.
    pub fn opt(&mut self, name: &str) -> Option<String> {
        let i = self.rest.iter().position(|a| a == name)?;
        if i + 1 >= self.rest.len() {
            return None;
        }
        let v = self.rest.remove(i + 1);
        self.rest.remove(i);
        Some(v)
    }

    /// Removes and returns the first positional argument.
    pub fn positional(&mut self) -> Option<String> {
        let i = self.rest.iter().position(|a| !a.starts_with("--"))?;
        Some(self.rest.remove(i))
    }

    /// Errors if anything was left unconsumed.
    pub fn finish(self) -> Result<(), CliError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(fail(format!("unrecognized arguments: {:?}", self.rest)))
        }
    }
}

fn load_unit(path: &str) -> Result<argus_compiler::ProgramUnit, CliError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| fail(format!("cannot read `{path}`: {e}")))?;
    asm::assemble(&src).map_err(|e| fail(format!("{path}: {e}")))
}

/// `argus asm`: compile and disassemble.
pub fn cmd_asm(mut args: Args) -> Result<String, CliError> {
    let path = args.positional().ok_or_else(|| fail("usage: argus asm <file.s> [--argus]"))?;
    let mode = if args.flag("--argus") { Mode::Argus } else { Mode::Baseline };
    args.finish()?;
    let unit = load_unit(&path)?;
    let prog = compile(&unit, mode, &EmbedConfig::default()).map_err(|e| fail(e.to_string()))?;
    let mut out = asm::disassemble(&prog.code, prog.code_base);
    let _ = writeln!(
        out,
        "; {} instructions ({} signature words), {} data words, mode {:?}",
        prog.stats.static_instrs,
        prog.stats.sig_instrs,
        prog.data.len(),
        mode
    );
    Ok(out)
}

/// `argus run`: compile + execute, optionally under the checker.
pub fn cmd_run(mut args: Args) -> Result<String, CliError> {
    let path = args
        .positional()
        .ok_or_else(|| fail("usage: argus run <file.s> [--baseline] [--two-way] [--regs r3,r4]"))?;
    let baseline = args.flag("--baseline");
    let two_way = args.flag("--two-way");
    let regs: Vec<argus_isa::Reg> = match args.opt("--regs") {
        Some(spec) => spec
            .split(',')
            .map(|t| {
                t.trim()
                    .strip_prefix('r')
                    .and_then(|n| n.parse::<u8>().ok())
                    .filter(|&n| n < 32)
                    .map(argus_isa::Reg::new)
                    .ok_or_else(|| fail(format!("bad register `{t}`")))
            })
            .collect::<Result<_, _>>()?,
        None => vec![],
    };
    let max_cycles: u64 = match args.opt("--max-cycles") {
        Some(s) => s.parse().map_err(|_| fail("bad --max-cycles"))?,
        None => 200_000_000,
    };
    let trace: u64 = match args.opt("--trace") {
        Some(s) => s.parse().map_err(|_| fail("bad --trace"))?,
        None => 0,
    };
    args.finish()?;

    let unit = load_unit(&path)?;
    let mode = if baseline { Mode::Baseline } else { Mode::Argus };
    let prog = compile(&unit, mode, &EmbedConfig::default()).map_err(|e| fail(e.to_string()))?;
    let mem = if two_way { MemConfig::default().two_way() } else { MemConfig::default() };
    let mut m = Machine::new(MachineConfig { argus_mode: !baseline, mem, ..Default::default() });
    prog.load(&mut m);

    let mut out = String::new();
    let mut checker = (!baseline).then(|| {
        let mut c = Argus::new(ArgusConfig::default());
        c.expect_entry(prog.entry_dcs.unwrap_or(0));
        c
    });
    let mut inj = FaultInjector::none();
    loop {
        match m.step(&mut inj) {
            StepOutcome::Committed(rec) => {
                if m.retired() <= trace {
                    let _ = writeln!(
                        out,
                        "[{:>6}] {:#06x}: {}{}",
                        rec.cycle,
                        rec.pc,
                        rec.instr,
                        if rec.block_end { "   ; block end" } else { "" }
                    );
                }
                if let Some(c) = checker.as_mut() {
                    for ev in c.on_commit(&rec, &mut inj) {
                        let _ = writeln!(out, "DETECTED: {ev}");
                    }
                }
            }
            StepOutcome::Stalled => {
                if let Some(c) = checker.as_mut() {
                    c.on_stall(1, &mut inj);
                }
            }
            StepOutcome::Halted => break,
        }
        if m.cycle() > max_cycles {
            break;
        }
    }
    let _ = writeln!(
        out,
        "halted={} cycles={} retired={} detections={}",
        m.halted(),
        m.cycle(),
        m.retired(),
        checker.as_ref().map(|c| c.events().len()).unwrap_or(0)
    );
    for r in regs {
        let _ = writeln!(out, "{r} = {:#010x}", m.reg(r));
    }
    Ok(out)
}

/// `argus inject`: single-fault run with outcome report.
pub fn cmd_inject(mut args: Args) -> Result<String, CliError> {
    let path = args.positional().ok_or_else(|| {
        fail("usage: argus inject <file.s> --site S --bit N [--permanent] [--arm C]")
    })?;
    let site_name = args.opt("--site").ok_or_else(|| fail("--site is required"))?;
    let bit: u8 = args
        .opt("--bit")
        .ok_or_else(|| fail("--bit is required"))?
        .parse()
        .map_err(|_| fail("bad --bit"))?;
    let kind = if args.flag("--permanent") { FaultKind::Permanent } else { FaultKind::Transient };
    let arm: u64 = match args.opt("--arm") {
        Some(s) => s.parse().map_err(|_| fail("bad --arm"))?,
        None => 100,
    };
    args.finish()?;

    let inventory = argus_faults::sites::full_inventory();
    let site = inventory
        .iter()
        .find(|s| s.name == site_name)
        .ok_or_else(|| fail(format!("unknown site `{site_name}` (try `argus sites`)")))?;
    if bit >= site.width {
        return Err(fail(format!("bit {bit} out of range for {site_name} (width {})", site.width)));
    }

    let unit = load_unit(&path)?;
    let prog =
        compile(&unit, Mode::Argus, &EmbedConfig::default()).map_err(|e| fail(e.to_string()))?;

    // Golden run for masking classification.
    let mut golden = Machine::new(MachineConfig::default());
    prog.load(&mut golden);
    golden.run_to_halt(&mut FaultInjector::none(), 200_000_000);
    let (gd, gc) = (golden.state_digest(), golden.cycle());

    let mut m = Machine::new(MachineConfig::default());
    prog.load(&mut m);
    let mut checker = Argus::new(ArgusConfig::default());
    checker.expect_entry(prog.entry_dcs.unwrap_or(0));
    let mut inj = FaultInjector::with_fault(Fault {
        site: site.name,
        bit,
        kind,
        arm_cycle: arm,
        flavor: site.flavor,
        width: site.width,
        sensitization: 1.0,
    });
    loop {
        match m.step(&mut inj) {
            StepOutcome::Committed(rec) => {
                checker.on_commit(&rec, &mut inj);
            }
            StepOutcome::Stalled => {
                checker.on_stall(1, &mut inj);
            }
            StepOutcome::Halted => break,
        }
        if m.cycle() > gc * 2 + 2_000 {
            break;
        }
    }
    if checker.first_detection().is_none() {
        checker.scrub_memory(&m, prog.data_base, &mut inj);
    }

    let masked = m.halted() && m.state_digest() == gd;
    let mut out = String::new();
    let _ = writeln!(out, "site {site_name} bit {bit} ({kind:?}, armed at cycle {arm})");
    let _ = writeln!(out, "exercised: {:?}", inj.first_flip_cycle());
    match checker.first_detection() {
        Some(ev) => {
            let _ = writeln!(out, "detected: {ev}");
        }
        None => {
            let _ = writeln!(out, "detected: no");
        }
    }
    let _ = writeln!(
        out,
        "outcome: {}",
        match (masked, checker.first_detection().is_some()) {
            (false, false) => "UNMASKED, UNDETECTED — silent data corruption",
            (false, true) => "unmasked, detected",
            (true, false) => "masked, undetected",
            (true, true) => "masked, detected (DME)",
        }
    );
    Ok(out)
}

/// `argus sites`: the fault-site inventory.
pub fn cmd_sites(args: Args) -> Result<String, CliError> {
    args.finish()?;
    let mut out = format!("{:24} {:>5} {:>9} {:>7} {}\n", "site", "width", "weight", "sens", "unit");
    for s in argus_faults::sites::full_inventory() {
        let _ = writeln!(
            out,
            "{:24} {:>5} {:>9.2} {:>7.2} {}{}",
            s.name,
            s.width,
            s.weight,
            s.sensitization,
            s.unit,
            if matches!(s.flavor, argus_sim::fault::SiteFlavor::Double) { " (double)" } else { "" }
        );
    }
    Ok(out)
}

/// `argus campaign`: a Table-1 campaign on the stress microbenchmark.
pub fn cmd_campaign(mut args: Args) -> Result<String, CliError> {
    let n: usize = match args.opt("-n") {
        Some(s) => s.parse().map_err(|_| fail("bad -n"))?,
        None => 1000,
    };
    let kind = if args.flag("--permanent") { FaultKind::Permanent } else { FaultKind::Transient };
    args.finish()?;
    let rep = run_campaign(
        &argus_workloads::stress(),
        &CampaignConfig { injections: n, kind, ..Default::default() },
    );
    Ok(format!("{rep}"))
}

/// `argus verify`: compile in Argus mode and statically verify the image's
/// embedded signatures.
pub fn cmd_verify(mut args: Args) -> Result<String, CliError> {
    let path = args.positional().ok_or_else(|| fail("usage: argus verify <file.s>"))?;
    args.finish()?;
    let unit = load_unit(&path)?;
    let ecfg = EmbedConfig::default();
    let prog = compile(&unit, Mode::Argus, &ecfg).map_err(|e| fail(e.to_string()))?;
    let rep = argus_compiler::binver::verify_image(&prog, &ecfg)
        .map_err(|e| fail(format!("verification FAILED: {e}")))?;
    Ok(format!(
        "image verifies: {} blocks, {} embedded successor slots checked, entry DCS {:#04x}\n",
        rep.blocks,
        rep.slots_checked,
        prog.entry_dcs.unwrap_or(0)
    ))
}

/// Dispatches a subcommand; returns the text to print.
pub fn dispatch(cmd: &str, args: Args) -> Result<String, CliError> {
    match cmd {
        "asm" => cmd_asm(args),
        "run" => cmd_run(args),
        "inject" => cmd_inject(args),
        "sites" => cmd_sites(args),
        "campaign" => cmd_campaign(args),
        "verify" => cmd_verify(args),
        other => Err(fail(format!("unknown command `{other}`\n{USAGE}"))),
    }
}

/// Top-level usage text.
pub const USAGE: &str = "usage: argus <asm|run|inject|verify|sites|campaign> [options]
  argus asm <file.s> [--argus]
  argus run <file.s> [--baseline] [--two-way] [--regs r3,r4] [--max-cycles N]
  argus inject <file.s> --site S --bit N [--permanent] [--arm C]
  argus verify <file.s>
  argus campaign [-n N] [--permanent]
  argus sites";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(xs: &[&str]) -> Args {
        Args::new(xs.iter().map(|s| s.to_string()).collect())
    }

    fn write_temp(name: &str, contents: &str) -> String {
        let dir = std::env::temp_dir().join("argus-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::write(&p, contents).unwrap();
        p.to_string_lossy().into_owned()
    }

    const PROG: &str = "li r3, 0\nli r4, 1\nli r5, 10\nloop: add r3, r3, r4\naddi r4, r4, 1\nsfleu r4, r5\nbf loop\nnop\nhalt\n";

    #[test]
    fn args_parsing() {
        let mut a = args(&["file.s", "--permanent", "--bit", "3"]);
        assert_eq!(a.positional().as_deref(), Some("file.s"));
        assert!(a.flag("--permanent"));
        assert!(!a.flag("--permanent"));
        assert_eq!(a.opt("--bit").as_deref(), Some("3"));
        assert!(a.finish().is_ok());

        let a = args(&["--mystery"]);
        assert!(a.finish().is_err());
    }

    #[test]
    fn asm_command() {
        let p = write_temp("asm.s", PROG);
        let out = cmd_asm(args(&[p.as_str(), "--argus"])).unwrap();
        assert!(out.contains("add r3, r3, r4"));
        assert!(out.contains("signature words"));
    }

    #[test]
    fn run_command_baseline_and_checked() {
        let p = write_temp("run.s", PROG);
        let out = cmd_run(args(&[p.as_str(), "--baseline", "--regs", "r3"])).unwrap();
        assert!(out.contains("halted=true"));
        assert!(out.contains("r3 = 0x00000037"), "{out}");
        let out = cmd_run(args(&[p.as_str(), "--regs", "r3"])).unwrap();
        assert!(out.contains("detections=0"));
    }

    #[test]
    fn inject_command_detects_alu_fault() {
        let p = write_temp("inject.s", PROG);
        let out = cmd_inject(args(&[
            p.as_str(),
            "--site",
            "alu_adder_out",
            "--bit",
            "2",
            "--permanent",
            "--arm",
            "5",
        ]))
        .unwrap();
        assert!(out.contains("detected: computation"), "{out}");
    }

    #[test]
    fn inject_rejects_unknown_site() {
        let p = write_temp("bad.s", PROG);
        let e = cmd_inject(args(&[p.as_str(), "--site", "nope", "--bit", "0"])).unwrap_err();
        assert!(e.to_string().contains("unknown site"));
    }

    #[test]
    fn sites_command_lists_inventory() {
        let out = cmd_sites(args(&[])).unwrap();
        assert!(out.contains("alu_adder_out"));
        assert!(out.contains("shs_crc_out"));
    }

    #[test]
    fn dispatch_unknown_command() {
        assert!(dispatch("frobnicate", args(&[])).is_err());
    }

    #[test]
    fn verify_command() {
        let p = write_temp("verify.s", PROG);
        let out = cmd_verify(args(&[p.as_str()])).unwrap();
        assert!(out.contains("image verifies"), "{out}");
    }
}
