//! Standard-cell primitives in NAND2-equivalents and the area calibration.

/// Area of one NAND2-equivalent gate, including routing overhead, in µm²
/// (calibrated so the ~40k-gate baseline core occupies the published
/// 6.58 mm² in the VTVT 0.25µm library).
pub const NAND2_AREA_UM2: f64 = 6.58e6 / 40_000.0;

/// Gate-equivalent costs of common cells (typical standard-cell ratios).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cell {
    /// 2-input NAND (the unit).
    Nand2,
    /// 2-input XOR.
    Xor2,
    /// 2:1 multiplexer.
    Mux2,
    /// Full adder.
    FullAdder,
    /// D flip-flop.
    Dff,
}

impl Cell {
    /// NAND2-equivalents of this cell.
    pub fn nand2_equiv(self) -> f64 {
        match self {
            Cell::Nand2 => 1.0,
            Cell::Xor2 => 2.5,
            Cell::Mux2 => 2.0,
            Cell::FullAdder => 6.0,
            Cell::Dff => 6.0,
        }
    }

    /// Area in µm² of `n` instances.
    pub fn area_um2(self, n: f64) -> f64 {
        self.nand2_equiv() * n * NAND2_AREA_UM2
    }
}

/// Converts NAND2-equivalents to mm².
pub fn gates_to_mm2(gates: f64) -> f64 {
    gates * NAND2_AREA_UM2 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_published_core() {
        assert!((gates_to_mm2(40_000.0) - 6.58).abs() < 1e-9);
    }

    #[test]
    fn cell_ratios_are_sane() {
        assert!(Cell::Dff.nand2_equiv() > Cell::Xor2.nand2_equiv());
        assert!(Cell::FullAdder.nand2_equiv() > Cell::Mux2.nand2_equiv());
        assert!(Cell::Xor2.area_um2(10.0) > 0.0);
    }
}
