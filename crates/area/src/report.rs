//! Table 2 assembly and formatting.

use crate::cache_model::{cache_area_mm2, CacheGeometry};
use crate::core_model::{argus_additions, baseline_core, total_mm2, ArgusParams};
use std::fmt;

/// The full area comparison of Table 2 (areas in mm²).
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// Baseline core.
    pub core_base: f64,
    /// Core with Argus-1.
    pub core_argus: f64,
    /// I-cache per associativity `[1-way, 2-way]` (unchanged by Argus-1 —
    /// no instruction parity).
    pub icache: [f64; 2],
    /// Baseline D-cache per associativity.
    pub dcache_base: [f64; 2],
    /// Argus-1 D-cache per associativity.
    pub dcache_argus: [f64; 2],
}

impl Table2 {
    /// Core area overhead in percent.
    pub fn core_overhead_pct(&self) -> f64 {
        100.0 * (self.core_argus - self.core_base) / self.core_base
    }

    /// D-cache overhead in percent for 1-way (`0`) or 2-way (`1`).
    pub fn dcache_overhead_pct(&self, way_idx: usize) -> f64 {
        100.0 * (self.dcache_argus[way_idx] - self.dcache_base[way_idx]) / self.dcache_base[way_idx]
    }

    /// Total chip area, baseline, for 1-way (`0`) or 2-way (`1`).
    pub fn total_base(&self, way_idx: usize) -> f64 {
        self.core_base + self.icache[way_idx] + self.dcache_base[way_idx]
    }

    /// Total chip area with Argus-1.
    pub fn total_argus(&self, way_idx: usize) -> f64 {
        self.core_argus + self.icache[way_idx] + self.dcache_argus[way_idx]
    }

    /// Total overhead in percent.
    pub fn total_overhead_pct(&self, way_idx: usize) -> f64 {
        100.0 * (self.total_argus(way_idx) - self.total_base(way_idx)) / self.total_base(way_idx)
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:16} {:>8} {:>13} {:>9}", "", "OR1200", "with Argus-1", "overhead")?;
        writeln!(
            f,
            "{:16} {:8.2} {:13.2} {:8.1}%",
            "core",
            self.core_base,
            self.core_argus,
            self.core_overhead_pct()
        )?;
        for (i, name) in ["I-cache: 1-way", "         2-way"].iter().enumerate() {
            writeln!(f, "{:16} {:8.2} {:13.2} {:>9}", name, self.icache[i], self.icache[i], "0%")?;
        }
        for (i, name) in ["D-cache: 1-way", "         2-way"].iter().enumerate() {
            writeln!(
                f,
                "{:16} {:8.2} {:13.2} {:8.1}%",
                name,
                self.dcache_base[i],
                self.dcache_argus[i],
                self.dcache_overhead_pct(i)
            )?;
        }
        for (i, name) in ["total:   1-way", "         2-way"].iter().enumerate() {
            writeln!(
                f,
                "{:16} {:8.2} {:13.2} {:8.1}%",
                name,
                self.total_base(i),
                self.total_argus(i),
                self.total_overhead_pct(i)
            )?;
        }
        Ok(())
    }
}

/// Computes Table 2 at the paper's design point.
pub fn table2() -> Table2 {
    table2_with(ArgusParams::default())
}

/// Computes Table 2 for arbitrary Argus parameters (ablations).
pub fn table2_with(p: ArgusParams) -> Table2 {
    let core_base = total_mm2(&baseline_core());
    let core_argus = core_base + total_mm2(&argus_additions(p));
    Table2 {
        core_base,
        core_argus,
        icache: [
            cache_area_mm2(CacheGeometry::kb8(1), false),
            cache_area_mm2(CacheGeometry::kb8(2), false),
        ],
        dcache_base: [
            cache_area_mm2(CacheGeometry::kb8(1), false),
            cache_area_mm2(CacheGeometry::kb8(2), false),
        ],
        dcache_argus: [
            cache_area_mm2(CacheGeometry::kb8(1), true),
            cache_area_mm2(CacheGeometry::kb8(2), true),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_match_published_shape() {
        let t = table2();
        // Paper: core +16.6%, D-cache +4.9/5.1%, total +10.9/10.6%.
        assert!(
            (12.0..18.0).contains(&t.core_overhead_pct()),
            "core {:.1}%",
            t.core_overhead_pct()
        );
        for i in 0..2 {
            assert!((3.5..6.5).contains(&t.dcache_overhead_pct(i)));
            assert!(
                (7.0..13.0).contains(&t.total_overhead_pct(i)),
                "total {:.1}%",
                t.total_overhead_pct(i)
            );
        }
    }

    #[test]
    fn absolute_areas_near_published() {
        let t = table2();
        assert!((t.core_base - 6.58).abs() < 0.4);
        assert!((t.total_base(0) - 10.86).abs() < 0.6);
        assert!((t.total_base(1) - 11.42).abs() < 0.6);
    }

    #[test]
    fn display_renders_all_rows() {
        let s = table2().to_string();
        assert!(s.contains("core"));
        assert!(s.contains("I-cache"));
        assert!(s.contains("D-cache"));
        assert!(s.contains("total"));
    }

    #[test]
    fn icache_is_never_touched() {
        let t = table2();
        assert_eq!(t.icache[0], t.dcache_base[0], "same geometry baseline");
    }
}
