//! Cacti-like 8KB cache area model.

/// Cache geometry for area purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Associativity.
    pub ways: u32,
}

impl CacheGeometry {
    /// The paper's 8KB, 16B-line configuration.
    pub fn kb8(ways: u32) -> Self {
        Self { size_bytes: 8 * 1024, line_bytes: 16, ways }
    }

    fn lines(&self) -> u32 {
        self.size_bytes / self.line_bytes
    }

    fn index_bits(&self) -> u32 {
        (self.lines() / self.ways).trailing_zeros()
    }

    /// Tag bits per line (32-bit addresses) plus valid + dirty.
    fn tag_bits_per_line(&self) -> u32 {
        let offset_bits = self.line_bytes.trailing_zeros();
        (32 - offset_bits - self.index_bits()) + 2
    }

    /// Total storage bits (data + tags + per-set LRU).
    pub fn total_bits(&self, parity_per_word: bool) -> u32 {
        let data = self.size_bytes * 8;
        let tags = self.lines() * self.tag_bits_per_line();
        let lru = if self.ways > 1 { self.lines() / self.ways } else { 0 };
        let parity = if parity_per_word { self.size_bytes / 4 } else { 0 };
        data + tags + lru + parity
    }
}

/// Effective area of one SRAM bit including array overheads, in µm²
/// (calibrated to Cacti 3.0's 2.14 mm² for the direct-mapped 8KB point).
pub const SRAM_BIT_AREA_UM2: f64 = 24.6;

/// Fixed per-way overhead (decoder slice, comparator, way mux, sense
/// amps), in mm² (calibrated so the 2-way point lands near 2.42 mm²).
pub const PER_WAY_OVERHEAD_MM2: f64 = 0.255;

/// Word-protection scheme for the data array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protection {
    /// No protection (baseline, and the Argus-1 I-cache).
    None,
    /// One parity bit per 32-bit word over address-embedded data — the
    /// Argus-1 design point (§3.4).
    Parity,
    /// Hamming SEC-DED, 7 check bits per word — the §4.2 alternative that
    /// bounds memory-error latency by correcting in place.
    SecDed,
}

/// Area of one cache in mm² under a word-protection scheme.
pub fn cache_area_protected(geom: CacheGeometry, prot: Protection) -> f64 {
    let words = (geom.size_bytes / 4) as f64;
    let extra_bits = match prot {
        Protection::None => 0.0,
        Protection::Parity => words,
        Protection::SecDed => 7.0 * words,
    };
    let bits = geom.total_bits(false) as f64 + extra_bits;
    let mut area = bits * SRAM_BIT_AREA_UM2 / 1e6 + geom.ways as f64 * PER_WAY_OVERHEAD_MM2;
    area += match prot {
        Protection::None => 0.0,
        // Parity generate/check trees, per-word XOR with the address, and
        // the read-modify-write path extension.
        Protection::Parity => 0.052,
        // Hamming encoder + syndrome decoder + correction muxes.
        Protection::SecDed => 0.118,
    };
    area
}

/// Area of one cache in mm² (Argus-1 parity on/off — the Table 2 rows).
pub fn cache_area_mm2(geom: CacheGeometry, argus_parity: bool) -> f64 {
    cache_area_protected(geom, if argus_parity { Protection::Parity } else { Protection::None })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_baseline_points() {
        let one = cache_area_mm2(CacheGeometry::kb8(1), false);
        let two = cache_area_mm2(CacheGeometry::kb8(2), false);
        assert!((one - 2.14).abs() < 0.08, "1-way {one} vs 2.14");
        assert!((two - 2.42).abs() < 0.08, "2-way {two} vs 2.42");
    }

    #[test]
    fn argus_dcache_overhead_near_five_percent() {
        for ways in [1, 2] {
            let base = cache_area_mm2(CacheGeometry::kb8(ways), false);
            let argus = cache_area_mm2(CacheGeometry::kb8(ways), true);
            let pct = 100.0 * (argus - base) / base;
            assert!(
                (3.5..6.5).contains(&pct),
                "{ways}-way D-cache overhead {pct:.1}%, paper ≈4.9/5.1%"
            );
        }
    }

    #[test]
    fn geometry_bit_accounting() {
        let g = CacheGeometry::kb8(1);
        assert_eq!(g.lines(), 512);
        assert_eq!(g.index_bits(), 9);
        assert_eq!(g.tag_bits_per_line(), 19 + 2);
        assert_eq!(g.total_bits(false), 65536 + 512 * 21);
        assert_eq!(g.total_bits(true) - g.total_bits(false), 2048);
        let g2 = CacheGeometry::kb8(2);
        assert_eq!(g2.index_bits(), 8);
        assert!(g2.total_bits(false) > g.total_bits(false));
    }
}
