//! # argus-area — the analytical area model (Table 2)
//!
//! The paper synthesizes the OR1200 with and without Argus-1 using the
//! VTVT 0.25µm standard-cell library and lays it out (Synopsys DC +
//! Cadence SE), then sizes the 8KB caches with Cacti 3.0. Neither tool
//! chain is available here, so this crate substitutes an analytical model:
//!
//! * a **standard-cell accounting** of the baseline core — a gate-level
//!   inventory per block (register file, ALU, multiplier/divider, LSU,
//!   fetch/decode, control) totalling the "roughly 40,000 gates" the paper
//!   reports, calibrated to the published 6.58 mm² baseline;
//! * the **Argus-1 additions** computed structurally from the paper's §3
//!   description (SHS storage and CRC units, the DCS permutation/XOR tree,
//!   signature extraction, sub-checkers, parity, watchdog), parameterized
//!   by signature width and residue modulus so the ablation benches can
//!   sweep the cost side of the trade-offs;
//! * a **Cacti-like cache model** (data + tag arrays, per-way overheads)
//!   calibrated to the published 2.14/2.42 mm² 8KB points, with the
//!   Argus-1 D-cache parity/XOR additions computed from the structure.
//!
//! The calibration pins the *baseline* absolute numbers; every *overhead
//! ratio* — the quantity Table 2 argues about — emerges from the
//! structural inventory.
//!
//! # Examples
//!
//! ```
//! use argus_area::report::table2;
//! let t = table2();
//! assert!(t.core_overhead_pct() < 25.0);
//! println!("{t}");
//! ```

pub mod cache_model;
pub mod cells;
pub mod core_model;
pub mod report;

pub use report::{table2, Table2};
