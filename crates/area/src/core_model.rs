//! Gate-level inventory of the baseline core and the Argus-1 additions.

use crate::cells::{gates_to_mm2, Cell};

/// One inventoried block.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Block name.
    pub name: &'static str,
    /// Size in NAND2-equivalent gates.
    pub gates: f64,
}

/// Sums an inventory in gates.
pub fn total_gates(components: &[Component]) -> f64 {
    components.iter().map(|c| c.gates).sum()
}

/// Sums an inventory in mm².
pub fn total_mm2(components: &[Component]) -> f64 {
    gates_to_mm2(total_gates(components))
}

fn dff(n: f64) -> f64 {
    Cell::Dff.nand2_equiv() * n
}

fn mux2(n: f64) -> f64 {
    Cell::Mux2.nand2_equiv() * n
}

fn xor2(n: f64) -> f64 {
    Cell::Xor2.nand2_equiv() * n
}

fn fa(n: f64) -> f64 {
    Cell::FullAdder.nand2_equiv() * n
}

/// The baseline OR1200-like core: a ~40k-gate inventory consistent with
/// the paper's "roughly 40,000 total gates".
pub fn baseline_core() -> Vec<Component> {
    vec![
        // 32×32b flip-flop register file with 2 read ports and 1 write port.
        Component { name: "register file", gates: dff(1024.0) + mux2(2.0 * 32.0 * 31.0) + 200.0 },
        // Carry-lookahead adder, bitwise logic, barrel shifter, flags.
        Component { name: "ALU", gates: fa(32.0) + 400.0 + 300.0 + mux2(32.0 * 5.0 * 2.0) + 200.0 },
        // Non-pipelined 32×32 array multiplier.
        Component { name: "multiplier", gates: fa(1024.0) + 1024.0 },
        // Serial restoring divider.
        Component { name: "divider", gates: fa(33.0) + 250.0 + dff(100.0) },
        // Load/store unit: aligners, merge network, address mux.
        Component { name: "LSU", gates: mux2(32.0 * 4.0) + 700.0 + 250.0 },
        // PC, next-PC logic, fetch buffer.
        Component { name: "fetch", gates: dff(62.0) + 200.0 + mux2(96.0) },
        Component { name: "decode", gates: 1_800.0 },
        Component { name: "pipeline latches", gates: dff(340.0) },
        Component { name: "control", gates: 3_000.0 },
        Component { name: "cache controllers / bus", gates: 9_000.0 },
        Component { name: "SPRs / misc", gates: 900.0 },
    ]
}

/// Argus parameters that affect checker area (the ablation knobs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArgusParams {
    /// Signature width in bits (paper: 5).
    pub sig_width: u32,
    /// Residue-checker modulus (paper: 31, i.e. 5 bits).
    pub modulus: u32,
}

impl Default for ArgusParams {
    fn default() -> Self {
        Self { sig_width: 5, modulus: 31 }
    }
}

/// The Argus-1 additions, computed structurally from §3.
pub fn argus_additions(p: ArgusParams) -> Vec<Component> {
    let w = p.sig_width as f64;
    // Bits of the residue checker's modulus.
    let k = (32 - p.modulus.leading_zeros()) as f64;
    vec![
        // One SHS per register + PC/mem/flag, one parity bit per register.
        Component { name: "SHS + parity storage", gates: dff(32.0 * w + 3.0 * w + 32.0) },
        // SHS/parity bits accompanying operands and results through the
        // pipeline.
        Component { name: "SHS datapath widening", gates: dff(2.0 * (3.0 * w + 3.0)) },
        // One CRC + substitution unit per functional unit (ALU, mul/div,
        // LSU, branch/compare).
        Component { name: "SHS computation units", gates: 4.0 * (30.0 * w + xor2(8.0 * w)) },
        // Parallel SHS reset, hard-wired permutation (wiring only), XOR
        // tree, DCS comparator.
        Component {
            name: "DCS reduction + compare",
            gates: mux2(32.0 * w) + xor2(35.0 * w) + xor2(w) + 20.0,
        },
        // Fetch-side extraction of embedded bits, slot buffer and parser,
        // link-DCS mux.
        Component { name: "signature extraction", gates: dff(16.0 * w) + 370.0 + mux2(4.0 * w) },
        // Ripple-carry adder checker with logic-op emulation muxes.
        Component { name: "adder sub-checker", gates: fa(32.0) + mux2(64.0) + xor2(32.0) + 60.0 },
        // Right-shift + sign-extend checker.
        Component { name: "RSSE sub-checker", gates: mux2(32.0 * 5.0) + 50.0 + xor2(32.0) + 80.0 },
        // Two residue-folding trees, a k×k multiplier, negate/mux, compare.
        Component {
            name: "mod-M sub-checker",
            gates: 2.0 * fa(6.0 * k) + fa(k * k) + 100.0 + xor2(k),
        },
        // Operand/result/load parity generators and checkers.
        Component { name: "parity trees", gates: xor2(4.0 * 31.0) },
        // Store/load D⊕A XOR at the memory interface.
        Component { name: "address-XOR unit", gates: xor2(32.0) + mux2(8.0) },
        Component { name: "watchdog", gates: dff(6.0) + 55.0 },
        Component { name: "checker control", gates: 300.0 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_about_40k_gates() {
        let g = total_gates(&baseline_core());
        assert!((38_000.0..42_000.0).contains(&g), "baseline {g} gates, expected ≈40k");
    }

    #[test]
    fn baseline_area_matches_published() {
        let a = total_mm2(&baseline_core());
        assert!((a - 6.58).abs() < 0.40, "baseline {a} mm², published 6.58");
    }

    #[test]
    fn argus_overhead_is_under_17_percent() {
        let base = total_gates(&baseline_core());
        let add = total_gates(&argus_additions(ArgusParams::default()));
        let pct = 100.0 * add / base;
        assert!((12.0..17.0).contains(&pct), "Argus-1 adds {pct:.1}%, paper reports <17%");
    }

    #[test]
    fn wider_signatures_cost_more() {
        let a3 = total_gates(&argus_additions(ArgusParams { sig_width: 3, modulus: 31 }));
        let a8 = total_gates(&argus_additions(ArgusParams { sig_width: 8, modulus: 31 }));
        assert!(a8 > a3 * 1.3, "w=8 ({a8}) vs w=3 ({a3})");
    }

    #[test]
    fn larger_modulus_costs_more() {
        let m3 = total_gates(&argus_additions(ArgusParams { sig_width: 5, modulus: 3 }));
        let m255 = total_gates(&argus_additions(ArgusParams { sig_width: 5, modulus: 255 }));
        assert!(m255 > m3);
    }

    #[test]
    fn multiplier_dominates_among_fus() {
        let inv = baseline_core();
        let get = |n: &str| inv.iter().find(|c| c.name == n).unwrap().gates;
        assert!(get("multiplier") > get("ALU"));
        assert!(get("multiplier") > get("divider"));
    }
}
