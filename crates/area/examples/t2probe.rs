fn main() {
    println!("{}", argus_area::table2());
}
