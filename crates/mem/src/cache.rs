//! Set-associative cache timing model.
//!
//! The cache is a tag/state array only: it decides hit vs. miss, tracks
//! dirty lines and LRU state, and counts events. Data always lives in main
//! memory, which is behaviourally exact for a single-core write-back
//! hierarchy while keeping every cache policy effect the paper's
//! performance figures depend on — capacity misses from code-footprint
//! growth and conflict-miss "re-alignment" noise in the direct-mapped
//! configuration (§4.4).

/// Cache geometry and policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Associativity: 1 (direct-mapped) or more (LRU replacement).
    pub ways: u32,
}

impl CacheConfig {
    /// The paper's 8KB configuration with 16-byte lines.
    pub fn kb8(ways: u32) -> Self {
        Self { size_bytes: 8 * 1024, line_bytes: 16, ways }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (non-power-of-two line size,
    /// zero ways, or capacity not divisible into sets).
    pub fn num_sets(&self) -> u32 {
        assert!(self.line_bytes.is_power_of_two() && self.line_bytes >= 4);
        assert!(self.ways >= 1, "cache needs at least one way");
        let lines = self.size_bytes / self.line_bytes;
        assert!(lines % self.ways == 0 && lines >= self.ways, "capacity/line/ways mismatch");
        let sets = lines / self.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::kb8(1)
    }
}

/// Event counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses (fills).
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio (0.0 when no accesses).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u32,
    /// Higher = more recently used.
    lru: u64,
}

/// The outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Whether the access hit.
    pub hit: bool,
    /// Whether a dirty victim was written back.
    pub writeback: bool,
}

/// A blocking, write-back, write-allocate cache (tag array only).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Builds a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig::num_sets`]).
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.num_sets();
        Self {
            cfg,
            sets: vec![vec![Line::default(); cfg.ways as usize]; sets as usize],
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_and_tag(&self, addr: u32) -> (usize, u32) {
        let sets = self.sets.len() as u32;
        let line = addr / self.cfg.line_bytes;
        ((line % sets) as usize, line / sets)
    }

    /// Performs one access at byte address `addr`. `is_write` marks the
    /// line dirty (write-back). Misses allocate (write-allocate).
    pub fn access(&mut self, addr: u32, is_write: bool) -> Access {
        self.tick += 1;
        self.stats.accesses += 1;
        let (set_idx, tag) = self.set_and_tag(addr);
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.tick;
            line.dirty |= is_write;
            self.stats.hits += 1;
            return Access { hit: true, writeback: false };
        }

        self.stats.misses += 1;
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
            .expect("cache set has at least one way");
        let writeback = victim.valid && victim.dirty;
        if writeback {
            self.stats.writebacks += 1;
        }
        *victim = Line { valid: true, dirty: is_write, tag, lru: self.tick };
        Access { hit: false, writeback }
    }

    /// Invalidates everything (used between experiment runs).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for line in set {
                *line = Line::default();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::kb8(1).num_sets(), 512);
        assert_eq!(CacheConfig::kb8(2).num_sets(), 256);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn bad_geometry_panics() {
        CacheConfig { size_bytes: 48, line_bytes: 16, ways: 9 }.num_sets();
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(CacheConfig::kb8(1));
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x104, false).hit, "same 16B line");
        assert!(!c.access(0x110, false).hit, "next line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = Cache::new(CacheConfig::kb8(1));
        // Two addresses 8KB apart map to the same set in a direct-mapped 8KB cache.
        assert!(!c.access(0x0, false).hit);
        assert!(!c.access(0x2000, false).hit);
        assert!(!c.access(0x0, false).hit, "conflict evicted it");
    }

    #[test]
    fn two_way_avoids_simple_conflict() {
        let mut c = Cache::new(CacheConfig::kb8(2));
        assert!(!c.access(0x0, false).hit);
        assert!(!c.access(0x2000, false).hit);
        assert!(c.access(0x0, false).hit, "2-way keeps both");
        assert!(c.access(0x2000, false).hit);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Cache::new(CacheConfig::kb8(2));
        c.access(0x0, false); // way A
        c.access(0x2000, false); // way B
        c.access(0x0, false); // A most recent
        c.access(0x4000, false); // evicts B
        assert!(c.access(0x0, false).hit);
        assert!(!c.access(0x2000, false).hit);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = Cache::new(CacheConfig::kb8(1));
        c.access(0x0, true);
        let a = c.access(0x2000, false);
        assert!(a.writeback, "dirty victim must write back");
        assert_eq!(c.stats().writebacks, 1);
        // Clean eviction: no writeback.
        let b = c.access(0x4000, false);
        assert!(!b.writeback);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = Cache::new(CacheConfig::kb8(1));
        c.access(0x0, false);
        c.access(0x0, true);
        assert!(c.access(0x2000, false).writeback);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = Cache::new(CacheConfig::kb8(2));
        c.access(0x0, false);
        c.flush();
        assert!(!c.access(0x0, false).hit);
    }

    #[test]
    fn miss_rate() {
        let mut c = Cache::new(CacheConfig::kb8(1));
        c.access(0x0, false);
        c.access(0x0, false);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }
}
