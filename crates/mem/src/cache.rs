//! Set-associative cache timing model.
//!
//! The cache is a tag/state array only: it decides hit vs. miss, tracks
//! dirty lines and LRU state, and counts events. Data always lives in main
//! memory, which is behaviourally exact for a single-core write-back
//! hierarchy while keeping every cache policy effect the paper's
//! performance figures depend on — capacity misses from code-footprint
//! growth and conflict-miss "re-alignment" noise in the direct-mapped
//! configuration (§4.4).

/// Cache geometry and policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Associativity: 1 (direct-mapped) or more (LRU replacement).
    pub ways: u32,
}

impl CacheConfig {
    /// The paper's 8KB configuration with 16-byte lines.
    pub fn kb8(ways: u32) -> Self {
        Self { size_bytes: 8 * 1024, line_bytes: 16, ways }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (non-power-of-two line size,
    /// zero ways, or capacity not divisible into sets).
    pub fn num_sets(&self) -> u32 {
        assert!(self.line_bytes.is_power_of_two() && self.line_bytes >= 4);
        assert!(self.ways >= 1, "cache needs at least one way");
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.ways) && lines >= self.ways,
            "capacity/line/ways mismatch"
        );
        let sets = lines / self.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::kb8(1)
    }
}

/// Event counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses (fills).
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio (0.0 when no accesses).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u32,
    /// Higher = more recently used.
    lru: u64,
}

/// One cache line's externally visible state (snapshot/restore).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineState {
    /// Line holds a valid tag.
    pub valid: bool,
    /// Line is dirty (write-back pending on eviction).
    pub dirty: bool,
    /// Stored tag.
    pub tag: u32,
    /// LRU stamp (higher = more recently used).
    pub lru: u64,
}

/// Full state of one cache: every line (row-major `set * ways + way`),
/// the LRU clock, and the event counters. Captured and restored as a unit
/// so a restored cache replays future accesses — hits, victims, write-backs
/// — exactly as the original would have.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheState {
    /// All lines, `sets * ways` long.
    pub lines: Vec<LineState>,
    /// The LRU clock the next access will advance from.
    pub tick: u64,
    /// Event counters at capture time.
    pub stats: CacheStats,
}

/// The outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Whether the access hit.
    pub hit: bool,
    /// Whether a dirty victim was written back.
    pub writeback: bool,
}

/// A blocking, write-back, write-allocate cache (tag array only).
///
/// Lines live in one flat row-major array (`set * ways + way`) — one
/// allocation, one cache-friendly contiguous scan per access — instead of
/// a `Vec<Vec<Line>>` with a pointer chase per set.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    num_sets: u32,
    lines: Box<[Line]>,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Builds a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig::num_sets`]).
    pub fn new(cfg: CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        Self {
            cfg,
            num_sets,
            lines: vec![Line::default(); (num_sets * cfg.ways) as usize].into_boxed_slice(),
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_and_tag(&self, addr: u32) -> (usize, u32) {
        let sets = self.num_sets;
        let line = addr / self.cfg.line_bytes;
        ((line % sets) as usize, line / sets)
    }

    /// Performs one access at byte address `addr`. `is_write` marks the
    /// line dirty (write-back). Misses allocate (write-allocate).
    pub fn access(&mut self, addr: u32, is_write: bool) -> Access {
        self.tick += 1;
        self.stats.accesses += 1;
        let (set_idx, tag) = self.set_and_tag(addr);
        let ways = self.cfg.ways as usize;
        let set = &mut self.lines[set_idx * ways..(set_idx + 1) * ways];

        // Direct-mapped (the paper's configuration) needs no way scan at
        // all; for associative sets the single-slice loops below stay
        // branch-predictable and unroll for small fixed way counts.
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.tick;
            line.dirty |= is_write;
            self.stats.hits += 1;
            return Access { hit: true, writeback: false };
        }

        self.stats.misses += 1;
        // Victim: first invalid way, else the valid way with the smallest
        // LRU stamp (first on ties, matching `min_by_key`). The explicit
        // split avoids the old `l.lru + 1` ranking trick, which overflowed
        // if a stamp ever reached `u64::MAX`.
        let mut victim = 0usize;
        let mut best_lru = u64::MAX;
        let mut found_invalid = false;
        for (w, l) in set.iter().enumerate() {
            if !l.valid {
                victim = w;
                found_invalid = true;
                break;
            }
            if l.lru < best_lru {
                best_lru = l.lru;
                victim = w;
            }
        }
        let victim = &mut set[victim];
        let writeback = !found_invalid && victim.dirty;
        if writeback {
            self.stats.writebacks += 1;
        }
        *victim = Line { valid: true, dirty: is_write, tag, lru: self.tick };
        Access { hit: false, writeback }
    }

    /// Captures the full cache state (tags, valid/dirty bits, LRU stamps,
    /// LRU clock, counters) for snapshot/restore.
    pub fn capture_state(&self) -> CacheState {
        let lines = self
            .lines
            .iter()
            .map(|l| LineState { valid: l.valid, dirty: l.dirty, tag: l.tag, lru: l.lru })
            .collect();
        CacheState { lines, tick: self.tick, stats: self.stats }
    }

    /// Restores state captured by [`Cache::capture_state`].
    ///
    /// # Panics
    ///
    /// Panics if the state was captured from a cache with a different
    /// geometry (line count mismatch).
    pub fn restore_state(&mut self, st: &CacheState) {
        assert_eq!(
            st.lines.len(),
            self.lines.len(),
            "cache state captured from a different geometry"
        );
        for (l, s) in self.lines.iter_mut().zip(&st.lines) {
            *l = Line { valid: s.valid, dirty: s.dirty, tag: s.tag, lru: s.lru };
        }
        self.tick = st.tick;
        self.stats = st.stats;
    }

    /// Folds every state bit that affects future behaviour into `mix`
    /// (state fingerprints).
    pub fn fold_state(&self, mix: &mut dyn FnMut(u64)) {
        mix(self.tick);
        for l in &self.lines {
            mix(u64::from(l.valid) | u64::from(l.dirty) << 1 | (l.tag as u64) << 2);
            mix(l.lru);
        }
    }

    /// Invalidates everything (used between experiment runs).
    pub fn flush(&mut self) {
        self.lines.fill(Line::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::kb8(1).num_sets(), 512);
        assert_eq!(CacheConfig::kb8(2).num_sets(), 256);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn bad_geometry_panics() {
        CacheConfig { size_bytes: 48, line_bytes: 16, ways: 9 }.num_sets();
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(CacheConfig::kb8(1));
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x104, false).hit, "same 16B line");
        assert!(!c.access(0x110, false).hit, "next line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = Cache::new(CacheConfig::kb8(1));
        // Two addresses 8KB apart map to the same set in a direct-mapped 8KB cache.
        assert!(!c.access(0x0, false).hit);
        assert!(!c.access(0x2000, false).hit);
        assert!(!c.access(0x0, false).hit, "conflict evicted it");
    }

    #[test]
    fn two_way_avoids_simple_conflict() {
        let mut c = Cache::new(CacheConfig::kb8(2));
        assert!(!c.access(0x0, false).hit);
        assert!(!c.access(0x2000, false).hit);
        assert!(c.access(0x0, false).hit, "2-way keeps both");
        assert!(c.access(0x2000, false).hit);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Cache::new(CacheConfig::kb8(2));
        c.access(0x0, false); // way A
        c.access(0x2000, false); // way B
        c.access(0x0, false); // A most recent
        c.access(0x4000, false); // evicts B
        assert!(c.access(0x0, false).hit);
        assert!(!c.access(0x2000, false).hit);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = Cache::new(CacheConfig::kb8(1));
        c.access(0x0, true);
        let a = c.access(0x2000, false);
        assert!(a.writeback, "dirty victim must write back");
        assert_eq!(c.stats().writebacks, 1);
        // Clean eviction: no writeback.
        let b = c.access(0x4000, false);
        assert!(!b.writeback);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = Cache::new(CacheConfig::kb8(1));
        c.access(0x0, false);
        c.access(0x0, true);
        assert!(c.access(0x2000, false).writeback);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = Cache::new(CacheConfig::kb8(2));
        c.access(0x0, false);
        c.flush();
        assert!(!c.access(0x0, false).hit);
    }

    #[test]
    fn capture_restore_replays_identically() {
        let mut a = Cache::new(CacheConfig::kb8(2));
        a.access(0x0, true);
        a.access(0x2000, false);
        a.access(0x0, false);
        let st = a.capture_state();

        let mut b = Cache::new(CacheConfig::kb8(2));
        b.restore_state(&st);
        // Same future: the next conflicting access must pick the same
        // victim and report the same write-back on both caches.
        let ra = a.access(0x4000, false);
        let rb = b.access(0x4000, false);
        assert_eq!(ra, rb);
        assert_eq!(a.capture_state(), b.capture_state());
    }

    #[test]
    #[should_panic(expected = "different geometry")]
    fn restore_rejects_wrong_geometry() {
        let small = CacheConfig { size_bytes: 4 * 1024, line_bytes: 16, ways: 1 };
        let st = Cache::new(small).capture_state();
        Cache::new(CacheConfig::kb8(1)).restore_state(&st);
    }

    /// Satellite regression: the old victim ranking computed `l.lru + 1`,
    /// which overflows once a stamp reaches `u64::MAX` (tick wraparound).
    /// The explicit valid/invalid split must survive saturated stamps and
    /// still evict the least-recently-used valid line.
    #[test]
    fn eviction_order_survives_tick_wraparound() {
        let mut c = Cache::new(CacheConfig::kb8(2));
        c.access(0x0, false); // way A
        c.access(0x2000, true); // way B (dirty)
                                // Force the LRU clock to the end of its range: way A re-touched at
                                // a saturated stamp, so way B is now strictly least recent.
        let mut st = c.capture_state();
        st.tick = u64::MAX - 10;
        st.lines.iter_mut().filter(|l| l.valid && l.tag == 0).for_each(|l| l.lru = u64::MAX);
        c.restore_state(&st);
        let a = c.access(0x4000, false);
        assert!(!a.hit);
        assert!(a.writeback, "dirty way B must be the victim, not saturated way A");
        assert!(c.access(0x0, false).hit, "way A (lru = u64::MAX) survived");
        assert!(!c.access(0x2000, false).hit, "way B was evicted");
    }

    #[test]
    fn invalid_way_claimed_before_any_eviction() {
        let mut c = Cache::new(CacheConfig::kb8(2));
        c.access(0x0, true); // one valid dirty line; second way still invalid
        let a = c.access(0x2000, false);
        assert!(!a.hit);
        assert!(!a.writeback, "invalid way must be filled before evicting the dirty line");
        assert!(c.access(0x0, false).hit);
    }

    #[test]
    fn miss_rate() {
        let mut c = Cache::new(CacheConfig::kb8(1));
        c.access(0x0, false);
        c.access(0x0, false);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }
}
