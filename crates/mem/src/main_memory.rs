//! Flat word-addressed main memory with one parity tag per word.

/// Words per dirty-tracking page. Must match the snapshot crate's page size
/// (`argus_snapshot::PAGE_WORDS`, const-asserted there) so a dirty page maps
/// 1:1 onto a snapshot page.
pub const DIRTY_PAGE_WORDS: usize = 1024;

/// Main memory: a flat array of 32-bit payload words, each with a parity
/// tag bit (the "assuming ECC is not already present" EDC of §3.4).
///
/// Addresses are byte addresses; accesses are word-granular (the load/store
/// unit performs sub-word merging). Out-of-range accesses are reported as
/// errors so wild addresses from fault injection never abort a campaign.
///
/// Every mutation stamps the containing [`DIRTY_PAGE_WORDS`]-word page with a
/// monotonically increasing generation so a snapshot restore can rewrite only
/// pages touched since the last restore. The stamps are instrumentation
/// metadata — like the predecode memo, they are excluded from architectural
/// identity (`state_digest`/`state_fingerprint` never read them).
#[derive(Debug, Clone)]
pub struct MainMemory {
    words: Vec<u32>,
    tags: Vec<bool>,
    size_bytes: u32,
    /// Current write generation; stamps start at 1 so generation 0 means
    /// "never written since allocation".
    generation: u64,
    /// Per-page generation of the most recent write (one entry per
    /// `DIRTY_PAGE_WORDS` words, last page possibly partial).
    page_gen: Vec<u64>,
    /// Cached per-page payload hash ([`MainMemory::words_digest`] terms);
    /// valid only where `page_hash_gen` is non-zero and no write has
    /// landed since that stamp.
    page_hash: Vec<u64>,
    /// Generation at which each `page_hash` entry was computed (0 = never).
    page_hash_gen: Vec<u64>,
}

/// Error for accesses beyond the configured memory size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfRangeError {
    /// The offending byte address.
    pub addr: u32,
    /// Configured memory size in bytes.
    pub size: u32,
}

impl std::fmt::Display for OutOfRangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "address {:#010x} outside memory of {} bytes", self.addr, self.size)
    }
}

impl std::error::Error for OutOfRangeError {}

impl MainMemory {
    /// Allocates `size_bytes` of zeroed memory (rounded up to a whole word).
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero.
    pub fn new(size_bytes: u32) -> Self {
        assert!(size_bytes > 0, "memory size must be positive");
        let words = size_bytes.div_ceil(4) as usize;
        let pages = words.div_ceil(DIRTY_PAGE_WORDS);
        Self {
            words: vec![0; words],
            tags: vec![false; words],
            size_bytes,
            generation: 1,
            page_gen: vec![0; pages],
            page_hash: vec![0; pages],
            page_hash_gen: vec![0; pages],
        }
    }

    /// Memory size in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.size_bytes
    }

    fn index(&self, addr: u32) -> Result<usize, OutOfRangeError> {
        if addr >= self.size_bytes {
            Err(OutOfRangeError { addr, size: self.size_bytes })
        } else {
            Ok((addr / 4) as usize)
        }
    }

    /// Reads the payload word and tag containing byte address `addr`.
    ///
    /// # Errors
    ///
    /// Fails when `addr` is outside memory.
    pub fn read(&self, addr: u32) -> Result<(u32, bool), OutOfRangeError> {
        let i = self.index(addr)?;
        Ok((self.words[i], self.tags[i]))
    }

    /// Writes the payload word and tag containing byte address `addr`.
    ///
    /// # Errors
    ///
    /// Fails when `addr` is outside memory.
    pub fn write(&mut self, addr: u32, payload: u32, tag: bool) -> Result<(), OutOfRangeError> {
        let i = self.index(addr)?;
        self.words[i] = payload;
        self.tags[i] = tag;
        self.page_gen[i / DIRTY_PAGE_WORDS] = self.generation;
        Ok(())
    }

    /// Bulk-loads raw words starting at byte address `base` (used by the
    /// program loader). Tags are set to the plain parity of each word.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit.
    pub fn load_image(&mut self, base: u32, words: &[u32]) {
        for (k, &w) in words.iter().enumerate() {
            let addr = base + 4 * k as u32;
            let (p, t) = crate::protect::encode_plain(w);
            self.write(addr, p, t)
                .unwrap_or_else(|e| panic!("program image overflows memory: {e}"));
        }
    }

    /// Snapshot of all payload words (for golden-run comparison).
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Snapshot of all parity tags (parallel to [`MainMemory::words`]).
    pub fn tags(&self) -> &[bool] {
        &self.tags
    }

    /// Overwrites a contiguous run of words and tags starting at word index
    /// `word_base` (page-wise snapshot restore; `words` and `tags` must be
    /// the same length).
    ///
    /// # Panics
    ///
    /// Panics if the run does not fit in memory or the slices disagree on
    /// length.
    pub fn restore_words(&mut self, word_base: usize, words: &[u32], tags: &[bool]) {
        assert_eq!(words.len(), tags.len(), "payload/tag runs must be parallel");
        let end = word_base + words.len();
        assert!(end <= self.words.len(), "restore run {word_base}..{end} outside memory");
        self.words[word_base..end].copy_from_slice(words);
        self.tags[word_base..end].copy_from_slice(tags);
        if !words.is_empty() {
            for p in word_base / DIRTY_PAGE_WORDS..=(end - 1) / DIRTY_PAGE_WORDS {
                self.page_gen[p] = self.generation;
            }
        }
    }

    /// Advances the write generation and returns the new value. Pages written
    /// at or after the returned generation satisfy
    /// [`MainMemory::page_dirty_since`]; pages untouched since the call do
    /// not. Typically called right after a snapshot restore so the next
    /// restore knows which pages diverged.
    pub fn advance_generation(&mut self) -> u64 {
        self.generation += 1;
        self.generation
    }

    /// Whether page `page` has been written at or after generation `since`.
    /// Out-of-range pages conservatively report dirty.
    pub fn page_dirty_since(&self, page: usize, since: u64) -> bool {
        self.page_gen.get(page).is_none_or(|&g| g >= since)
    }

    /// Number of dirty-tracking pages ([`DIRTY_PAGE_WORDS`] words each, last
    /// page possibly partial).
    pub fn page_count(&self) -> usize {
        self.page_gen.len()
    }

    /// FNV-1a over the page index and the page's payload words.
    fn hash_page(&self, page: usize) -> u64 {
        let start = page * DIRTY_PAGE_WORDS;
        let end = (start + DIRTY_PAGE_WORDS).min(self.words.len());
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        h = (h ^ page as u64).wrapping_mul(0x0000_0100_0000_01B3);
        for &w in &self.words[start..end] {
            h = (h ^ w as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Digest of the payload words: the wrapping sum of per-page hashes
    /// (each over the page index and its words). Page-combinable by
    /// construction, so [`MainMemory::words_digest_cached`] can maintain
    /// it incrementally from the dirty-page stamps; this entry point is
    /// the pure definition the cached one must agree with.
    pub fn words_digest(&self) -> u64 {
        (0..self.page_gen.len()).fold(0u64, |acc, p| acc.wrapping_add(self.hash_page(p)))
    }

    /// [`MainMemory::words_digest`] served from the per-page hash cache:
    /// only pages written since their hash was last computed are rehashed.
    /// Advances the write generation so later writes invalidate exactly
    /// the pages they touch.
    pub fn words_digest_cached(&mut self) -> u64 {
        let g = self.advance_generation();
        let mut acc = 0u64;
        for p in 0..self.page_gen.len() {
            if self.page_hash_gen[p] == 0 || self.page_gen[p] >= self.page_hash_gen[p] {
                self.page_hash[p] = self.hash_page(p);
                self.page_hash_gen[p] = g;
            }
            acc = acc.wrapping_add(self.page_hash[p]);
        }
        acc
    }

    /// Initializes every word with the address-embedded encoding of zero
    /// (`payload = 0 ⊕ A = A`, tag = parity(0) = false) — factory-valid
    /// EDC contents for an Argus-mode memory.
    pub fn fill_protected_zero(&mut self) {
        for (i, w) in self.words.iter_mut().enumerate() {
            *w = 4 * i as u32;
        }
        self.tags.fill(false);
        let generation = self.generation;
        self.page_gen.fill(generation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = MainMemory::new(1024);
        m.write(0x100, 0xABCD_1234, true).unwrap();
        assert_eq!(m.read(0x100).unwrap(), (0xABCD_1234, true));
        assert_eq!(m.read(0x104).unwrap(), (0, false));
    }

    #[test]
    fn subword_addresses_hit_same_word() {
        let mut m = MainMemory::new(64);
        m.write(0x10, 7, false).unwrap();
        for a in 0x10..0x14 {
            assert_eq!(m.read(a).unwrap().0, 7);
        }
    }

    #[test]
    fn out_of_range_reported() {
        let m = MainMemory::new(64);
        let e = m.read(64).unwrap_err();
        assert_eq!(e.addr, 64);
        assert!(e.to_string().contains("outside memory"));
    }

    #[test]
    fn load_image_sets_parity_tags() {
        let mut m = MainMemory::new(64);
        m.load_image(8, &[0b111, 0b11]);
        let (w0, t0) = m.read(8).unwrap();
        let (w1, t1) = m.read(12).unwrap();
        assert_eq!((w0, t0), (0b111, true));
        assert_eq!((w1, t1), (0b11, false));
    }

    #[test]
    #[should_panic(expected = "overflows memory")]
    fn load_image_overflow_panics() {
        MainMemory::new(8).load_image(4, &[1, 2, 3]);
    }

    #[test]
    fn size_rounds_up_to_word() {
        let m = MainMemory::new(5);
        assert_eq!(m.words().len(), 2);
    }

    #[test]
    fn restore_words_roundtrip() {
        let mut a = MainMemory::new(64);
        a.write(0x10, 0xDEAD, true).unwrap();
        a.write(0x14, 0xBEEF, false).unwrap();
        let mut b = MainMemory::new(64);
        b.restore_words(0, a.words(), a.tags());
        assert_eq!(b.read(0x10).unwrap(), (0xDEAD, true));
        assert_eq!(b.read(0x14).unwrap(), (0xBEEF, false));
        assert_eq!(a.words(), b.words());
        assert_eq!(a.tags(), b.tags());
    }

    #[test]
    #[should_panic(expected = "outside memory")]
    fn restore_words_rejects_overflow() {
        MainMemory::new(8).restore_words(1, &[1, 2], &[false, false]);
    }

    #[test]
    fn fresh_memory_has_no_dirty_pages_after_advance() {
        let mut m = MainMemory::new(4 * DIRTY_PAGE_WORDS as u32 * 3);
        assert_eq!(m.page_count(), 3);
        let g = m.advance_generation();
        for p in 0..m.page_count() {
            assert!(!m.page_dirty_since(p, g));
        }
    }

    #[test]
    fn write_dirties_only_containing_page() {
        let mut m = MainMemory::new(4 * DIRTY_PAGE_WORDS as u32 * 3);
        let g = m.advance_generation();
        m.write(4 * DIRTY_PAGE_WORDS as u32, 7, false).unwrap(); // first word of page 1
        assert!(!m.page_dirty_since(0, g));
        assert!(m.page_dirty_since(1, g));
        assert!(!m.page_dirty_since(2, g));
    }

    #[test]
    fn restore_words_dirties_spanned_pages() {
        let mut m = MainMemory::new(4 * DIRTY_PAGE_WORDS as u32 * 4);
        let g = m.advance_generation();
        // Run straddling the page 1 / page 2 boundary.
        let run = vec![1u32; DIRTY_PAGE_WORDS];
        let tags = vec![false; DIRTY_PAGE_WORDS];
        m.restore_words(DIRTY_PAGE_WORDS + DIRTY_PAGE_WORDS / 2, &run, &tags);
        assert!(!m.page_dirty_since(0, g));
        assert!(m.page_dirty_since(1, g));
        assert!(m.page_dirty_since(2, g));
        assert!(!m.page_dirty_since(3, g));
    }

    #[test]
    fn generation_separates_restore_rounds() {
        let mut m = MainMemory::new(4 * DIRTY_PAGE_WORDS as u32 * 2);
        let g1 = m.advance_generation();
        m.write(0, 1, false).unwrap();
        // Page 0 dirty relative to g1 but clean relative to a later round.
        assert!(m.page_dirty_since(0, g1));
        let g2 = m.advance_generation();
        assert!(!m.page_dirty_since(0, g2));
        assert!(m.page_dirty_since(0, g1));
    }

    #[test]
    fn out_of_range_page_reports_dirty() {
        let m = MainMemory::new(64);
        assert!(m.page_dirty_since(usize::MAX, 1));
    }

    #[test]
    fn cached_words_digest_matches_pure_definition() {
        let mut m = MainMemory::new(4 * DIRTY_PAGE_WORDS as u32 * 3 + 8);
        assert_eq!(m.words_digest_cached(), m.words_digest());
        m.write(0, 0xDEAD, true).unwrap();
        m.write(4 * DIRTY_PAGE_WORDS as u32 * 2, 0xBEEF, false).unwrap();
        assert_eq!(m.words_digest_cached(), m.words_digest());
        // Write after a cached query must invalidate exactly that page.
        m.write(4, 7, false).unwrap();
        assert_eq!(m.words_digest_cached(), m.words_digest());
        m.fill_protected_zero();
        assert_eq!(m.words_digest_cached(), m.words_digest());
    }

    #[test]
    fn words_digest_distinguishes_page_position() {
        let mut a = MainMemory::new(4 * DIRTY_PAGE_WORDS as u32 * 2);
        let mut b = MainMemory::new(4 * DIRTY_PAGE_WORDS as u32 * 2);
        a.write(0, 1, false).unwrap();
        b.write(4 * DIRTY_PAGE_WORDS as u32, 1, false).unwrap();
        assert_ne!(a.words_digest(), b.words_digest());
    }

    #[test]
    fn restore_words_invalidates_cached_page_hash() {
        let mut m = MainMemory::new(4 * DIRTY_PAGE_WORDS as u32 * 2);
        let d0 = m.words_digest_cached();
        let run = vec![9u32; DIRTY_PAGE_WORDS];
        let tags = vec![false; DIRTY_PAGE_WORDS];
        m.restore_words(DIRTY_PAGE_WORDS, &run, &tags);
        assert_ne!(m.words_digest_cached(), d0);
        assert_eq!(m.words_digest_cached(), m.words_digest());
    }

    #[test]
    fn fill_protected_zero_dirties_everything() {
        let mut m = MainMemory::new(4 * DIRTY_PAGE_WORDS as u32 * 2);
        let g = m.advance_generation();
        m.fill_protected_zero();
        assert!(m.page_dirty_since(0, g));
        assert!(m.page_dirty_since(1, g));
    }
}
