//! # argus-mem — memory hierarchy substrate
//!
//! The OR1200-like memory system the paper's evaluation assumes: separate
//! 8KB instruction and data caches (direct-mapped or 2-way LRU), a
//! write-back write-allocate blocking data cache, 1-cycle hits and 20-cycle
//! misses, in front of a flat main memory.
//!
//! The crate also implements the Argus-1 memory protection codec
//! ([`protect`]): each data word is stored as `D XOR A` with a parity bit
//! computed over `D`, which detects both data corruption and wrong-word
//! accesses (§3.4). The instruction side is deliberately unprotected —
//! instruction errors surface as DCS mismatches.
//!
//! Caches are modeled as tag/state arrays (timing filters); data always
//! lives in [`MainMemory`], which is exact for a single-core write-back
//! hierarchy.
//!
//! # Examples
//!
//! ```
//! use argus_mem::{MemConfig, MemorySystem};
//! let mut ms = MemorySystem::new(MemConfig::default());
//! let c1 = ms.store_word(0x1000, 42, false);
//! let (v, _tag, c2) = ms.load_word_ok(0x1000);
//! assert_eq!(v, 42);
//! assert!(c1 >= 1 && c2 >= 1);
//! ```

pub mod cache;
pub mod ecc;
pub mod main_memory;
pub mod protect;
pub mod system;

pub use cache::{Cache, CacheConfig, CacheState, CacheStats, LineState};
pub use main_memory::{MainMemory, DIRTY_PAGE_WORDS};
pub use system::{CachesState, MemConfig, MemorySystem};
