//! SEC-DED ECC for memory words (§4.2 extension).
//!
//! The paper notes that the arbitrarily long detection latency of
//! EDC-protected memory "can be circumvented by using error correcting
//! codes (ECC) instead of simple error detecting codes (EDC)". This module
//! implements the standard Hamming(39,32) + overall-parity SEC-DED code:
//! any single-bit error (data or check bits) is *corrected*, any double-bit
//! error is *detected*.
//!
//! Check bits are the classic Hamming construction: check bit `i` covers
//! the codeword positions whose index has bit `i` set; an extra overall
//! parity bit distinguishes single (odd syndrome weight ⇒ correctable)
//! from double (even) errors.

use argus_sim::bits::parity32;

/// Number of Hamming check bits for 32 data bits.
const HAMMING_BITS: u32 = 6;

/// Decode outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccOutcome {
    /// No error.
    Clean,
    /// A single data-bit error was corrected; the payload carries the
    /// corrected word and the flipped bit position.
    CorrectedData {
        /// The repaired word.
        word: u32,
        /// Which data bit had flipped.
        bit: u32,
    },
    /// A single check-bit error was corrected (data was fine).
    CorrectedCheck,
    /// An uncorrectable (double-bit) error was detected.
    DoubleError,
}

/// Maps data bit `d` (0..32) to its codeword position: positions that are
/// powers of two hold check bits, everything else holds data, in order.
fn data_position(d: u32) -> u32 {
    // Codeword positions start at 1; skip 1, 2, 4, 8, 16, 32.
    let mut pos: u32 = 1;
    let mut seen = 0;
    loop {
        if !pos.is_power_of_two() {
            if seen == d {
                return pos;
            }
            seen += 1;
        }
        pos += 1;
    }
}

fn hamming_bits(word: u32) -> u8 {
    let mut check = 0u8;
    for c in 0..HAMMING_BITS {
        let mut p = false;
        for d in 0..32 {
            if data_position(d) & (1 << c) != 0 && (word >> d) & 1 == 1 {
                p = !p;
            }
        }
        if p {
            check |= 1 << c;
        }
    }
    check
}

/// Computes the 6 Hamming check bits + 1 overall parity bit for `word`.
/// Bit layout of the return value: `[6]` overall parity, `[5:0]` Hamming.
/// The overall bit makes the parity of the *whole stored codeword*
/// (data + Hamming + overall) even.
pub fn encode(word: u32) -> u8 {
    let check = hamming_bits(word);
    let overall = parity32(word) ^ (check.count_ones() % 2 == 1);
    check | ((overall as u8) << HAMMING_BITS)
}

/// Decodes a stored `(word, check)` pair, correcting single-bit errors.
pub fn decode(word: u32, check: u8) -> EccOutcome {
    let stored_hamming = check & 0x3F;
    let syndrome = (hamming_bits(word) ^ stored_hamming) as u32;
    // Parity of the received codeword as a whole: even (false) when clean
    // or after a double error, odd (true) for any single error.
    let total_odd = parity32(word) ^ (check.count_ones() % 2 == 1);

    match (syndrome, total_odd) {
        (0, false) => EccOutcome::Clean,
        (0, true) => EccOutcome::CorrectedCheck, // the overall bit itself flipped
        (s, true) => {
            // Single error at codeword position s: a Hamming bit if s is a
            // power of two, otherwise the data bit stored at position s.
            if s.is_power_of_two() {
                EccOutcome::CorrectedCheck
            } else {
                for d in 0..32 {
                    if data_position(d) == s {
                        return EccOutcome::CorrectedData { word: word ^ (1 << d), bit: d };
                    }
                }
                // A syndrome pointing outside the codeword: uncorrectable.
                EccOutcome::DoubleError
            }
        }
        (_, false) => EccOutcome::DoubleError,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clean_words_decode_clean() {
        for w in [0u32, 1, 0xDEAD_BEEF, u32::MAX, 0x8000_0001] {
            assert_eq!(decode(w, encode(w)), EccOutcome::Clean);
        }
    }

    #[test]
    fn every_single_data_bit_error_is_corrected() {
        let w = 0xCAFE_F00Du32;
        let c = encode(w);
        for b in 0..32 {
            match decode(w ^ (1 << b), c) {
                EccOutcome::CorrectedData { word, bit } => {
                    assert_eq!(word, w, "bit {b} miscorrected");
                    assert_eq!(bit, b);
                }
                other => panic!("bit {b}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_check_bit_error_is_corrected() {
        let w = 0x1234_5678u32;
        let c = encode(w);
        for b in 0..7 {
            assert_eq!(decode(w, c ^ (1 << b)), EccOutcome::CorrectedCheck, "check bit {b}");
        }
    }

    #[test]
    fn double_data_errors_are_detected_not_miscorrected() {
        let w = 0x0F0F_0F0Fu32;
        let c = encode(w);
        for b1 in 0..32u32 {
            for b2 in (b1 + 1)..32 {
                let bad = w ^ (1 << b1) ^ (1 << b2);
                assert_eq!(
                    decode(bad, c),
                    EccOutcome::DoubleError,
                    "bits {b1},{b2} slipped through"
                );
            }
        }
    }

    #[test]
    fn data_positions_are_distinct_and_skip_powers_of_two() {
        let mut seen = std::collections::HashSet::new();
        for d in 0..32 {
            let p = data_position(d);
            assert!(!p.is_power_of_two(), "data bit {d} landed on a check position");
            assert!(seen.insert(p), "duplicate position {p}");
        }
        assert!(seen.iter().all(|&p| p <= 39));
    }

    proptest! {
        #[test]
        fn roundtrip_any(w in any::<u32>()) {
            prop_assert_eq!(decode(w, encode(w)), EccOutcome::Clean);
        }

        #[test]
        fn single_error_corrected_any(w in any::<u32>(), b in 0u32..32) {
            match decode(w ^ (1 << b), encode(w)) {
                EccOutcome::CorrectedData { word, bit } => {
                    prop_assert_eq!(word, w);
                    prop_assert_eq!(bit, b);
                }
                other => prop_assert!(false, "got {:?}", other),
            }
        }

        #[test]
        fn data_plus_check_error_detected(w in any::<u32>(), db in 0u32..32, cb in 0u32..7) {
            // One data bit and one check bit: still a double error — must
            // never silently pass as Clean or miscorrect to a wrong word.
            let out = decode(w ^ (1 << db), encode(w) ^ (1 << cb));
            match out {
                EccOutcome::Clean => prop_assert!(false, "double error decoded clean"),
                EccOutcome::CorrectedData { word, .. } => prop_assert_eq!(
                    word, w, "double error miscorrected to a different word"
                ),
                _ => {}
            }
        }
    }
}
