//! The assembled memory system: I-cache + D-cache + main memory.

use crate::cache::{Cache, CacheConfig, CacheState, CacheStats};
use crate::main_memory::{MainMemory, OutOfRangeError};

/// Snapshot of both cache arrays (main memory is captured separately, as
/// content-addressed pages, by `argus-snapshot`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachesState {
    /// Instruction-cache state.
    pub icache: CacheState,
    /// Data-cache state.
    pub dcache: CacheState,
}

/// Memory system configuration (defaults match the paper's §4.4 setup:
/// 8KB caches, 1-cycle hits, 20-cycle misses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Instruction cache geometry.
    pub icache: CacheConfig,
    /// Data cache geometry.
    pub dcache: CacheConfig,
    /// Main memory size in bytes.
    pub mem_bytes: u32,
    /// Cycles for a cache hit.
    pub hit_cycles: u32,
    /// Additional cycles for a miss.
    pub miss_penalty: u32,
    /// Additional cycles to write back a dirty victim (the paper's flat
    /// "misses take 20 cycles" model corresponds to 0).
    pub writeback_penalty: u32,
}

impl Default for MemConfig {
    fn default() -> Self {
        Self {
            icache: CacheConfig::kb8(1),
            dcache: CacheConfig::kb8(1),
            mem_bytes: 1 << 20,
            hit_cycles: 1,
            miss_penalty: 20,
            writeback_penalty: 0,
        }
    }
}

impl MemConfig {
    /// Same configuration but with 2-way set-associative caches.
    pub fn two_way(mut self) -> Self {
        self.icache = CacheConfig::kb8(2);
        self.dcache = CacheConfig::kb8(2);
        self
    }
}

/// I-cache, D-cache and main memory with simple blocking timing.
///
/// Word payloads and parity tags are stored in [`MainMemory`]; the caches
/// provide timing only. All methods return the access latency in cycles.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: MemConfig,
    icache: Cache,
    dcache: Cache,
    mem: MainMemory,
}

impl MemorySystem {
    /// Builds the memory system.
    pub fn new(cfg: MemConfig) -> Self {
        Self {
            cfg,
            icache: Cache::new(cfg.icache),
            dcache: Cache::new(cfg.dcache),
            mem: MainMemory::new(cfg.mem_bytes),
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> MemConfig {
        self.cfg
    }

    /// Direct access to main memory (program loading, golden snapshots).
    pub fn memory(&self) -> &MainMemory {
        &self.mem
    }

    /// Mutable access to main memory (program loading).
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.mem
    }

    /// Instruction-cache statistics.
    pub fn icache_stats(&self) -> CacheStats {
        self.icache.stats()
    }

    /// Data-cache statistics.
    pub fn dcache_stats(&self) -> CacheStats {
        self.dcache.stats()
    }

    fn latency(&self, hit: bool, writeback: bool) -> u32 {
        let mut c = self.cfg.hit_cycles;
        if !hit {
            c += self.cfg.miss_penalty;
        }
        if writeback {
            c += self.cfg.writeback_penalty;
        }
        c
    }

    /// Fetches the instruction word at `pc`. Returns `(word, cycles)`.
    /// Out-of-range fetches return an all-ones word (which decodes as
    /// invalid → NOP) so wild PCs from fault injection stay simulable.
    pub fn fetch(&mut self, pc: u32) -> (u32, u32) {
        let a = self.icache.access(pc, false);
        let cycles = self.latency(a.hit, false);
        match self.mem.read(pc) {
            Ok((w, _)) => (w, cycles),
            Err(_) => (u32::MAX, cycles),
        }
    }

    /// Loads the payload word and tag containing byte address `addr`.
    /// Returns `(payload, tag, cycles)`.
    ///
    /// # Errors
    ///
    /// Fails when `addr` is outside main memory (the cache state is still
    /// updated, mirroring a bus error after tag lookup).
    pub fn load_word(&mut self, addr: u32) -> Result<(u32, bool, u32), OutOfRangeError> {
        let a = self.dcache.access(addr, false);
        let (p, t) = self.mem.read(addr)?;
        Ok((p, t, self.latency(a.hit, a.writeback)))
    }

    /// Convenience for `load_word` that also panics on out-of-range, for
    /// doc examples and tests with known-good addresses.
    pub fn load_word_ok(&mut self, addr: u32) -> (u32, bool, u32) {
        self.load_word(addr).expect("address in range")
    }

    /// Stores a payload word and tag at byte address `addr`. Returns the
    /// latency in cycles.
    ///
    /// # Errors
    ///
    /// Fails when `addr` is outside main memory.
    pub fn store_word_tagged(
        &mut self,
        addr: u32,
        payload: u32,
        tag: bool,
    ) -> Result<u32, OutOfRangeError> {
        let a = self.dcache.access(addr, true);
        self.mem.write(addr, payload, tag)?;
        Ok(self.latency(a.hit, a.writeback))
    }

    /// Unprotected store of a plain value (tag = parity of the value).
    /// Panics on out-of-range; intended for setup code and examples.
    pub fn store_word(&mut self, addr: u32, value: u32, _protected: bool) -> u32 {
        let (p, t) = crate::protect::encode_plain(value);
        self.store_word_tagged(addr, p, t).expect("address in range")
    }

    /// Captures both cache arrays for snapshot/restore.
    pub fn capture_caches(&self) -> CachesState {
        CachesState { icache: self.icache.capture_state(), dcache: self.dcache.capture_state() }
    }

    /// Restores cache state captured by [`MemorySystem::capture_caches`].
    ///
    /// # Panics
    ///
    /// Panics if either cache's geometry differs from the captured one.
    pub fn restore_caches(&mut self, st: &CachesState) {
        self.icache.restore_state(&st.icache);
        self.dcache.restore_state(&st.dcache);
    }

    /// Folds the timing-relevant state of both caches into `mix`.
    pub fn fold_cache_state(&self, mix: &mut dyn FnMut(u64)) {
        self.icache.fold_state(mix);
        self.dcache.fold_state(mix);
    }

    /// Invalidates both caches and resets nothing else (between runs on the
    /// same loaded image).
    pub fn flush_caches(&mut self) {
        self.icache.flush();
        self.dcache.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_timing_and_locality() {
        let mut ms = MemorySystem::new(MemConfig::default());
        ms.memory_mut().load_image(0, &[0x11, 0x22, 0x33, 0x44, 0x55]);
        let (w0, c0) = ms.fetch(0);
        assert_eq!(w0, 0x11);
        assert_eq!(c0, 21, "cold miss: 1 + 20");
        let (w1, c1) = ms.fetch(4);
        assert_eq!(w1, 0x22);
        assert_eq!(c1, 1, "same line hits");
        let (_, c4) = ms.fetch(16);
        assert_eq!(c4, 21, "next line misses");
    }

    #[test]
    fn load_store_roundtrip_with_timing() {
        let mut ms = MemorySystem::new(MemConfig::default());
        let c = ms.store_word_tagged(0x200, 99, true).unwrap();
        assert_eq!(c, 21, "write-allocate miss");
        let (p, t, c2) = ms.load_word(0x200).unwrap();
        assert_eq!((p, t), (99, true));
        assert_eq!(c2, 1);
    }

    #[test]
    fn dirty_writeback_penalty_configurable() {
        let cfg = MemConfig { writeback_penalty: 20, ..MemConfig::default() };
        let mut ms = MemorySystem::new(cfg);
        ms.store_word_tagged(0x0, 1, false).unwrap();
        // Conflicting line (8KB apart, direct-mapped) evicts the dirty line.
        let (_, _, c) = ms.load_word(0x2000).unwrap();
        assert_eq!(c, 41, "1 + 20 miss + 20 writeback");
    }

    #[test]
    fn out_of_range_load_errors() {
        let mut ms = MemorySystem::new(MemConfig { mem_bytes: 64, ..MemConfig::default() });
        assert!(ms.load_word(0x1000).is_err());
    }

    #[test]
    fn out_of_range_fetch_yields_invalid_word() {
        let mut ms = MemorySystem::new(MemConfig { mem_bytes: 64, ..MemConfig::default() });
        let (w, _) = ms.fetch(0x8000);
        assert_eq!(w, u32::MAX);
    }

    #[test]
    fn flush_restores_cold_state() {
        let mut ms = MemorySystem::new(MemConfig::default());
        ms.fetch(0);
        ms.flush_caches();
        let (_, c) = ms.fetch(0);
        assert_eq!(c, 21);
    }

    #[test]
    fn stats_exposed() {
        let mut ms = MemorySystem::new(MemConfig::default());
        ms.fetch(0);
        ms.load_word(0).unwrap();
        assert_eq!(ms.icache_stats().accesses, 1);
        assert_eq!(ms.dcache_stats().accesses, 1);
    }

    #[test]
    fn two_way_config() {
        let cfg = MemConfig::default().two_way();
        assert_eq!(cfg.icache.ways, 2);
        assert_eq!(cfg.dcache.ways, 2);
        let _ = MemorySystem::new(cfg);
    }
}
