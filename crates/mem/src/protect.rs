//! The Argus-1 memory protection codec (§3.4).
//!
//! To store value `D` at word address `A`, the hardware actually stores
//! `D XOR A` along with one parity bit computed over `D`. A load from `A`
//! XORs the stored payload with `A` to recover `D'` and checks that
//! `parity(D') == stored parity`. A single-bit error in either the stored
//! data *or* the access address (wrong-row selection) makes the recovered
//! value disagree with the parity bit.

use argus_sim::bits::parity32;

/// Encodes a store: returns `(payload, parity_tag)` to place in memory.
///
/// `data_parity` is the parity bit that travelled with `D` through the
/// datapath — Argus-1 does not regenerate it at the memory interface, so a
/// corrupted store-data bus is caught by a later load.
pub fn encode_store(data: u32, addr: u32, data_parity: bool) -> (u32, bool) {
    (data ^ addr, data_parity)
}

/// Decodes a load from word address `addr`: returns `(data, parity_ok)`.
///
/// `parity_ok == false` signals a memory-checker (MFC) error: either the
/// stored word was corrupted, or the access selected the wrong word.
pub fn decode_load(payload: u32, tag: bool, addr: u32) -> (u32, bool) {
    let data = payload ^ addr;
    (data, parity32(data) == tag)
}

/// Unprotected encode (baseline core without Argus): payload is `D`, tag is
/// kept as the data parity so loads remain uniform but is never checked.
pub fn encode_plain(data: u32) -> (u32, bool) {
    (data, parity32(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn error_free_roundtrip() {
        let (p, t) = encode_store(0xDEAD_BEEF, 0x1000, parity32(0xDEAD_BEEF));
        let (d, ok) = decode_load(p, t, 0x1000);
        assert_eq!(d, 0xDEAD_BEEF);
        assert!(ok);
    }

    #[test]
    fn single_bit_data_corruption_detected() {
        let d0 = 0x1234_5678u32;
        let (p, t) = encode_store(d0, 0x40, parity32(d0));
        for b in 0..32 {
            let (_, ok) = decode_load(p ^ (1 << b), t, 0x40);
            assert!(!ok, "flip of stored bit {b} undetected");
        }
    }

    #[test]
    fn wrong_row_access_detected() {
        // Store lands at (or is read from) a different word than intended.
        let d0 = 0xCAFE_F00Du32;
        let a = 0x80u32;
        let (p, t) = encode_store(d0, a, parity32(d0));
        for b in 2..16 {
            let wrong = a ^ (1 << b);
            let (_, ok) = decode_load(p, t, wrong);
            assert!(!ok, "wrong-row bit {b} undetected");
        }
    }

    #[test]
    fn double_bit_data_corruption_escapes_parity() {
        // The parity blind spot the paper blames for most silent
        // corruptions: an even number of flipped bits.
        let d0 = 0x0F0F_0F0Fu32;
        let (p, t) = encode_store(d0, 0x10, parity32(d0));
        let (_, ok) = decode_load(p ^ 0b11, t, 0x10);
        assert!(ok, "double-bit flip must alias (this is the known blind spot)");
    }

    #[test]
    fn corrupted_store_data_bus_detected_on_load() {
        // Parity generated before the bus fault; the stored tag disagrees.
        let d_intended = 0x5555_5555u32;
        let d_on_bus = d_intended ^ (1 << 7);
        let (p, t) = encode_store(d_on_bus, 0x20, parity32(d_intended));
        let (_, ok) = decode_load(p, t, 0x20);
        assert!(!ok);
    }

    proptest! {
        #[test]
        fn roundtrip_any(d in any::<u32>(), a in any::<u32>()) {
            let (p, t) = encode_store(d, a, parity32(d));
            let (out, ok) = decode_load(p, t, a);
            prop_assert_eq!(out, d);
            prop_assert!(ok);
        }

        #[test]
        fn any_single_bit_flip_detected(d in any::<u32>(), a in any::<u32>(), b in 0u32..32) {
            let (p, t) = encode_store(d, a, parity32(d));
            let (_, ok_data) = decode_load(p ^ (1 << b), t, a);
            prop_assert!(!ok_data);
            let (_, ok_tag) = decode_load(p, !t, a);
            prop_assert!(!ok_tag);
        }
    }
}
