//! Width-parametric CRC, the hash behind State History Signatures.
//!
//! Argus-1 updates each SHS with CRC5 over the operation identifier and the
//! operand SHSs (§3.2.2). The checker width is a design parameter in this
//! reproduction so the signature-width ablation (3–8 bits) can quantify the
//! aliasing-vs-cost trade-off the paper describes.

/// A CRC over `width`-bit symbols, producing a `width`-bit signature.
///
/// The polynomial is chosen per width from well-known standards (e.g. the
/// 5-bit variant is CRC-5/USB, `x^5 + x^2 + 1`). Symbols are fed through the
/// shift register one bit at a time, MSB first.
///
/// ```
/// use argus_sim::crc::Crc;
/// let crc = Crc::new(5);
/// let a = crc.update_many(0, &[7, 1]);
/// let b = crc.update_many(0, &[1, 7]);
/// assert_ne!(a, b, "CRC is order sensitive");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Crc {
    width: u32,
    poly: u32,
}

impl Crc {
    /// Creates a CRC for the given signature `width` in bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `3..=8`, the range meaningful for
    /// signature hardware of Argus-1's style.
    pub fn new(width: u32) -> Self {
        let poly = match width {
            3 => 0b011,       // x^3 + x + 1
            4 => 0b0011,      // CRC-4-ITU
            5 => 0b0_0101,    // CRC-5/USB: x^5 + x^2 + 1 (the paper's hash)
            6 => 0b00_0011,   // CRC-6-ITU
            7 => 0b000_1001,  // CRC-7/MMC
            8 => 0b0000_0111, // CRC-8/SMBUS
            _ => panic!("unsupported CRC width {width} (expected 3..=8)"),
        };
        Self { width, poly }
    }

    /// Signature width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Mask covering one signature (`2^width - 1`).
    pub fn mask(&self) -> u32 {
        (1u32 << self.width) - 1
    }

    /// Feeds the low `width` bits of `symbol` into the CRC register `state`,
    /// returning the new register value.
    pub fn update(&self, state: u32, symbol: u32) -> u32 {
        let mut s = state & self.mask();
        let top = 1u32 << (self.width - 1);
        for i in (0..self.width).rev() {
            let inbit = (symbol >> i) & 1;
            let feedback = ((s & top) != 0) as u32 ^ inbit;
            s = (s << 1) & self.mask();
            if feedback != 0 {
                s ^= self.poly;
            }
        }
        s
    }

    /// Feeds a sequence of symbols, starting from `state`.
    pub fn update_many(&self, state: u32, symbols: &[u32]) -> u32 {
        symbols.iter().fold(state, |s, &sym| self.update(s, sym))
    }

    /// Hashes an arbitrary 32-bit word down to a signature by feeding it as
    /// `ceil(32/width)` symbols. Used to derive operation identifiers from
    /// instruction semantic bits (opcode + immediate).
    pub fn fold_word(&self, state: u32, word: u32) -> u32 {
        let mut s = state;
        let mut bits = 32u32;
        let mut w = word;
        while bits > 0 {
            s = self.update(s, w & self.mask());
            w >>= self.width;
            bits = bits.saturating_sub(self.width);
        }
        s
    }
}

/// Streaming CRC-32 (IEEE 802.3, reflected, `0xEDB88320`) over bytes —
/// the integrity check on campaign artifacts (checkpoint and snapshot
/// files), where a torn write or flipped bit must be *detected* on load
/// rather than silently parsed. Unrelated to the signature-width [`Crc`]
/// above, which models checker hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds more bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc ^= u32::from(b);
            for _ in 0..8 {
                crc = (crc >> 1) ^ (0xEDB8_8320 & 0u32.wrapping_sub(crc & 1));
            }
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_widths_construct() {
        for w in 3..=8 {
            let c = Crc::new(w);
            assert_eq!(c.width(), w);
            assert_eq!(c.mask(), (1 << w) - 1);
        }
    }

    #[test]
    #[should_panic(expected = "unsupported CRC width")]
    fn width_out_of_range_panics() {
        Crc::new(9);
    }

    #[test]
    fn update_stays_in_range() {
        let c = Crc::new(5);
        let mut s = 0;
        for i in 0..1000u32 {
            s = c.update(s, i & 31);
            assert!(s < 32);
        }
    }

    #[test]
    fn single_symbol_change_changes_signature() {
        // The core aliasing-resistance property: any single-symbol
        // substitution in a short history perturbs the CRC.
        let c = Crc::new(5);
        let base = c.update_many(0, &[4, 9, 23]);
        for pos in 0..3 {
            for v in 0..32 {
                let mut syms = [4u32, 9, 23];
                if syms[pos] == v {
                    continue;
                }
                syms[pos] = v;
                assert_ne!(c.update_many(0, &syms), base, "alias at pos {pos} v {v}");
            }
        }
    }

    #[test]
    fn order_sensitivity() {
        let c = Crc::new(5);
        assert_ne!(c.update_many(0, &[1, 2]), c.update_many(0, &[2, 1]));
    }

    #[test]
    fn single_symbol_update_is_injective() {
        // With a single symbol, CRC must be a bijection on the symbol space:
        // no two distinct op histories of length one may alias.
        for w in 3..=8 {
            let c = Crc::new(w);
            let seen: HashSet<u32> = (0..(1u32 << w)).map(|v| c.update(0, v)).collect();
            assert_eq!(seen.len(), 1usize << w, "width {w} not injective");
        }
    }

    #[test]
    fn fold_word_differs_for_different_words() {
        let c = Crc::new(5);
        let a = c.fold_word(0, 0x1234_5678);
        let b = c.fold_word(0, 0x1234_5679);
        assert_ne!(a, b);
        assert!(a < 32 && b < 32);
    }

    #[test]
    fn crc32_known_answers() {
        // The IEEE 802.3 check value: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Streaming in pieces matches one-shot.
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finish(), 0xCBF4_3926);
        // Single-bit sensitivity.
        assert_ne!(crc32(b"123456789"), crc32(b"123456788"));
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        // Sanity: hashing 4096 consecutive words should hit every 5-bit
        // bucket a reasonable number of times.
        let c = Crc::new(5);
        let mut buckets = [0u32; 32];
        for i in 0..4096u32 {
            buckets[c.fold_word(0, i) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!(b > 32, "bucket {i} severely underfull: {b}");
        }
    }
}
