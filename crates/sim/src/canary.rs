//! Canary selection for mutation testing of the checkers.
//!
//! A *canary* is a deliberately seeded checker bug, compiled in only under
//! the `canary` cargo feature and activated one at a time via the
//! `ARGUS_CANARY` environment variable. Seeded-bug sites throughout the
//! workspace ask [`enabled`] whether their specific mutation is live;
//! `scripts/canary_matrix.sh` runs a campaign per canary and asserts a
//! named invariant — or campaign divergence — notices the breakage.
//!
//! Without the feature, [`enabled`] is a compile-time constant `false`, so
//! every canary branch folds away and production builds carry zero cost
//! and zero mutated code paths.

#[cfg(feature = "canary")]
mod imp {
    use std::sync::OnceLock;

    static ACTIVE: OnceLock<Option<String>> = OnceLock::new();

    pub fn active() -> Option<&'static str> {
        ACTIVE
            .get_or_init(|| std::env::var("ARGUS_CANARY").ok().filter(|s| !s.is_empty()))
            .as_deref()
    }
}

#[cfg(not(feature = "canary"))]
mod imp {
    #[inline(always)]
    pub fn active() -> Option<&'static str> {
        None
    }
}

/// The canary selected by `ARGUS_CANARY`, if the feature is compiled in
/// and the variable named one (read once per process).
pub fn active() -> Option<&'static str> {
    imp::active()
}

/// Whether the named canary mutation is live in this process.
#[inline(always)]
pub fn enabled(name: &str) -> bool {
    active() == Some(name)
}
