//! # argus-sim — shared simulation primitives
//!
//! Low-level building blocks used throughout the Argus reproduction:
//!
//! * [`bits`] — parity, bit-field manipulation, sign extension.
//! * [`crc`] — width-parametric CRC used for State History Signature (SHS)
//!   updates (the paper uses CRC5).
//! * [`rng`] — small deterministic PRNG (SplitMix64) for reproducible
//!   campaigns and fixed hardware permutations.
//! * [`stats`] — counters and histograms for experiment reporting.
//! * [`fault`] — the fault-injection substrate: named signal *sites* that
//!   components tap every time they drive a value, and a [`fault::FaultInjector`]
//!   that flips bits at a chosen site (transient or permanent), mirroring the
//!   paper's gate-output bit-inversion methodology.
//! * [`supervise`] — supervision primitives for the campaign machinery
//!   itself: panic capture with a quiet hook, and the per-injection
//!   watchdog that turns livelocked runs into `Hung` tallies.
//!
//! # Examples
//!
//! ```
//! use argus_sim::crc::Crc;
//! let crc5 = Crc::new(5);
//! let sig = crc5.update_many(0, &[3, 17, 9]);
//! assert!(sig < 32);
//! ```

pub mod bits;
pub mod bitstream;
pub mod canary;
pub mod crc;
pub mod fault;
pub mod rng;
pub mod stats;
pub mod supervise;
