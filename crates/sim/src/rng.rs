//! Deterministic pseudo-random number generation.
//!
//! Fault-injection campaigns and the fixed "hard-wired" DCS bit permutation
//! must be exactly reproducible across runs, so everything randomized in this
//! workspace flows through [`SplitMix64`] with explicit seeds.

/// SplitMix64: a tiny, fast, high-quality 64-bit PRNG.
///
/// ```
/// use argus_sim::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

/// SplitMix64's output finalizer: a bijective avalanche mix.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives the `stream_id`-th independent substream of `seed`.
    ///
    /// Both inputs are avalanched through the SplitMix64 finalizer before
    /// being combined, so nearby `(seed, stream_id)` pairs (the common case:
    /// consecutive injection indices) land on unrelated state trajectories.
    /// Sharded fault-injection campaigns give every injection its own stream
    /// keyed by the injection index, which makes the result independent of
    /// how injections are distributed across worker threads.
    ///
    /// ```
    /// use argus_sim::rng::SplitMix64;
    /// let mut a = SplitMix64::stream(42, 7);
    /// let mut b = SplitMix64::stream(42, 7);
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// ```
    pub fn stream(seed: u64, stream_id: u64) -> Self {
        // Two rounds of mixing with distinct offsets keep stream 0 distinct
        // from the base generator `new(seed)`.
        let base = mix64(seed);
        let lane = mix64(stream_id ^ 0x6A09_E667_F3BC_C909);
        Self::new(mix64(base.wrapping_add(lane.rotate_left(17))))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)` via rejection-free multiply-shift.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks an index in `[0, weights.len())` with probability proportional
    /// to `weights[i]`. Returns `None` when the total weight is zero or the
    /// slice is empty.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().sum();
        if total.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return None;
        }
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return Some(i);
            }
            x -= w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|&w| w > 0.0)
    }
}

/// Derives a fixed permutation of `0..n` from a seed (used for the DCS
/// bit permutation, which is "hard-wired" in the Argus-1 RTL).
pub fn seeded_permutation(seed: u64, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    SplitMix64::new(seed).shuffle(&mut idx);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let xs: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let ys: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(xs, ys);
    }

    #[test]
    fn streams_are_reproducible() {
        let xs: Vec<u64> = {
            let mut r = SplitMix64::stream(0xA905, 3);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let ys: Vec<u64> = {
            let mut r = SplitMix64::stream(0xA905, 3);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(xs, ys);
    }

    #[test]
    fn streams_are_decorrelated() {
        // Adjacent stream ids (and the base generator) must not share any
        // prefix of outputs, and pairwise outputs should look independent:
        // count bit agreements between streams — they must hover near 50%.
        let sample = |mut r: SplitMix64| -> Vec<u64> { (0..64).map(|_| r.next_u64()).collect() };
        let base = sample(SplitMix64::new(7));
        let s0 = sample(SplitMix64::stream(7, 0));
        let s1 = sample(SplitMix64::stream(7, 1));
        let s2 = sample(SplitMix64::stream(7, 2));
        assert_ne!(base[0], s0[0], "stream 0 must differ from the base generator");
        for (a, b) in [(&s0, &s1), (&s1, &s2), (&s0, &s2)] {
            assert_ne!(a, b);
            let agree: u32 = a.iter().zip(b.iter()).map(|(x, y)| (!(x ^ y)).count_ones()).sum();
            let total = 64 * 64;
            let frac = agree as f64 / total as f64;
            assert!((0.45..0.55).contains(&frac), "bit agreement {frac} not ~0.5");
        }
    }

    #[test]
    fn streams_differ_across_seeds() {
        assert_ne!(SplitMix64::stream(1, 0).next_u64(), SplitMix64::stream(2, 0).next_u64());
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SplitMix64::new(0).below(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut xs: Vec<u32> = (0..100).collect();
        SplitMix64::new(5).shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "shuffle left input unchanged");
    }

    #[test]
    fn seeded_permutation_is_stable() {
        assert_eq!(seeded_permutation(11, 50), seeded_permutation(11, 50));
        assert_ne!(seeded_permutation(11, 50), seeded_permutation(12, 50));
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut r = SplitMix64::new(21);
        let w = [1.0, 0.0, 9.0];
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[r.weighted_index(&w).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5, "counts {counts:?}");
    }

    #[test]
    fn weighted_index_empty_or_zero() {
        let mut r = SplitMix64::new(21);
        assert_eq!(r.weighted_index(&[]), None);
        assert_eq!(r.weighted_index(&[0.0, 0.0]), None);
    }
}
