//! Bit-level helpers: parity, field extraction/insertion, sign extension.
//!
//! These model the combinational primitives that Argus-1 hardware uses:
//! parity trees over data words, bit-field packing for embedding Dataflow
//! and Control Signatures (DCS) into unused instruction bits, and the
//! sign-extension behaviour of sub-word loads.

/// Even parity of a 32-bit word: `true` if the number of set bits is odd.
///
/// Argus-1 attaches one parity bit to every register and every part of the
/// datapath that carries an operand or result. This function is that parity
/// tree.
///
/// ```
/// assert!(argus_sim::bits::parity32(0b1011));
/// assert!(!argus_sim::bits::parity32(0b1001));
/// ```
#[inline]
pub fn parity32(x: u32) -> bool {
    x.count_ones() % 2 == 1
}

/// Parity of the low `n` bits of `x`.
///
/// # Panics
///
/// Panics if `n > 32`.
#[inline]
pub fn parity_n(x: u32, n: u32) -> bool {
    assert!(n <= 32, "parity width {n} exceeds 32");
    if n == 32 {
        parity32(x)
    } else {
        parity32(x & ((1u32 << n) - 1))
    }
}

/// Extract bit field `[lo, lo+width)` from `x`.
///
/// # Panics
///
/// Panics if the field does not fit in 32 bits.
#[inline]
pub fn field(x: u32, lo: u32, width: u32) -> u32 {
    assert!(lo + width <= 32, "field [{lo}, {lo}+{width}) out of range");
    if width == 32 {
        x
    } else {
        (x >> lo) & ((1u32 << width) - 1)
    }
}

/// Insert `value` into bit field `[lo, lo+width)` of `x`, returning the new
/// word. Bits of `value` above `width` are ignored.
///
/// # Panics
///
/// Panics if the field does not fit in 32 bits.
#[inline]
pub fn insert(x: u32, lo: u32, width: u32, value: u32) -> u32 {
    assert!(lo + width <= 32, "field [{lo}, {lo}+{width}) out of range");
    let mask = if width == 32 { u32::MAX } else { ((1u32 << width) - 1) << lo };
    (x & !mask) | ((value << lo) & mask)
}

/// Sign-extend the low `width` bits of `x` to a full 32-bit word.
///
/// ```
/// assert_eq!(argus_sim::bits::sign_extend(0x8000, 16), 0xFFFF_8000);
/// assert_eq!(argus_sim::bits::sign_extend(0x7FFF, 16), 0x0000_7FFF);
/// ```
///
/// # Panics
///
/// Panics if `width` is 0 or greater than 32.
#[inline]
pub fn sign_extend(x: u32, width: u32) -> u32 {
    assert!(width > 0 && width <= 32, "invalid sign-extend width {width}");
    let shift = 32 - width;
    (((x << shift) as i32) >> shift) as u32
}

/// Zero-extend the low `width` bits of `x` (i.e., mask the rest off).
///
/// # Panics
///
/// Panics if `width` is 0 or greater than 32.
#[inline]
pub fn zero_extend(x: u32, width: u32) -> u32 {
    assert!(width > 0 && width <= 32, "invalid zero-extend width {width}");
    if width == 32 {
        x
    } else {
        x & ((1u32 << width) - 1)
    }
}

/// A little-endian bit stream writer used when packing DCS slots into the
/// unused bits of a basic block's instructions.
///
/// Bits are pushed least-significant-first and can be drained in fixed-width
/// chunks by the matching [`BitReader`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitWriter {
    bits: Vec<bool>,
}

impl BitWriter {
    /// Creates an empty bit stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `width` bits of `value`, LSB first.
    pub fn push(&mut self, value: u32, width: u32) {
        for i in 0..width {
            self.bits.push((value >> i) & 1 == 1);
        }
    }

    /// Number of bits written so far.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether no bits have been written.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Consumes the writer, returning the raw bit vector.
    pub fn into_bits(self) -> Vec<bool> {
        self.bits
    }
}

/// Reads fixed-width values back out of a bit vector produced by
/// [`BitWriter`] (or collected from instruction unused-bit fields).
#[derive(Debug, Clone)]
pub struct BitReader {
    bits: Vec<bool>,
    pos: usize,
}

impl BitReader {
    /// Wraps a bit vector for reading.
    pub fn new(bits: Vec<bool>) -> Self {
        Self { bits, pos: 0 }
    }

    /// Reads the next `width` bits (LSB first). Returns `None` if the stream
    /// is exhausted before `width` bits are available.
    pub fn read(&mut self, width: u32) -> Option<u32> {
        if self.pos + width as usize > self.bits.len() {
            return None;
        }
        let mut v = 0u32;
        for i in 0..width {
            if self.bits[self.pos + i as usize] {
                v |= 1 << i;
            }
        }
        self.pos += width as usize;
        Some(v)
    }

    /// Number of unread bits remaining.
    pub fn remaining(&self) -> usize {
        self.bits.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_basics() {
        assert!(!parity32(0));
        assert!(parity32(1));
        assert!(parity32(0x8000_0000));
        assert!(!parity32(0x8000_0001));
        assert!(!parity32(u32::MAX));
    }

    #[test]
    fn parity_single_bit_flip_always_changes_parity() {
        // The property Argus-1's datapath parity relies on.
        for x in [0u32, 1, 0xDEAD_BEEF, u32::MAX, 0x1234_5678] {
            for b in 0..32 {
                assert_ne!(parity32(x), parity32(x ^ (1 << b)));
            }
        }
    }

    #[test]
    fn parity_n_masks_high_bits() {
        assert!(parity_n(0x8000_0001, 16));
        assert!(!parity_n(0x8001_0000, 16));
        assert!(parity_n(u32::MAX, 1));
    }

    #[test]
    fn field_and_insert_roundtrip() {
        let x = 0xABCD_EF01u32;
        for (lo, w) in [(0u32, 6u32), (26, 6), (11, 5), (16, 16), (0, 32)] {
            let f = field(x, lo, w);
            assert_eq!(insert(x, lo, w, f), x);
            assert_eq!(field(insert(0, lo, w, f), lo, w), f);
        }
    }

    #[test]
    fn insert_ignores_high_bits_of_value() {
        assert_eq!(field(insert(0, 4, 4, 0xFF), 4, 4), 0xF);
        assert_eq!(insert(0, 4, 4, 0x10), 0);
    }

    #[test]
    fn sign_extend_cases() {
        assert_eq!(sign_extend(0xFF, 8), 0xFFFF_FFFF);
        assert_eq!(sign_extend(0x7F, 8), 0x7F);
        assert_eq!(sign_extend(0x80, 8), 0xFFFF_FF80);
        assert_eq!(sign_extend(0xDEAD_BEEF, 32), 0xDEAD_BEEF);
    }

    #[test]
    fn zero_extend_cases() {
        assert_eq!(zero_extend(0xFFFF_FFFF, 8), 0xFF);
        assert_eq!(zero_extend(0xFFFF_FFFF, 32), u32::MAX);
        assert_eq!(zero_extend(0x1FF, 8), 0xFF);
    }

    #[test]
    fn bit_writer_reader_roundtrip() {
        let mut w = BitWriter::new();
        w.push(0b10110, 5);
        w.push(0b01, 2);
        w.push(0x1F, 5);
        assert_eq!(w.len(), 12);
        let mut r = BitReader::new(w.into_bits());
        assert_eq!(r.read(5), Some(0b10110));
        assert_eq!(r.read(2), Some(0b01));
        assert_eq!(r.read(5), Some(0x1F));
        assert_eq!(r.read(1), None);
    }

    #[test]
    fn bit_reader_exhaustion() {
        let mut r = BitReader::new(vec![true, false, true]);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.read(4), None);
        assert_eq!(r.read(3), Some(0b101));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn field_out_of_range_panics() {
        field(0, 30, 4);
    }
}
