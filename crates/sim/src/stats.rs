//! Counters and histograms used by the experiment harnesses.

use std::collections::BTreeMap;
use std::fmt;

/// A map of named event counters with stable (sorted) iteration order,
/// used e.g. to attribute detections to checkers (§4.1.1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    counts: BTreeMap<String, u64>,
}

impl CounterSet {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments `name` by one.
    pub fn bump(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increments `name` by `n`.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counts.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Current value of `name` (zero if never bumped).
    pub fn get(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// Sum over all counters.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Iterates `(name, count)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Adds every counter of `other` into `self` (shard-reduction step of
    /// parallel campaigns: merging per-shard tallies must equal counting the
    /// union of events).
    pub fn merge(&mut self, other: &CounterSet) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Fraction of the total attributed to `name` (0.0 when empty).
    pub fn share(&self, name: &str) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.get(name) as f64 / t as f64
        }
    }
}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        for (k, v) in self.iter() {
            let pct = if total == 0 { 0.0 } else { 100.0 * v as f64 / total as f64 };
            writeln!(f, "{k:30} {v:10} ({pct:5.1}%)")?;
        }
        Ok(())
    }
}

/// A histogram over `u64` samples with power-of-two bucketing, used for
/// error-detection latency distributions (§4.2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// bucket `i` counts samples in `[2^(i-1), 2^i)`; bucket 0 counts zeros
    /// and ones.
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self { min: u64::MAX, ..Self::default() }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let b = if v <= 1 { 0 } else { (64 - (v - 1).leading_zeros()) as usize };
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample. `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample. `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Folds `other` into `self`; equivalent to recording all of `other`'s
    /// samples (bucket counts, extrema, and moments are all additive).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &c) in other.buckets.iter().enumerate() {
            self.buckets[b] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The power-of-two bucket counts (bucket `i` covers `[2^(i-1), 2^i)`;
    /// bucket 0 covers zeros and ones). Exposed for serialization.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Sum over all samples. Exposed for serialization.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Rebuilds a histogram from its serialized parts ([`Histogram::buckets`],
    /// count, sum, [`Histogram::min`], [`Histogram::max`]).
    pub fn from_parts(
        buckets: Vec<u64>,
        count: u64,
        sum: u128,
        min: Option<u64>,
        max: Option<u64>,
    ) -> Self {
        Self { buckets, count, sum, min: min.unwrap_or(u64::MAX), max: max.unwrap_or(0) }
    }

    /// Approximate p-th percentile (0.0–1.0) using bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&p), "percentile {p} out of [0,1]");
        if self.count == 0 {
            return None;
        }
        let target = (p * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(if i == 0 { 1 } else { 1u64 << i });
            }
        }
        Some(self.max)
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} min={} max={} p50≤{} p99≤{}",
            self.count,
            self.mean(),
            self.min().unwrap_or(0),
            self.max().unwrap_or(0),
            self.percentile(0.5).unwrap_or(0),
            self.percentile(0.99).unwrap_or(0),
        )
    }
}

/// Running mean / standard deviation (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Creates empty running stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the samples seen so far (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation (0.0 with fewer than two samples).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut c = CounterSet::new();
        c.bump("cc");
        c.bump("cc");
        c.add("parity", 3);
        assert_eq!(c.get("cc"), 2);
        assert_eq!(c.get("parity"), 3);
        assert_eq!(c.get("nothing"), 0);
        assert_eq!(c.total(), 5);
        assert!((c.share("parity") - 0.6).abs() < 1e-12);
    }

    #[test]
    fn counter_merge_equals_union_of_events() {
        let mut a = CounterSet::new();
        a.add("cc", 2);
        a.add("dcs", 5);
        let mut b = CounterSet::new();
        b.add("dcs", 1);
        b.add("parity", 7);
        let mut merged = a.clone();
        merged.merge(&b);
        let mut expect = CounterSet::new();
        for (k, v) in a.iter().chain(b.iter()) {
            expect.add(k, v);
        }
        assert_eq!(merged, expect);
        assert_eq!(merged.get("dcs"), 6);
        assert_eq!(merged.total(), 15);
        // Merging an empty set is a no-op.
        let before = merged.clone();
        merged.merge(&CounterSet::new());
        assert_eq!(merged, before);
    }

    #[test]
    fn counter_iteration_is_sorted() {
        let mut c = CounterSet::new();
        c.bump("zeta");
        c.bump("alpha");
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean() - 21.4).abs() < 1e-9);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_percentiles_monotone() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!(p50 <= p99);
        assert!(p99 >= 512);
    }

    #[test]
    fn histogram_records_zero() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.percentile(1.0), Some(1));
    }

    #[test]
    fn histogram_merge_equals_recording_all_samples() {
        let xs = [0u64, 1, 5, 9, 300];
        let ys = [2u64, 7, 100_000];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for &v in &xs {
            a.record(v);
            whole.record(v);
        }
        for &v in &ys {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        // Merging an empty histogram changes nothing; merging into an empty
        // one copies.
        let mut empty = Histogram::new();
        empty.merge(&whole);
        assert_eq!(empty, whole);
        whole.merge(&Histogram::new());
        assert_eq!(empty, whole);
    }

    #[test]
    fn histogram_parts_roundtrip() {
        let mut h = Histogram::new();
        for v in [3u64, 17, 255, 4096] {
            h.record(v);
        }
        let back =
            Histogram::from_parts(h.buckets().to_vec(), h.count(), h.sum(), h.min(), h.max());
        assert_eq!(back, h);
        let empty = Histogram::from_parts(vec![], 0, 0, None, None);
        assert_eq!(empty, Histogram::new());
    }

    #[test]
    fn online_stats() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn online_stats_degenerate() {
        let mut s = OnlineStats::new();
        assert_eq!(s.stddev(), 0.0);
        s.push(3.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.mean(), 3.0);
    }
}
