//! Packed bit containers for the Dataflow/Control-Signature stream.
//!
//! Argus-1 embeds signature bits into unused instruction-encoding bits and
//! the CFC checker reassembles them into per-block signature words. The
//! simulator's hot loop pushes a handful of bits per committed instruction
//! and the checker extracts 5-bit slots at block ends, so both sides want a
//! packed representation: [`PackedBits`] is the per-instruction carrier (at
//! most 21 embedded bits in any OR1200-style encoding) and [`BitStream`] is
//! the growing per-block buffer, stored LSB-first in `u64` words so pushes,
//! extracts, clears and fingerprint mixes touch whole words instead of one
//! `bool` at a time.

/// Up to 32 bits embedded in one instruction word, packed LSB-first.
///
/// The all-inline replacement for the `Vec<bool>` that
/// `embedded_bits` used to allocate per decoded instruction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct PackedBits {
    bits: u32,
    len: u8,
}

impl PackedBits {
    /// An empty carrier.
    pub const EMPTY: Self = Self { bits: 0, len: 0 };

    /// Packs `len` bits (LSB-first in `bits`); bits at or above `len` are
    /// cleared so equality is structural.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(bits: u32, len: u8) -> Self {
        assert!(len <= 32, "PackedBits holds at most 32 bits");
        let masked = if len == 32 { bits } else { bits & ((1u32 << len) - 1) };
        Self { bits: masked, len }
    }

    /// Number of bits carried.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no bits are carried.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed bits, LSB-first; bits at or above `len()` are zero.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Bit `i` (LSB-first order).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len(), "bit index {i} out of range (len {})", self.len);
        (self.bits >> i) & 1 == 1
    }

    /// Appends one bit.
    ///
    /// # Panics
    ///
    /// Panics if already full (32 bits).
    pub fn push(&mut self, bit: bool) {
        assert!(self.len < 32, "PackedBits holds at most 32 bits");
        self.bits |= (bit as u32) << self.len;
        self.len += 1;
    }

    /// Iterates the bits LSB-first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len()).map(|i| (self.bits >> i) & 1 == 1)
    }

    /// Expands into a `Vec<bool>` (cold paths and tests).
    pub fn to_vec(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// Builds from a bool slice.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() > 32`.
    pub fn from_bools(bits: &[bool]) -> Self {
        assert!(bits.len() <= 32, "PackedBits holds at most 32 bits");
        let mut packed = 0u32;
        for (i, &b) in bits.iter().enumerate() {
            packed |= (b as u32) << i;
        }
        Self { bits: packed, len: bits.len() as u8 }
    }
}

/// A growable bit vector packed LSB-first into `u64` words.
///
/// Replaces the `Vec<bool>` signature buffer: pushing a [`PackedBits`]
/// carrier is one or two word-level shifts, extraction of an n-bit slot is
/// a word read (plus a neighbour when the slot straddles a boundary), and
/// fingerprinting mixes whole words. Bits at or above `len()` in the last
/// word are kept zero, so the derived equality is structural.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitStream {
    words: Vec<u64>,
    len: usize,
}

impl BitStream {
    /// An empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits in the stream.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the stream holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Clears the stream, keeping the allocated words (so steady-state
    /// block turnover never reallocates).
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let (word, off) = (self.len / 64, self.len % 64);
        if off == 0 {
            self.words.push(0);
        }
        self.words[word] |= (bit as u64) << off;
        self.len += 1;
    }

    /// Appends a packed carrier in LSB-first order — the hot-loop append.
    pub fn push_packed(&mut self, bits: PackedBits) {
        let n = bits.len();
        if n == 0 {
            return;
        }
        let v = bits.bits() as u64;
        let off = self.len % 64;
        if off == 0 {
            self.words.push(v);
        } else {
            let word = self.len / 64;
            self.words[word] |= v << off;
            if off + n > 64 {
                self.words.push(v >> (64 - off));
            }
        }
        self.len += n;
    }

    /// Bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Extracts bits `[lo, lo + n)` as a LSB-first integer; positions past
    /// `len()` read as zero (matching the checker's zero-padded slots).
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn extract(&self, lo: usize, n: usize) -> u32 {
        assert!(n <= 32, "extract width {n} exceeds 32");
        if n == 0 || lo >= self.len {
            return 0;
        }
        let (word, off) = (lo / 64, lo % 64);
        let mut v = self.words[word] >> off;
        if off + n > 64 {
            if let Some(&hi) = self.words.get(word + 1) {
                v |= hi << (64 - off);
            }
        }
        let avail = self.len - lo;
        let take = n.min(avail);
        let mask = if take == 64 { u64::MAX } else { (1u64 << take) - 1 };
        (v & mask) as u32
    }

    /// The backing words, LSB-first; tail bits above `len()` are zero.
    /// Fingerprints mix these directly instead of walking bools.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates the bits LSB-first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(|i| self.get(i))
    }

    /// Expands into a `Vec<bool>` (cold paths and tests).
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// Builds from a bool slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut s = Self::new();
        for &b in bits {
            s.push(b);
        }
        s
    }

    /// Rebuilds from backing words + length (snapshot restore).
    ///
    /// # Panics
    ///
    /// Panics if `words` is not exactly the right length for `len` bits or
    /// carries set bits at or above `len`.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(words.len(), len.div_ceil(64), "word count mismatch for {len} bits");
        if !len.is_multiple_of(64) {
            if let Some(&last) = words.last() {
                assert_eq!(last >> (len % 64), 0, "set bits past the stream length");
            }
        }
        Self { words, len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_roundtrip() {
        let v = [true, false, true, true, false];
        let p = PackedBits::from_bools(&v);
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        assert_eq!(p.bits(), 0b01101);
        assert_eq!(p.to_vec(), v);
        assert!(p.get(0) && !p.get(1) && p.get(3));
        assert_eq!(p, PackedBits::new(0b01101, 5));
    }

    #[test]
    fn packed_new_masks_high_bits() {
        assert_eq!(PackedBits::new(0xFFFF_FFFF, 3), PackedBits::new(0b111, 3));
        assert_eq!(PackedBits::new(0xFFFF_FFFF, 32).bits(), 0xFFFF_FFFF);
        assert!(PackedBits::EMPTY.is_empty());
    }

    #[test]
    fn packed_push_appends_lsb_first() {
        let mut p = PackedBits::EMPTY;
        p.push(true);
        p.push(false);
        p.push(true);
        assert_eq!(p, PackedBits::new(0b101, 3));
    }

    #[test]
    #[should_panic(expected = "at most 32")]
    fn packed_overflow_panics() {
        let mut p = PackedBits::new(0, 32);
        p.push(true);
    }

    #[test]
    fn stream_push_and_get() {
        let mut s = BitStream::new();
        assert!(s.is_empty());
        s.push(true);
        s.push(false);
        s.push(true);
        assert_eq!(s.len(), 3);
        assert!(s.get(0) && !s.get(1) && s.get(2));
        assert_eq!(s.to_bools(), vec![true, false, true]);
    }

    #[test]
    fn stream_matches_bool_reference_across_word_boundaries() {
        // Deterministic pseudo-random bit pattern long enough to straddle
        // several 64-bit words with odd-size packed pushes.
        let mut reference = Vec::new();
        let mut s = BitStream::new();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for i in 0..100 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let n = (i % 22) as u8; // 0..=21 bits, the embedded-bits range
            let p = PackedBits::new(x as u32, n);
            s.push_packed(p);
            reference.extend(p.iter());
        }
        assert_eq!(s.len(), reference.len());
        assert_eq!(s.to_bools(), reference);
        assert_eq!(s, BitStream::from_bools(&reference), "from_bools agrees");
        // Extraction at every offset/width agrees with the bool reference.
        for lo in (0..reference.len()).step_by(7) {
            for n in [1usize, 5, 13, 31, 32] {
                let mut want = 0u32;
                for k in 0..n {
                    if reference.get(lo + k).copied().unwrap_or(false) {
                        want |= 1 << k;
                    }
                }
                assert_eq!(s.extract(lo, n), want, "extract({lo}, {n})");
            }
        }
    }

    #[test]
    fn stream_extract_zero_pads_past_end() {
        let s = BitStream::from_bools(&[true, true]);
        assert_eq!(s.extract(0, 5), 0b11);
        assert_eq!(s.extract(1, 5), 0b1);
        assert_eq!(s.extract(2, 5), 0);
        assert_eq!(s.extract(100, 5), 0);
        assert_eq!(s.extract(0, 0), 0);
    }

    #[test]
    fn stream_clear_keeps_structural_equality() {
        let mut a = BitStream::new();
        a.push_packed(PackedBits::new(0x1FFF, 13));
        a.clear();
        assert_eq!(a, BitStream::new(), "cleared stream equals fresh stream");
        a.push(true);
        assert_eq!(a.to_bools(), vec![true]);
        assert_eq!(a.words()[0], 1, "no stale bits survive a clear");
    }

    #[test]
    fn stream_words_tail_is_zero() {
        let mut s = BitStream::new();
        s.push_packed(PackedBits::new(0b101, 3));
        assert_eq!(s.words(), &[0b101]);
        let r = BitStream::from_words(s.words().to_vec(), s.len());
        assert_eq!(r, s);
    }

    #[test]
    #[should_panic(expected = "word count mismatch")]
    fn from_words_rejects_bad_count() {
        BitStream::from_words(vec![0, 0], 64);
    }

    #[test]
    #[should_panic(expected = "past the stream length")]
    fn from_words_rejects_dirty_tail() {
        BitStream::from_words(vec![0b1000], 3);
    }
}
