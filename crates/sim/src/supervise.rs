//! Supervision primitives for the fault-injection rig itself.
//!
//! Argus's subject matter is surviving faults in the simulated core; this
//! module is about surviving faults in the *campaign machinery*: an
//! injection that panics, or one that livelocks the step loop, must not
//! take a multi-hour campaign down with it. The orchestrator wraps every
//! injection in [`catch_supervised`] (panic isolation with a quiet hook)
//! and threads an [`InjectionWatchdog`] through the faulty-run loop
//! (cycle-budget plus wall-clock hang detection). Both anomalies are
//! recorded in the campaign tallies as [`Anomaly`] counts instead of
//! crashing a worker shard.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;
use std::time::{Duration, Instant};

/// The two ways an injection can fail *as an injection* rather than as a
/// classified run: its code panicked, or it blew through its watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Anomaly {
    /// The injection panicked and was isolated; the worker rebuilt its
    /// state and moved on.
    Quarantined,
    /// The injection exceeded its cycle budget or wall-clock ceiling.
    Hung,
}

impl Anomaly {
    /// Stable snake_case label (JSON keys, report fields).
    pub fn label(self) -> &'static str {
        match self {
            Anomaly::Quarantined => "quarantined",
            Anomaly::Hung => "hung",
        }
    }
}

/// Why the watchdog declared a run hung.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HangCause {
    /// The step loop ran more iterations than the cycle budget allows.
    /// Deterministic: depends only on the budget and the run.
    CycleBudget,
    /// The wall-clock ceiling elapsed first (a true livelock where the
    /// simulated cycle counter stopped advancing, or a pathologically slow
    /// host). Inherently non-deterministic; a backstop, not a classifier.
    WallClock,
}

impl HangCause {
    /// Stable snake_case label.
    pub fn label(self) -> &'static str {
        match self {
            HangCause::CycleBudget => "cycle_budget",
            HangCause::WallClock => "wall_clock",
        }
    }
}

/// Watchdog limits for one supervised run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Maximum step-loop iterations before the run is declared hung. Each
    /// iteration normally advances the simulated clock by at least one
    /// cycle, so this doubles as a cycle budget that keeps firing even
    /// when a fault corrupts the cycle counter itself.
    pub cycle_budget: u64,
    /// Wall-clock ceiling; `None` disables the wall check.
    pub wall_limit: Option<Duration>,
}

/// How many ticks pass between wall-clock checks (`Instant::now` is too
/// expensive for every step of the hot loop).
const WALL_CHECK_INTERVAL: u64 = 4096;

/// A per-injection watchdog: tick it once per step-loop iteration and stop
/// the run when it reports a [`HangCause`].
#[derive(Debug)]
pub struct InjectionWatchdog {
    remaining: u64,
    ticks: u64,
    deadline: Option<Instant>,
}

impl InjectionWatchdog {
    /// Arms a watchdog; the wall deadline starts now.
    pub fn new(cfg: &WatchdogConfig) -> Self {
        Self {
            remaining: cfg.cycle_budget,
            ticks: 0,
            deadline: cfg.wall_limit.map(|d| Instant::now() + d),
        }
    }

    /// Accounts one step-loop iteration; `Some` means the run is hung and
    /// must be abandoned. The cycle budget is checked every tick, the wall
    /// clock only every [`WALL_CHECK_INTERVAL`] ticks.
    #[inline]
    pub fn tick(&mut self) -> Option<HangCause> {
        if self.remaining == 0 {
            return Some(HangCause::CycleBudget);
        }
        self.remaining -= 1;
        self.ticks += 1;
        if self.ticks.is_multiple_of(WALL_CHECK_INTERVAL) {
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    return Some(HangCause::WallClock);
                }
            }
        }
        None
    }

    /// Accounts `n` step-loop iterations at once — the block-compiled fast
    /// path retires a whole basic block per loop iteration and settles the
    /// watchdog debt for the interpreter iterations it replaced. Fires iff
    /// `n` sequential [`InjectionWatchdog::tick`]s would have fired within
    /// the span, which keeps the hung/not-hung verdict identical to the
    /// one-step loop: a budget that runs out mid-block abandons the run
    /// with the same [`HangCause`], and a hung run's machine state is
    /// never reported anyway.
    #[inline]
    pub fn tick_many(&mut self, n: u64) -> Option<HangCause> {
        if self.remaining < n {
            self.remaining = 0;
            return Some(HangCause::CycleBudget);
        }
        self.remaining -= n;
        let before = self.ticks;
        self.ticks += n;
        if before / WALL_CHECK_INTERVAL != self.ticks / WALL_CHECK_INTERVAL {
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    return Some(HangCause::WallClock);
                }
            }
        }
        None
    }
}

thread_local! {
    /// Set while this thread is inside [`catch_supervised`]; the shared
    /// panic hook stays quiet for supervised panics (they are captured and
    /// reported through the quarantine ledger, not stderr).
    static SUPERVISED: Cell<bool> = const { Cell::new(false) };
}

static HOOK_INSTALLED: Once = Once::new();

fn install_quiet_hook() {
    HOOK_INSTALLED.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPERVISED.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Process-wide termination-signal wiring shared by every long-running
/// front end (the one-shot `argus campaign` CLI and the `argus serve`
/// daemon): SIGINT and SIGTERM both flip one stop flag, so a campaign
/// checkpoints and exits cleanly whether it is interrupted from a terminal
/// (Ctrl-C) or told to shut down by a service manager (`systemctl stop`,
/// `docker stop`, a CI timeout).
///
/// Installed lazily by [`signals::install`]; subcommands that never call it
/// keep the default signal behaviour.
pub mod signals {
    use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};

    /// Set once SIGINT or SIGTERM arrives; polled by campaign workers and
    /// the daemon's scheduler loop.
    pub static STOP: AtomicBool = AtomicBool::new(false);

    /// The signal number that set [`STOP`] (0 until one arrives) — lets a
    /// front end report *why* it is draining.
    static LAST_SIGNAL: AtomicI32 = AtomicI32::new(0);

    extern "C" fn on_stop_signal(sig: i32) {
        // Only async-signal-safe work here: two atomic stores.
        LAST_SIGNAL.store(sig, Ordering::SeqCst);
        STOP.store(true, Ordering::SeqCst);
    }

    /// Routes SIGINT and SIGTERM to the [`STOP`] flag. Idempotent; no-op
    /// off Unix.
    pub fn install() {
        #[cfg(unix)]
        unsafe {
            extern "C" {
                fn signal(signum: i32, handler: usize) -> usize;
            }
            const SIGINT: i32 = 2;
            const SIGTERM: i32 = 15;
            signal(SIGINT, on_stop_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_stop_signal as extern "C" fn(i32) as usize);
        }
    }

    /// Whether a termination signal has been received.
    pub fn stop_requested() -> bool {
        STOP.load(Ordering::SeqCst)
    }

    /// Human-readable name of the signal that requested the stop, if any.
    pub fn stop_cause() -> Option<&'static str> {
        match LAST_SIGNAL.load(Ordering::SeqCst) {
            2 => Some("SIGINT"),
            15 => Some("SIGTERM"),
            _ => None,
        }
    }

    /// Clears the flag (tests and daemon restarts within one process).
    pub fn reset() {
        STOP.store(false, Ordering::SeqCst);
        LAST_SIGNAL.store(0, Ordering::SeqCst);
    }
}

/// Extracts the human-readable message from a panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `f`, converting a panic into `Err(message)` without letting the
/// default hook spam stderr. Panics on *other* threads still print.
///
/// The closure is treated as unwind-safe: supervised injections rebuild
/// all of their mutable state (machine, checker, injector) from scratch or
/// from an immutable snapshot on every call, so a half-completed run
/// leaves nothing behind that a later run can observe.
pub fn catch_supervised<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_quiet_hook();
    SUPERVISED.with(|flag| flag.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    SUPERVISED.with(|flag| flag.set(false));
    result.map_err(|payload| panic_message(payload.as_ref()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_fires_on_cycle_budget() {
        let mut wd = InjectionWatchdog::new(&WatchdogConfig { cycle_budget: 10, wall_limit: None });
        for _ in 0..10 {
            assert_eq!(wd.tick(), None);
        }
        assert_eq!(wd.tick(), Some(HangCause::CycleBudget));
        // Expired watchdogs stay expired.
        assert_eq!(wd.tick(), Some(HangCause::CycleBudget));
    }

    #[test]
    fn tick_many_matches_sequential_ticks() {
        // Same budget, one loop batched and one per-tick: the batched
        // watchdog must fire on (exactly) the batch that would have
        // contained the firing tick.
        for batch in [1u64, 3, 7, 10, 11] {
            let cfg = WatchdogConfig { cycle_budget: 10, wall_limit: None };
            let mut a = InjectionWatchdog::new(&cfg);
            let mut b = InjectionWatchdog::new(&cfg);
            let mut fired_a = None;
            let mut fired_b = None;
            for step in 0..40u64 {
                if fired_a.is_none() {
                    if let Some(c) = a.tick_many(batch) {
                        fired_a = Some((step, c));
                    }
                }
                if fired_b.is_none() {
                    let mut hit = None;
                    for _ in 0..batch {
                        if let Some(c) = b.tick() {
                            hit = Some(c);
                            break;
                        }
                    }
                    if let Some(c) = hit {
                        fired_b = Some((step, c));
                    }
                }
            }
            assert_eq!(fired_a, fired_b, "batch {batch}");
        }
    }

    #[test]
    fn tick_many_zero_is_free() {
        let mut wd = InjectionWatchdog::new(&WatchdogConfig { cycle_budget: 2, wall_limit: None });
        for _ in 0..100 {
            assert_eq!(wd.tick_many(0), None);
        }
        assert_eq!(wd.tick_many(2), None);
        assert_eq!(wd.tick_many(1), Some(HangCause::CycleBudget));
    }

    #[test]
    fn watchdog_fires_on_wall_clock() {
        let mut wd = InjectionWatchdog::new(&WatchdogConfig {
            cycle_budget: u64::MAX,
            wall_limit: Some(Duration::ZERO),
        });
        let mut fired = None;
        for _ in 0..2 * WALL_CHECK_INTERVAL {
            if let Some(cause) = wd.tick() {
                fired = Some(cause);
                break;
            }
        }
        assert_eq!(fired, Some(HangCause::WallClock));
    }

    #[test]
    fn catch_supervised_captures_messages() {
        assert_eq!(catch_supervised(|| 42), Ok(42));
        let err = catch_supervised(|| panic!("boom {}", 7)).unwrap_err();
        assert_eq!(err, "boom 7");
        let err = catch_supervised(|| panic!("static boom")).unwrap_err();
        assert_eq!(err, "static boom");
        // The thread-local is reset, so a later success is unaffected.
        assert_eq!(catch_supervised(|| "ok"), Ok("ok"));
    }

    #[test]
    #[cfg(unix)]
    fn signals_route_sigterm_to_the_stop_flag() {
        extern "C" {
            fn raise(sig: i32) -> i32;
        }
        signals::reset();
        assert!(!signals::stop_requested());
        assert_eq!(signals::stop_cause(), None);
        signals::install();
        // With the handler installed, SIGTERM must set the flag instead of
        // killing the process — exactly what a service manager's stop does.
        unsafe { raise(15) };
        assert!(signals::stop_requested());
        assert_eq!(signals::stop_cause(), Some("SIGTERM"));
        signals::reset();
        assert!(!signals::stop_requested());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Anomaly::Quarantined.label(), "quarantined");
        assert_eq!(Anomaly::Hung.label(), "hung");
        assert_eq!(HangCause::CycleBudget.label(), "cycle_budget");
        assert_eq!(HangCause::WallClock.label(), "wall_clock");
    }
}
