//! Fault-injection substrate.
//!
//! The paper injects single transient and permanent bit-inversion errors at
//! randomly sampled gate outputs of the synthesized OR1200 + Argus-1 netlist
//! (§4.1). Our simulator is not gate-level, so we reproduce the methodology
//! at the granularity of *named signal sites*: every microarchitectural
//! signal a gate output would drive — register-file cells and address
//! decoders, operand/result buses, functional-unit internals, PC update,
//! pipeline control, the memory interface, and all of the Argus checker
//! hardware itself — is declared as a [`SiteDesc`] and *tapped* each time a
//! component drives it.
//!
//! A [`FaultInjector`] carries at most one active [`Fault`]. When the tapped
//! site matches, the injector inverts the chosen bit:
//!
//! * **Transient** faults follow the paper's activation protocol: the fault
//!   stays armed until the first cycle in which it actually corrupts a tapped
//!   value ("until it shows up"), then disappears.
//! * **Permanent** faults invert the bit on every tap from the arm cycle on.
//!
//! Sites with [`SiteFlavor::Double`] model gates whose output drives two
//! datapath bits; these flip an even number of bits and are exactly the
//! parity blind spot the paper identifies as the dominant cause of silent
//! data corruption.

use std::fmt;

/// Which hardware unit a signal site belongs to. Used for weighting the
/// sample population (approximating relative gate counts) and for reporting
/// which checker covers which unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// Instruction fetch: PC register, fetch bus.
    Fetch,
    /// Decode logic and opcode distribution trees.
    Decode,
    /// Architectural register file (data bits, read/write port addressing).
    RegFile,
    /// Integer ALU (adder, logic unit, shifter) and its result bus.
    Alu,
    /// Non-pipelined multiplier/divider.
    MulDiv,
    /// Load/store unit and data re-alignment.
    Lsu,
    /// Pipeline/stall/branch control.
    Control,
    /// Core-to-memory interface buses (the paper injects here, not in the
    /// cache arrays themselves).
    MemIface,
    /// Argus-1 SHS registers and CRC update units.
    ArgusShs,
    /// Argus-1 DCS permutation/XOR tree, signature extraction, compare.
    ArgusDcs,
    /// Argus-1 computation sub-checkers (adder checker, RSSE, mod-M).
    ArgusCc,
    /// Argus-1 parity generation/check trees and parity storage.
    ArgusParity,
    /// Argus-1 watchdog counter.
    ArgusWatchdog,
}

impl Unit {
    /// True for units that exist only because of Argus-1 (errors there can
    /// never corrupt the architectural execution of the core).
    pub fn is_argus_hardware(self) -> bool {
        matches!(
            self,
            Unit::ArgusShs
                | Unit::ArgusDcs
                | Unit::ArgusCc
                | Unit::ArgusParity
                | Unit::ArgusWatchdog
        )
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// How many datapath bits a single fault at this site corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteFlavor {
    /// Ordinary gate output: one inverted bit.
    Single,
    /// A driver/mux-select style gate that corrupts two adjacent bits —
    /// invisible to single-bit parity.
    Double,
}

/// A named fault-injection site: one signal of `width` bits inside `unit`.
///
/// `weight` scales the probability of the site being picked by a campaign,
/// approximating the number of gates feeding that signal in a real netlist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteDesc {
    /// Globally unique site name (used to match taps).
    pub name: &'static str,
    /// Signal width in bits; campaigns pick `bit < width`.
    pub width: u8,
    /// Owning hardware unit.
    pub unit: Unit,
    /// Relative sampling weight (≈ gate-count share).
    pub weight: f64,
    /// Single- or double-bit corruption.
    pub flavor: SiteFlavor,
    /// Logical-masking model: the probability that a faulty gate output in
    /// this signal's cone of logic is *sensitized* — i.e. actually reaches
    /// the tapped signal on a given exercise. Gate-level studies find most
    /// transients logically masked; our taps sit on unit boundaries, so
    /// deep combinational cones (ALU internals, the multiplier array,
    /// decode) get values well below 1.0, while wires, latches and storage
    /// cells stay near 1.0.
    pub sensitization: f64,
}

impl SiteDesc {
    /// Convenience constructor for a single-bit-flavor, fully sensitized
    /// site.
    pub const fn new(name: &'static str, width: u8, unit: Unit, weight: f64) -> Self {
        Self { name, width, unit, weight, flavor: SiteFlavor::Single, sensitization: 1.0 }
    }

    /// Convenience constructor for a double-bit-flavor site.
    pub const fn double(name: &'static str, width: u8, unit: Unit, weight: f64) -> Self {
        Self { name, width, unit, weight, flavor: SiteFlavor::Double, sensitization: 1.0 }
    }

    /// Sets the logical-masking sensitization probability.
    pub const fn sensitized(mut self, p: f64) -> Self {
        self.sensitization = p;
        self
    }
}

/// Transient vs. permanent bit inversion (the paper's two error models).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Armed at `arm_cycle`, disappears after the first cycle in which it
    /// corrupts a tapped value.
    Transient,
    /// Inverts the bit on every tap from `arm_cycle` on.
    Permanent,
}

/// A single injected fault: invert `bit` of the signal at `site`.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    /// Site name (must match a tap's site name exactly).
    pub site: &'static str,
    /// Bit position within the signal.
    pub bit: u8,
    /// Transient or permanent.
    pub kind: FaultKind,
    /// Cycle at which the fault becomes active.
    pub arm_cycle: u64,
    /// Whether the site corrupts one or two bits per activation.
    pub flavor: SiteFlavor,
    /// Width of the site signal (for wrapping the second bit of a double).
    pub width: u8,
    /// Per-exercise propagation probability (logical masking; 1.0 = every
    /// exercise corrupts).
    pub sensitization: f64,
}

impl Fault {
    fn mask(&self) -> u32 {
        let w = self.width.max(1) as u32;
        let b0 = 1u32 << (self.bit as u32 % w.min(32));
        match self.flavor {
            SiteFlavor::Single => b0,
            SiteFlavor::Double => {
                let b1 = 1u32 << ((self.bit as u32 + 1) % w.min(32));
                b0 | b1
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Slot {
    fault: Fault,
    expired: bool,
    exposures: u64,
}

/// Threads zero or more faults through the simulator. Components call
/// [`FaultInjector::tap32`]/[`FaultInjector::tap1`] on every signal they
/// drive; the injector flips bits when an armed fault matches. Campaigns
/// inject a single fault (the paper's methodology); multi-fault injectors
/// support the §4.1 multiple-error scenarios (e.g. a core error plus an
/// error in the corresponding checker).
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    slots: Vec<Slot>,
    cycle: u64,
    /// Cycle of the first actual corruption, if any.
    first_flip: Option<u64>,
    /// Total number of corrupted taps.
    flips: u64,
    /// Number of non-expired slots (a transient decrements this when it
    /// fires and expires).
    live: usize,
    /// Earliest arm cycle over all slots; conservative (not recomputed on
    /// expiry), so it can only err toward taking the exact slow path.
    min_arm: u64,
    /// Cached "some slot could fire at the current cycle" flag. When false
    /// — golden runs, pre-arm execution, after every transient expired —
    /// `tap32`/`tap1`/`has_transient_on` are a single predictable branch.
    active: bool,
}

impl FaultInjector {
    /// An injector with no fault: taps pass values through unchanged.
    pub fn none() -> Self {
        Self::default()
    }

    /// An injector carrying one fault.
    pub fn with_fault(fault: Fault) -> Self {
        Self::with_faults(vec![fault])
    }

    /// An injector carrying several independent faults.
    pub fn with_faults(faults: Vec<Fault>) -> Self {
        let slots: Vec<Slot> =
            faults.into_iter().map(|fault| Slot { fault, expired: false, exposures: 0 }).collect();
        let live = slots.len();
        let min_arm = slots.iter().map(|s| s.fault.arm_cycle).min().unwrap_or(u64::MAX);
        let mut inj = Self { slots, live, min_arm, ..Self::default() };
        inj.recompute_active();
        inj
    }

    #[inline]
    fn recompute_active(&mut self) {
        self.active = self.live > 0 && self.cycle >= self.min_arm;
    }

    /// Advances the injector's notion of the current cycle. The machine
    /// calls this once per simulated cycle.
    pub fn set_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
        self.recompute_active();
    }

    /// True when no fault can fire at the current cycle: the injector has
    /// no slots, every slot has expired, or every slot is still waiting for
    /// its arm cycle. Quiescence is exactly the golden-run condition — taps
    /// are guaranteed identity functions — so callers (e.g. the machine's
    /// predecode memo) may skip work that only exists to expose signals to
    /// fault taps.
    #[inline]
    pub fn is_quiescent(&self) -> bool {
        !self.active
    }

    /// First cycle at which any carried fault could fire: `u64::MAX` when
    /// every slot has expired (or none exist), else the earliest arm cycle.
    /// Taps are guaranteed identity functions at every cycle strictly below
    /// the horizon, so a caller that will simulate cycles `[c, c+n)` without
    /// tapping may do so exactly when `c + n <= quiescent_horizon()` — this
    /// is the gate for block-compiled execution. Conservative in the same
    /// direction as `min_arm`: expiry never moves the horizon later, so the
    /// only error mode is declining a batch that would have been safe.
    #[inline]
    pub fn quiescent_horizon(&self) -> u64 {
        if self.live == 0 {
            u64::MAX
        } else {
            self.min_arm
        }
    }

    /// Current cycle as last set by [`Self::set_cycle`].
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Cycle of the first corrupted tap, or `None` if no fault ever fired.
    pub fn first_flip_cycle(&self) -> Option<u64> {
        self.first_flip
    }

    /// Number of taps corrupted so far (across all faults).
    pub fn flip_count(&self) -> u64 {
        self.flips
    }

    /// The first fault carried by this injector, if any.
    pub fn fault(&self) -> Option<&Fault> {
        self.slots.first().map(|s| &s.fault)
    }

    /// Per-exercise logical-masking draw (deterministic in cycle and
    /// exposure count, so campaigns replay exactly). Transients stay armed
    /// across logically-masked exercises — the paper's methodology
    /// activates a transient "until it shows up or until a fixed amount of
    /// time has elapsed", which is exactly why its transient and permanent
    /// masking rates coincide.
    fn sensitized(slot: &mut Slot, cycle: u64) -> bool {
        slot.exposures += 1;
        let p = slot.fault.sensitization;
        if p >= 1.0 {
            return true;
        }
        // Mix the fault's identity in so co-resident faults draw
        // independent masking decisions (content hash, not a pointer, so
        // campaigns replay identically across processes).
        let mut ident: u64 = 0xcbf2_9ce4_8422_2325 ^ ((slot.fault.bit as u64) << 56);
        for b in slot.fault.site.bytes() {
            ident = (ident ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut h =
            crate::rng::SplitMix64::new(cycle ^ (slot.exposures << 40) ^ ident ^ 0x5E27_1A7E);
        h.next_f64() < p
    }

    /// True when any armed (and due) transient fault targets `site` (the
    /// machine uses this to decide whether a flipped storage-cell read
    /// should persist as a cell upset).
    pub fn has_transient_on(&self, site: &'static str) -> bool {
        // Quiescent injectors (no slots, all expired, or pre-arm) can be
        // answered without scanning — this runs on every register read.
        if !self.active {
            return false;
        }
        self.slots.iter().any(|s| {
            !s.expired
                && s.fault.site == site
                && self.cycle >= s.fault.arm_cycle
                && matches!(s.fault.kind, FaultKind::Transient)
        })
    }

    /// True when any non-expired fault targets `site`, regardless of arm
    /// cycle or kind. Callers that want to *skip* taps on `site` (e.g. the
    /// bounded memory scrub skipping provably clean words) must take the
    /// full tap sequence whenever this holds: a matching fault draws its
    /// masking decision per exposure, so the tap count is observable.
    pub fn targets_live_site(&self, site: &'static str) -> bool {
        self.slots.iter().any(|s| !s.expired && s.fault.site == site)
    }

    /// Computes the XOR mask contributed by all matching faults at this
    /// tap, handling expiry and masking. Returns 0 when nothing fires.
    #[inline]
    fn fire_mask(&mut self, site: &'static str) -> u32 {
        if !self.active {
            return 0;
        }
        let cycle = self.cycle;
        let mut mask = 0u32;
        let mut fired = 0u64;
        for slot in &mut self.slots {
            if slot.expired || slot.fault.site != site || cycle < slot.fault.arm_cycle {
                continue;
            }
            if !Self::sensitized(slot, cycle) {
                continue;
            }
            mask ^= slot.fault.mask();
            fired += 1;
            if matches!(slot.fault.kind, FaultKind::Transient) {
                slot.expired = true;
                self.live -= 1;
            }
        }
        if self.live == 0 {
            self.active = false;
        }
        // Co-resident faults whose masks cancel exactly leave the signal
        // untouched — no corruption happened, so don't count one.
        if mask != 0 {
            self.flips += fired;
            if self.first_flip.is_none() {
                self.first_flip = Some(cycle);
            }
        }
        mask
    }

    /// Taps a multi-bit signal: returns the (possibly corrupted) value.
    #[inline]
    pub fn tap32(&mut self, site: &'static str, value: u32) -> u32 {
        value ^ self.fire_mask(site)
    }

    /// Taps a single-bit signal.
    #[inline]
    pub fn tap1(&mut self, site: &'static str, value: bool) -> bool {
        if self.fire_mask(site) != 0 {
            !value
        } else {
            value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(kind: FaultKind) -> Fault {
        Fault {
            site: "test_bus",
            bit: 3,
            kind,
            arm_cycle: 10,
            flavor: SiteFlavor::Single,
            width: 32,
            sensitization: 1.0,
        }
    }

    #[test]
    fn no_fault_is_transparent() {
        let mut inj = FaultInjector::none();
        inj.set_cycle(100);
        assert_eq!(inj.tap32("anything", 0xABCD), 0xABCD);
        assert!(inj.tap1("x", true));
        assert_eq!(inj.flip_count(), 0);
        assert_eq!(inj.first_flip_cycle(), None);
    }

    #[test]
    fn fault_waits_for_arm_cycle() {
        let mut inj = FaultInjector::with_fault(fault(FaultKind::Permanent));
        inj.set_cycle(9);
        assert_eq!(inj.tap32("test_bus", 0), 0);
        inj.set_cycle(10);
        assert_eq!(inj.tap32("test_bus", 0), 1 << 3);
    }

    #[test]
    fn fault_only_hits_matching_site() {
        let mut inj = FaultInjector::with_fault(fault(FaultKind::Permanent));
        inj.set_cycle(50);
        assert_eq!(inj.tap32("other_bus", 0), 0);
        assert_eq!(inj.flip_count(), 0);
    }

    #[test]
    fn transient_fires_once() {
        let mut inj = FaultInjector::with_fault(fault(FaultKind::Transient));
        inj.set_cycle(20);
        assert_eq!(inj.tap32("test_bus", 0), 1 << 3);
        assert_eq!(inj.tap32("test_bus", 0), 0, "transient must expire");
        assert_eq!(inj.flip_count(), 1);
        assert_eq!(inj.first_flip_cycle(), Some(20));
    }

    #[test]
    fn permanent_fires_repeatedly() {
        let mut inj = FaultInjector::with_fault(fault(FaultKind::Permanent));
        inj.set_cycle(20);
        for _ in 0..5 {
            assert_eq!(inj.tap32("test_bus", 0), 1 << 3);
        }
        assert_eq!(inj.flip_count(), 5);
    }

    #[test]
    fn double_flavor_flips_two_adjacent_bits() {
        let mut inj = FaultInjector::with_fault(Fault {
            flavor: SiteFlavor::Double,
            ..fault(FaultKind::Permanent)
        });
        inj.set_cycle(10);
        let v = inj.tap32("test_bus", 0);
        assert_eq!(v.count_ones(), 2);
        assert_eq!(v, (1 << 3) | (1 << 4));
    }

    #[test]
    fn double_flavor_wraps_at_width() {
        let mut inj = FaultInjector::with_fault(Fault {
            site: "narrow",
            bit: 4,
            kind: FaultKind::Permanent,
            arm_cycle: 0,
            flavor: SiteFlavor::Double,
            width: 5,
            sensitization: 1.0,
        });
        inj.set_cycle(0);
        let v = inj.tap32("narrow", 0);
        assert_eq!(v, (1 << 4) | 1, "second bit wraps to bit 0");
    }

    #[test]
    fn tap1_inverts() {
        let mut inj = FaultInjector::with_fault(Fault {
            site: "flag",
            bit: 0,
            kind: FaultKind::Permanent,
            arm_cycle: 0,
            flavor: SiteFlavor::Single,
            width: 1,
            sensitization: 1.0,
        });
        inj.set_cycle(0);
        assert!(!inj.tap1("flag", true));
        assert!(inj.tap1("flag", false));
    }

    #[test]
    fn multiple_faults_fire_independently() {
        let mut inj = FaultInjector::with_faults(vec![
            Fault { site: "bus_a", bit: 0, ..fault(FaultKind::Permanent) },
            Fault { site: "bus_b", bit: 1, ..fault(FaultKind::Permanent) },
        ]);
        inj.set_cycle(10);
        assert_eq!(inj.tap32("bus_a", 0), 1);
        assert_eq!(inj.tap32("bus_b", 0), 2);
        assert_eq!(inj.tap32("bus_c", 0), 0);
        assert_eq!(inj.flip_count(), 2);
    }

    #[test]
    fn two_faults_on_one_site_compose_by_xor() {
        let mut inj = FaultInjector::with_faults(vec![
            Fault { bit: 0, ..fault(FaultKind::Permanent) },
            Fault { bit: 4, ..fault(FaultKind::Permanent) },
        ]);
        inj.set_cycle(10);
        assert_eq!(inj.tap32("test_bus", 0), 0b10001);
    }

    #[test]
    fn transient_expiry_is_per_fault() {
        let mut inj = FaultInjector::with_faults(vec![
            Fault { bit: 0, ..fault(FaultKind::Transient) },
            Fault { bit: 4, ..fault(FaultKind::Permanent) },
        ]);
        inj.set_cycle(10);
        assert_eq!(inj.tap32("test_bus", 0), 0b10001, "both fire first");
        assert_eq!(inj.tap32("test_bus", 0), 0b10000, "transient expired");
        assert!(!inj.has_transient_on("test_bus"));
    }

    #[test]
    fn has_transient_on_tracks_armed_transients() {
        let mut inj = FaultInjector::with_fault(fault(FaultKind::Transient));
        assert!(!inj.has_transient_on("test_bus"), "not yet armed at cycle 0");
        inj.set_cycle(10);
        assert!(inj.has_transient_on("test_bus"));
        assert!(!inj.has_transient_on("other"));
        let mut inj = FaultInjector::with_fault(fault(FaultKind::Permanent));
        inj.set_cycle(10);
        assert!(!inj.has_transient_on("test_bus"));
    }

    #[test]
    fn zero_sensitization_never_fires() {
        let mut inj =
            FaultInjector::with_fault(Fault { sensitization: 0.0, ..fault(FaultKind::Permanent) });
        inj.set_cycle(10);
        for _ in 0..100 {
            assert_eq!(inj.tap32("test_bus", 0), 0);
        }
        assert_eq!(inj.flip_count(), 0);
        assert_eq!(inj.first_flip_cycle(), None);
    }

    #[test]
    fn quiescent_tracks_arming_and_expiry() {
        let mut inj = FaultInjector::none();
        assert!(inj.is_quiescent());
        inj.set_cycle(1_000);
        assert!(inj.is_quiescent());

        let mut inj = FaultInjector::with_fault(fault(FaultKind::Transient));
        assert!(inj.is_quiescent(), "pre-arm counts as quiescent");
        inj.set_cycle(9);
        assert!(inj.is_quiescent());
        inj.set_cycle(10);
        assert!(!inj.is_quiescent(), "armed fault is live");
        assert_eq!(inj.tap32("test_bus", 0), 1 << 3);
        assert!(inj.is_quiescent(), "expired transient goes quiescent again");
        assert!(!inj.has_transient_on("test_bus"));
        // Quiescence must survive further cycle advances.
        inj.set_cycle(11);
        assert!(inj.is_quiescent());
        assert_eq!(inj.tap32("test_bus", 0), 0);
    }

    #[test]
    fn quiescent_false_while_any_slot_live() {
        let mut inj = FaultInjector::with_faults(vec![
            Fault { bit: 0, ..fault(FaultKind::Transient) },
            Fault { bit: 4, arm_cycle: 20, ..fault(FaultKind::Permanent) },
        ]);
        inj.set_cycle(10);
        inj.tap32("test_bus", 0); // transient fires and expires
        assert!(!inj.is_quiescent(), "permanent slot still live");
        inj.set_cycle(20);
        assert_eq!(inj.tap32("test_bus", 0), 1 << 4);
    }

    #[test]
    fn unit_argus_classification() {
        assert!(Unit::ArgusShs.is_argus_hardware());
        assert!(Unit::ArgusWatchdog.is_argus_hardware());
        assert!(!Unit::Alu.is_argus_hardware());
        assert!(!Unit::MemIface.is_argus_hardware());
    }
}
