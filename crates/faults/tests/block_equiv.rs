//! Block-compiled execution equivalence (the tentpole's safety net).
//!
//! The JIT-lite block engine is an optimisation, never a semantic change:
//! machine trajectories, checker verdicts, and campaign classifications
//! must be bit-identical with the plan cache on or off. These tests sweep
//! the whole workload suite (plus the stress kernel) and real injection
//! campaigns — faults arm at arbitrary cycles, including mid-block, which
//! exercises the quiescent-horizon gate and the interpreter fallback.

use argus_compiler::{compile, preplan, EmbedConfig, Mode, Program};
use argus_core::{Argus, ArgusConfig};
use argus_faults::campaign::{run_campaign, CampaignConfig};
use argus_machine::{Machine, MachineConfig, SnapshotState, StepOutcome};
use argus_sim::fault::{FaultInjector, FaultKind};
use argus_workloads::Workload;

const BOUND: u64 = 500_000_000;

fn all_workloads() -> Vec<Workload> {
    let mut ws = argus_workloads::suite();
    ws.push(argus_workloads::stress());
    ws
}

fn build(w: &Workload) -> Program {
    compile(&w.unit, Mode::Argus, &EmbedConfig::default())
        .unwrap_or_else(|e| panic!("{}: compile failed: {e:?}", w.name))
}

fn mcfg(block_exec: bool) -> MachineConfig {
    MachineConfig { block_exec, ..MachineConfig::default() }
}

/// Every suite workload retires to the same architectural state, digest,
/// and fingerprint whether blocks are compiled or interpreted one op at a
/// time — and the block engine actually engages on each of them.
#[test]
fn block_exec_matches_interpreter_on_every_suite_workload() {
    for w in &all_workloads() {
        let prog = build(w);

        let mut on = Machine::new(mcfg(true));
        prog.load(&mut on);
        preplan(&prog, &mut on);
        let mut inj = FaultInjector::none();
        let res_on = on.run_to_halt(&mut inj, BOUND);

        let mut off = Machine::new(mcfg(false));
        prog.load(&mut off);
        let mut inj = FaultInjector::none();
        let res_off = off.run_to_halt(&mut inj, BOUND);

        assert!(res_on.halted, "{}: block-exec run did not halt", w.name);
        assert_eq!(res_on, res_off, "{}: RunResult diverged", w.name);
        assert_eq!(on.state_digest(), off.state_digest(), "{}: state digest diverged", w.name);
        assert_eq!(
            on.state_fingerprint(),
            off.state_fingerprint(),
            "{}: state fingerprint diverged",
            w.name
        );

        let stats = on.take_exec_stats();
        assert!(stats.plan_hits > 0, "{}: block engine never engaged ({stats:?})", w.name);
        let off_stats = off.take_exec_stats();
        assert_eq!(
            (off_stats.plan_hits, off_stats.plan_misses, off_stats.plan_fallbacks),
            (0, 0, 0),
            "{}: interpreter-only machine counted plan activity",
            w.name
        );
    }
}

/// Drives machine + checker to halt, taking the checker-batched block path
/// whenever the gates allow (exactly the campaign's golden-run shape).
/// Returns how many blocks were verified as batches.
fn run_checked(m: &mut Machine, argus: &mut Argus, prog: &Program) -> u64 {
    if let Some(d) = prog.entry_dcs {
        argus.expect_entry(d);
    }
    let mut inj = FaultInjector::none();
    let mut batched = 0u64;
    loop {
        if let Some(gate) = m.plan_block(&inj, BOUND) {
            if argus.block_ready(&gate, &inj) {
                if let Some(commit) = m.exec_block(&mut inj, &gate) {
                    let plan = m.plan_at(gate.addr).expect("completed block keeps its plan");
                    let events = argus.on_block(plan, &commit, &mut inj);
                    assert!(events.is_empty(), "fault-free run raised a detection");
                    batched += 1;
                    continue;
                }
            }
        }
        match m.step(&mut inj) {
            StepOutcome::Committed(rec) => {
                argus.on_commit(&rec, &mut inj);
            }
            StepOutcome::Stalled => {
                argus.on_stall(1, &mut inj);
            }
            StepOutcome::Halted => break,
        }
        assert!(m.cycle() < BOUND, "fault-free run must halt");
    }
    assert!(argus.events().is_empty(), "fault-free run raised a detection");
    batched
}

/// Batched SHS/DCS checking leaves the checker's own state (signature
/// file, CFC stack, watchdog) bit-identical to per-op checking, on every
/// suite workload.
#[test]
fn batched_checking_matches_per_op_checking_on_every_suite_workload() {
    for w in &all_workloads() {
        let prog = build(w);

        let mut m_blk = Machine::new(mcfg(true));
        prog.load(&mut m_blk);
        preplan(&prog, &mut m_blk);
        let mut a_blk = Argus::new(ArgusConfig::default());
        let batched = run_checked(&mut m_blk, &mut a_blk, &prog);

        let mut m_ref = Machine::new(mcfg(false));
        prog.load(&mut m_ref);
        let mut a_ref = Argus::new(ArgusConfig::default());
        let per_op = run_checked(&mut m_ref, &mut a_ref, &prog);

        assert!(batched > 0, "{}: checker never batched a block", w.name);
        assert_eq!(per_op, 0, "{}: plan cache leaked into the off machine", w.name);
        assert_eq!(
            m_blk.state_digest(),
            m_ref.state_digest(),
            "{}: machine digest diverged under batched checking",
            w.name
        );
        assert_eq!(
            a_blk.state_fingerprint(),
            a_ref.state_fingerprint(),
            "{}: checker state diverged under batched checking",
            w.name
        );
    }
}

/// Full campaigns — transient and permanent faults, with and without
/// snapshot forking — classify every injection identically with the block
/// engine on or off. Arm cycles land anywhere in the golden window, so
/// faults routinely arm mid-block and force the quiescent-horizon bail
/// back to the interpreter.
#[test]
fn campaigns_classify_identically_with_block_exec_on_and_off() {
    let w = argus_workloads::stress();
    for kind in [FaultKind::Transient, FaultKind::Permanent] {
        for snapshot_every in [None, Some(500)] {
            let base = CampaignConfig {
                injections: 40,
                kind,
                seed: 0xB10CEC5,
                snapshot_every,
                ..CampaignConfig::default()
            };
            let mut on_cfg = base.clone();
            on_cfg.mcfg.block_exec = true;
            let mut off_cfg = base;
            off_cfg.mcfg.block_exec = false;

            let on = run_campaign(&w, &on_cfg);
            let off = run_campaign(&w, &off_cfg);

            assert_eq!(
                on.golden_cycles, off.golden_cycles,
                "golden trajectory diverged ({kind:?}, snapshots {snapshot_every:?})"
            );
            assert_eq!(
                format!("{:?}", on.results),
                format!("{:?}", off.results),
                "classification diverged ({kind:?}, snapshots {snapshot_every:?})"
            );
        }
    }
}
