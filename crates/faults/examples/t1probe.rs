use argus_faults::campaign::{run_campaign, CampaignConfig, Outcome};
use argus_sim::fault::FaultKind;
use std::collections::BTreeMap;
fn main() {
    for kind in [FaultKind::Transient, FaultKind::Permanent] {
        let rep = run_campaign(
            &argus_workloads::stress(),
            &CampaignConfig { injections: 2500, kind, seed: 0xA9_05, ..Default::default() },
        );
        println!("{}", rep.table_row());
        println!("coverage {:.1}%", 100.0 * rep.unmasked_coverage());
        let mut sdc: BTreeMap<&str, u32> = BTreeMap::new();
        for r in &rep.results {
            if r.outcome == Outcome::UnmaskedUndetected {
                *sdc.entry(r.point.site.name).or_insert(0) += 1;
            }
        }
        println!("SDC by site: {:?}", sdc);
        println!("attribution:\n{}", rep.attribution);
    }
}
