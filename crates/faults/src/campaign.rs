//! The error-injection campaign and Table-1 classification.

use crate::sites::{full_inventory, sample_points, SamplePoint};
use argus_compiler::{compile, EmbedConfig, Mode, Program};
use argus_core::{Argus, ArgusConfig, CheckerKind, DetectionEvent};
use argus_machine::{Machine, MachineConfig, StepOutcome};
use argus_sim::fault::{FaultInjector, FaultKind};
use argus_sim::rng::SplitMix64;
use argus_sim::stats::CounterSet;
use argus_snapshot::{Snapshot, SnapshotBuilder, SnapshotStore};
use argus_workloads::Workload;
use std::fmt;
use std::sync::Arc;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of injections.
    pub injections: usize,
    /// Transient or permanent bit inversions.
    pub kind: FaultKind,
    /// RNG seed (site sampling and arm-cycle choice).
    pub seed: u64,
    /// Checker configuration.
    pub acfg: ArgusConfig,
    /// Machine configuration (must be Argus mode).
    pub mcfg: MachineConfig,
    /// Extra cycles added to the hang window (the run is declared hung
    /// after `2 × golden_cycles + hang_slack` cycles).
    pub hang_slack: u64,
    /// Structural-masking probability: the fraction of sampled gate
    /// outputs whose faults can never reach an observable signal at all
    /// (untestable/redundant logic, off-path gates). These injections run
    /// but never corrupt anything — the masked-undetected population
    /// gate-level studies report.
    pub structural_mask: f64,
    /// Compiler/embedding configuration (must agree with `acfg` on the
    /// signature width and block-length bound; ablations sweep both
    /// together).
    pub ecfg: EmbedConfig,
    /// Checkpoint the golden run every this many cycles and fork each
    /// injection from the nearest snapshot at or before its arm cycle,
    /// instead of cold-booting and replaying the whole deterministic
    /// prefix. `None` (the default) keeps the cold-boot path. Results are
    /// bit-identical either way — this only trades golden-run memory for
    /// injection throughput.
    pub snapshot_every: Option<u64>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            injections: 1000,
            kind: FaultKind::Transient,
            seed: 0xA9_05,
            acfg: ArgusConfig::default(),
            mcfg: MachineConfig::default(),
            hang_slack: 2_000,
            structural_mask: 0.30,
            ecfg: EmbedConfig::default(),
            snapshot_every: None,
        }
    }
}

/// Classification quadrants (the columns of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Silent data corruption — the bad quadrant.
    UnmaskedUndetected,
    /// Detected genuine error.
    UnmaskedDetected,
    /// No architectural effect, no report.
    MaskedUndetected,
    /// Detected masked error (DME) — a spurious but safe recovery.
    MaskedDetected,
}

impl Outcome {
    /// All four quadrants in canonical (Table-1 column) order.
    pub const ALL: [Outcome; 4] = [
        Outcome::UnmaskedUndetected,
        Outcome::UnmaskedDetected,
        Outcome::MaskedUndetected,
        Outcome::MaskedDetected,
    ];

    /// Position in [`Outcome::ALL`]; stable across runs, used to index
    /// per-outcome count arrays in shard tallies and checkpoints.
    pub fn index(self) -> usize {
        match self {
            Outcome::UnmaskedUndetected => 0,
            Outcome::UnmaskedDetected => 1,
            Outcome::MaskedUndetected => 2,
            Outcome::MaskedDetected => 3,
        }
    }

    /// Stable snake_case label (JSON keys, report fields).
    pub fn label(self) -> &'static str {
        match self {
            Outcome::UnmaskedUndetected => "unmasked_undetected",
            Outcome::UnmaskedDetected => "unmasked_detected",
            Outcome::MaskedUndetected => "masked_undetected",
            Outcome::MaskedDetected => "masked_detected",
        }
    }
}

/// One injection's result.
#[derive(Debug, Clone)]
pub struct InjectionResult {
    /// The injected point.
    pub point: SamplePoint,
    /// Cycle at which the fault armed.
    pub arm_cycle: u64,
    /// Classification.
    pub outcome: Outcome,
    /// First checker to fire, if detected.
    pub detector: Option<CheckerKind>,
    /// Cycles from the fault's first actual corruption to detection.
    pub detect_latency: Option<u64>,
    /// Whether the fault ever corrupted a signal.
    pub exercised: bool,
}

/// Aggregated campaign results.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-injection results.
    pub results: Vec<InjectionResult>,
    /// Fault kind injected.
    pub kind: FaultKind,
    /// First-detector attribution over all detected injections.
    pub attribution: CounterSet,
    /// Golden run length in cycles.
    pub golden_cycles: u64,
}

impl CampaignReport {
    /// Count of one outcome.
    pub fn count(&self, o: Outcome) -> usize {
        self.results.iter().filter(|r| r.outcome == o).count()
    }

    /// Fraction of one outcome (0.0 when empty).
    pub fn fraction(&self, o: Outcome) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.count(o) as f64 / self.results.len() as f64
        }
    }

    /// Coverage of unmasked errors: detected / (detected + undetected).
    pub fn unmasked_coverage(&self) -> f64 {
        let d = self.count(Outcome::UnmaskedDetected) as f64;
        let u = self.count(Outcome::UnmaskedUndetected) as f64;
        if d + u == 0.0 {
            1.0
        } else {
            d / (d + u)
        }
    }

    /// One formatted row in the style of Table 1.
    pub fn table_row(&self) -> String {
        format!(
            "{:9} | {:>8.2}% | {:>8.1}% | {:>8.1}% | {:>8.1}%",
            match self.kind {
                FaultKind::Transient => "transient",
                FaultKind::Permanent => "permanent",
            },
            100.0 * self.fraction(Outcome::UnmaskedUndetected),
            100.0 * self.fraction(Outcome::UnmaskedDetected),
            100.0 * self.fraction(Outcome::MaskedUndetected),
            100.0 * self.fraction(Outcome::MaskedDetected),
        )
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:9} | unmasked | unmasked | masked   | masked", "")?;
        writeln!(f, "{:9} | undet(SDC)| detected | undetect | detected(DME)", "type")?;
        writeln!(f, "{}", self.table_row())?;
        writeln!(f, "unmasked coverage: {:.1}%", 100.0 * self.unmasked_coverage())?;
        writeln!(f, "detection attribution:")?;
        write!(f, "{}", self.attribution)
    }
}

/// Compiles the workload once (Argus mode).
fn compile_workload(w: &Workload, ecfg: &EmbedConfig) -> Program {
    compile(&w.unit, Mode::Argus, ecfg)
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name))
}

struct GoldenRun {
    digest: u64,
    cycles: u64,
}

/// Everything a campaign computes once up front and shares across all
/// injections: the compiled image, the golden-run reference, the hang
/// window, and the sampled injection points. Immutable after construction,
/// so worker threads can share one instance (`&PreparedCampaign` is `Sync`).
pub struct PreparedCampaign {
    prog: Program,
    golden_digest: u64,
    golden_cycles: u64,
    window: u64,
    points: Vec<SamplePoint>,
    /// Golden-run checkpoints when `snapshot_every` is set; shards clone
    /// the `Arc` and fork injections from the read-only store.
    snapshots: Option<Arc<SnapshotStore>>,
}

impl PreparedCampaign {
    /// Number of planned injections.
    pub fn injections(&self) -> usize {
        self.points.len()
    }

    /// Golden (fault-free) run length in cycles.
    pub fn golden_cycles(&self) -> u64 {
        self.golden_cycles
    }

    /// The golden-run snapshot store, when the campaign was prepared with
    /// `snapshot_every`.
    pub fn snapshot_store(&self) -> Option<&Arc<SnapshotStore>> {
        self.snapshots.as_ref()
    }
}

/// Salt separating the per-injection parameter streams (arm cycle +
/// structural-masking roll) from the site-sampling stream.
const INJECTION_STREAM_SALT: u64 = 0x5EED;

fn golden_run(prog: &Program, mcfg: MachineConfig) -> GoldenRun {
    let mut m = Machine::new(mcfg);
    prog.load(&mut m);
    let mut inj = FaultInjector::none();
    let res = m.run_to_halt(&mut inj, 500_000_000);
    assert!(res.halted, "golden run must halt");
    GoldenRun { digest: m.state_digest(), cycles: res.cycles }
}

/// The golden run again, but stepping the checker in lockstep and
/// checkpointing every `every` cycles. The checker runs because its state
/// (signature file, CFC expectation, watchdog) evolves over the fault-free
/// prefix and a forked injection must resume it mid-flight; it never
/// mutates the machine, so the trajectory — and the golden digest — are
/// identical to [`golden_run`].
///
/// Cycle 0 (image loaded, entry DCS armed, nothing executed) is always
/// captured, so every arm cycle has a snapshot at or before it.
fn golden_run_with_snapshots(
    prog: &Program,
    mcfg: MachineConfig,
    acfg: ArgusConfig,
    every: u64,
) -> (GoldenRun, SnapshotStore) {
    let mut m = Machine::new(mcfg);
    prog.load(&mut m);
    let mut argus = Argus::new(acfg);
    if let Some(d) = prog.entry_dcs {
        argus.expect_entry(d);
    }
    let mut builder = SnapshotBuilder::new(every);
    builder.capture_now(&m, &argus);
    let mut inj = FaultInjector::none();
    loop {
        match m.step(&mut inj) {
            StepOutcome::Committed(rec) => {
                argus.on_commit(&rec, &mut inj);
            }
            StepOutcome::Stalled => {
                argus.on_stall(1, &mut inj);
            }
            StepOutcome::Halted => break,
        }
        builder.maybe_capture(&m, &argus);
        assert!(m.cycle() < 500_000_000, "golden run must halt");
    }
    debug_assert!(argus.events().is_empty(), "golden run raised a false positive");
    (GoldenRun { digest: m.state_digest(), cycles: m.cycle() }, builder.finish())
}

/// The faulty-run step loop, shared by the cold-boot and forked paths.
/// Returns (first detection, exercised-at, halted, digest).
fn faulty_loop(
    mut m: Machine,
    mut argus: Argus,
    mut inj: FaultInjector,
    window: u64,
    data_base: u32,
) -> (Option<DetectionEvent>, Option<u64>, bool, u64) {
    let mut first: Option<DetectionEvent> = None;
    loop {
        match m.step(&mut inj) {
            StepOutcome::Committed(rec) => {
                let evs = argus.on_commit(&rec, &mut inj);
                if first.is_none() {
                    first = evs.into_iter().next();
                }
            }
            StepOutcome::Stalled => {
                if let Some(ev) = argus.on_stall(1, &mut inj) {
                    if first.is_none() {
                        first = Some(ev);
                    }
                }
            }
            StepOutcome::Halted => break,
        }
        if m.cycle() > window {
            break;
        }
    }
    // End-of-run scrub bounds the EDC detection latency for errors parked
    // in memory (§4.2).
    if first.is_none() {
        first = argus.scrub_memory(&m, data_base, &mut inj);
    }
    (first, inj.first_flip_cycle(), m.halted(), m.state_digest())
}

/// One faulty run from cold boot.
fn faulty_run(
    prog: &Program,
    cfg: &CampaignConfig,
    fault: argus_sim::fault::Fault,
    window: u64,
) -> (Option<DetectionEvent>, Option<u64>, bool, u64) {
    let mut m = Machine::new(cfg.mcfg);
    prog.load(&mut m);
    let mut argus = Argus::new(cfg.acfg);
    if let Some(d) = prog.entry_dcs {
        argus.expect_entry(d);
    }
    let inj = FaultInjector::with_fault(fault);
    faulty_loop(m, argus, inj, window, prog.data_base)
}

/// One faulty run forked from a golden-run snapshot instead of cold boot.
///
/// Bit-identical to [`faulty_run`] because the fault is inert before its
/// arm cycle: `FaultInjector` passes every tap through unchanged (and
/// keeps no internal state) until `cycle >= arm_cycle`, snapshots are
/// taken at step boundaries, and the snapshot's cycle stamp is at or
/// before the arm cycle — so everything skipped was identical anyway and
/// a fresh injector is indistinguishable from one that sat through it.
fn faulty_run_forked(
    snap: &Snapshot,
    fault: argus_sim::fault::Fault,
    window: u64,
    data_base: u32,
) -> (Option<DetectionEvent>, Option<u64>, bool, u64) {
    debug_assert!(snap.cycle() <= fault.arm_cycle, "forked past the arm cycle");
    let (m, argus) = snap.restore_fresh();
    let inj = FaultInjector::with_fault(fault);
    faulty_loop(m, argus, inj, window, data_base)
}

/// Compiles the workload, takes the golden run, and samples the injection
/// points — the one-time setup shared by the serial and sharded engines.
///
/// # Panics
///
/// Panics if the configuration is inconsistent, the workload fails to
/// compile, or the golden run does not halt.
pub fn prepare_campaign(w: &Workload, cfg: &CampaignConfig) -> PreparedCampaign {
    assert!(cfg.mcfg.argus_mode, "campaigns run signature-embedded binaries");
    assert_eq!(
        cfg.ecfg.sig_width, cfg.acfg.sig_width,
        "embedding and checker signature widths must agree"
    );
    let prog = compile_workload(w, &cfg.ecfg);
    let (golden, snapshots) = match cfg.snapshot_every {
        Some(every) => {
            let (golden, store) = golden_run_with_snapshots(&prog, cfg.mcfg, cfg.acfg, every);
            (golden, Some(Arc::new(store)))
        }
        None => (golden_run(&prog, cfg.mcfg), None),
    };
    let window = golden.cycles * 2 + cfg.hang_slack;
    let inventory = full_inventory();
    let points = sample_points(&inventory, cfg.injections, cfg.seed);
    PreparedCampaign {
        prog,
        golden_digest: golden.digest,
        golden_cycles: golden.cycles,
        window,
        points,
        snapshots,
    }
}

/// Runs and classifies the `index`-th injection of a prepared campaign.
///
/// All randomness for one injection comes from its own
/// [`SplitMix64::stream`] keyed by `(seed, index)`, so the result depends
/// only on the campaign configuration and the index — never on which thread
/// runs it or in what order. This is what makes sharded campaigns
/// bit-identical to serial ones.
///
/// # Panics
///
/// Panics if `index` is out of range.
pub fn run_injection(
    prep: &PreparedCampaign,
    cfg: &CampaignConfig,
    index: usize,
) -> InjectionResult {
    let point = prep.points[index];
    let mut rng = SplitMix64::stream(cfg.seed ^ INJECTION_STREAM_SALT, index as u64);
    // Arm somewhere in the first 3/4 of the golden execution so the
    // fault has time to be exercised and detected.
    let arm_cycle = rng.below((prep.golden_cycles * 3 / 4).max(1));
    let mut fault = point.fault(cfg.kind, arm_cycle);
    if rng.next_f64() < cfg.structural_mask {
        fault.sensitization = 0.0;
    }
    let fork = prep.snapshots.as_deref().and_then(|s| s.nearest_at_or_before(arm_cycle));
    let (detection, exercised_at, halted, digest) = match fork {
        Some(snap) => faulty_run_forked(snap, fault, prep.window, prep.prog.data_base),
        None => faulty_run(&prep.prog, cfg, fault, prep.window),
    };

    let masked = halted && digest == prep.golden_digest;
    let detected = detection.is_some();
    let outcome = match (masked, detected) {
        (false, false) => Outcome::UnmaskedUndetected,
        (false, true) => Outcome::UnmaskedDetected,
        (true, false) => Outcome::MaskedUndetected,
        (true, true) => Outcome::MaskedDetected,
    };
    let detector = detection.as_ref().map(|d| d.checker);
    let detect_latency = match (&detection, exercised_at) {
        (Some(d), Some(x)) => Some(d.cycle.saturating_sub(x)),
        _ => None,
    };
    InjectionResult {
        point,
        arm_cycle,
        outcome,
        detector,
        detect_latency,
        exercised: exercised_at.is_some(),
    }
}

/// Runs a full injection campaign on one workload, serially.
///
/// # Panics
///
/// Panics if the workload fails to compile or the golden run does not halt.
pub fn run_campaign(w: &Workload, cfg: &CampaignConfig) -> CampaignReport {
    let prep = prepare_campaign(w, cfg);
    let mut results = Vec::with_capacity(prep.injections());
    let mut attribution = CounterSet::new();
    for index in 0..prep.injections() {
        let r = run_injection(&prep, cfg, index);
        if let Some(k) = r.detector {
            attribution.bump(&k.to_string());
        }
        results.push(r);
    }
    CampaignReport { results, kind: cfg.kind, attribution, golden_cycles: prep.golden_cycles }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_campaign(kind: FaultKind, n: usize) -> CampaignReport {
        run_campaign(
            &argus_workloads::stress(),
            &CampaignConfig { injections: n, kind, seed: 0xC0FE, ..Default::default() },
        )
    }

    #[test]
    fn campaign_runs_and_classifies() {
        let rep = small_campaign(FaultKind::Transient, 60);
        assert_eq!(rep.results.len(), 60);
        let total: usize = [
            Outcome::UnmaskedUndetected,
            Outcome::UnmaskedDetected,
            Outcome::MaskedUndetected,
            Outcome::MaskedDetected,
        ]
        .iter()
        .map(|&o| rep.count(o))
        .sum();
        assert_eq!(total, 60);
    }

    #[test]
    fn most_unmasked_errors_are_detected() {
        let rep = small_campaign(FaultKind::Permanent, 80);
        let unmasked =
            rep.count(Outcome::UnmaskedDetected) + rep.count(Outcome::UnmaskedUndetected);
        if unmasked >= 10 {
            assert!(
                rep.unmasked_coverage() > 0.80,
                "coverage {:.2} too low",
                rep.unmasked_coverage()
            );
        }
    }

    #[test]
    fn unexercised_transients_are_masked() {
        let rep = small_campaign(FaultKind::Transient, 60);
        for r in &rep.results {
            if !r.exercised {
                assert!(
                    matches!(r.outcome, Outcome::MaskedUndetected),
                    "unexercised fault at {} classified {:?}",
                    r.point.site.name,
                    r.outcome
                );
            }
        }
    }

    #[test]
    fn snapshot_forking_is_bit_identical_to_cold_boot() {
        let w = argus_workloads::stress();
        let cold_cfg = CampaignConfig { injections: 40, seed: 0xF0_0D, ..Default::default() };
        let snap_cfg = CampaignConfig { snapshot_every: Some(500), ..cold_cfg.clone() };

        let cold = prepare_campaign(&w, &cold_cfg);
        let snap = prepare_campaign(&w, &snap_cfg);
        assert_eq!(cold.golden_cycles(), snap.golden_cycles());
        let store = snap.snapshot_store().expect("snapshots were requested");
        assert!(store.len() > 2, "interval 500 over {} cycles", snap.golden_cycles());

        for index in 0..cold.injections() {
            let a = run_injection(&cold, &cold_cfg, index);
            let b = run_injection(&snap, &snap_cfg, index);
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "injection {index} diverged between cold-boot and forked paths"
            );
        }
    }

    #[test]
    fn snapshot_store_shares_untouched_pages() {
        let w = argus_workloads::stress();
        let cfg =
            CampaignConfig { injections: 1, snapshot_every: Some(1_000), ..Default::default() };
        let prep = prepare_campaign(&w, &cfg);
        let store = prep.snapshot_store().unwrap();
        let stats = store.stats();
        assert!(
            stats.dedup_hits > 0,
            "consecutive snapshots should share unchanged pages (stats: {stats:?})"
        );
        assert!(4 * 1024 * (stats.unique_pages as u64) >= stats.unique_bytes);
        assert!(store.materialized_bytes() > stats.unique_bytes, "dedup saved nothing");
    }

    #[test]
    fn report_formats() {
        let rep = small_campaign(FaultKind::Transient, 20);
        let s = rep.to_string();
        assert!(s.contains("transient"));
        assert!(s.contains("coverage"));
    }
}
