//! The error-injection campaign and Table-1 classification.

use crate::sites::{full_inventory, sample_points, SamplePoint};
use argus_compiler::{compile, EmbedConfig, Mode, Program};
use argus_core::{Argus, ArgusConfig, CheckerKind, DetectionEvent};
use argus_machine::{Machine, MachineConfig, StepOutcome};
use argus_sim::fault::{FaultInjector, FaultKind};
use argus_sim::rng::SplitMix64;
use argus_sim::stats::CounterSet;
use argus_workloads::Workload;
use std::fmt;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of injections.
    pub injections: usize,
    /// Transient or permanent bit inversions.
    pub kind: FaultKind,
    /// RNG seed (site sampling and arm-cycle choice).
    pub seed: u64,
    /// Checker configuration.
    pub acfg: ArgusConfig,
    /// Machine configuration (must be Argus mode).
    pub mcfg: MachineConfig,
    /// Extra cycles added to the hang window (the run is declared hung
    /// after `2 × golden_cycles + hang_slack` cycles).
    pub hang_slack: u64,
    /// Structural-masking probability: the fraction of sampled gate
    /// outputs whose faults can never reach an observable signal at all
    /// (untestable/redundant logic, off-path gates). These injections run
    /// but never corrupt anything — the masked-undetected population
    /// gate-level studies report.
    pub structural_mask: f64,
    /// Compiler/embedding configuration (must agree with `acfg` on the
    /// signature width and block-length bound; ablations sweep both
    /// together).
    pub ecfg: EmbedConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            injections: 1000,
            kind: FaultKind::Transient,
            seed: 0xA9_05,
            acfg: ArgusConfig::default(),
            mcfg: MachineConfig::default(),
            hang_slack: 2_000,
            structural_mask: 0.30,
            ecfg: EmbedConfig::default(),
        }
    }
}

/// Classification quadrants (the columns of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Silent data corruption — the bad quadrant.
    UnmaskedUndetected,
    /// Detected genuine error.
    UnmaskedDetected,
    /// No architectural effect, no report.
    MaskedUndetected,
    /// Detected masked error (DME) — a spurious but safe recovery.
    MaskedDetected,
}

impl Outcome {
    /// All four quadrants in canonical (Table-1 column) order.
    pub const ALL: [Outcome; 4] = [
        Outcome::UnmaskedUndetected,
        Outcome::UnmaskedDetected,
        Outcome::MaskedUndetected,
        Outcome::MaskedDetected,
    ];

    /// Position in [`Outcome::ALL`]; stable across runs, used to index
    /// per-outcome count arrays in shard tallies and checkpoints.
    pub fn index(self) -> usize {
        match self {
            Outcome::UnmaskedUndetected => 0,
            Outcome::UnmaskedDetected => 1,
            Outcome::MaskedUndetected => 2,
            Outcome::MaskedDetected => 3,
        }
    }

    /// Stable snake_case label (JSON keys, report fields).
    pub fn label(self) -> &'static str {
        match self {
            Outcome::UnmaskedUndetected => "unmasked_undetected",
            Outcome::UnmaskedDetected => "unmasked_detected",
            Outcome::MaskedUndetected => "masked_undetected",
            Outcome::MaskedDetected => "masked_detected",
        }
    }
}

/// One injection's result.
#[derive(Debug, Clone)]
pub struct InjectionResult {
    /// The injected point.
    pub point: SamplePoint,
    /// Cycle at which the fault armed.
    pub arm_cycle: u64,
    /// Classification.
    pub outcome: Outcome,
    /// First checker to fire, if detected.
    pub detector: Option<CheckerKind>,
    /// Cycles from the fault's first actual corruption to detection.
    pub detect_latency: Option<u64>,
    /// Whether the fault ever corrupted a signal.
    pub exercised: bool,
}

/// Aggregated campaign results.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-injection results.
    pub results: Vec<InjectionResult>,
    /// Fault kind injected.
    pub kind: FaultKind,
    /// First-detector attribution over all detected injections.
    pub attribution: CounterSet,
    /// Golden run length in cycles.
    pub golden_cycles: u64,
}

impl CampaignReport {
    /// Count of one outcome.
    pub fn count(&self, o: Outcome) -> usize {
        self.results.iter().filter(|r| r.outcome == o).count()
    }

    /// Fraction of one outcome (0.0 when empty).
    pub fn fraction(&self, o: Outcome) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.count(o) as f64 / self.results.len() as f64
        }
    }

    /// Coverage of unmasked errors: detected / (detected + undetected).
    pub fn unmasked_coverage(&self) -> f64 {
        let d = self.count(Outcome::UnmaskedDetected) as f64;
        let u = self.count(Outcome::UnmaskedUndetected) as f64;
        if d + u == 0.0 {
            1.0
        } else {
            d / (d + u)
        }
    }

    /// One formatted row in the style of Table 1.
    pub fn table_row(&self) -> String {
        format!(
            "{:9} | {:>8.2}% | {:>8.1}% | {:>8.1}% | {:>8.1}%",
            match self.kind {
                FaultKind::Transient => "transient",
                FaultKind::Permanent => "permanent",
            },
            100.0 * self.fraction(Outcome::UnmaskedUndetected),
            100.0 * self.fraction(Outcome::UnmaskedDetected),
            100.0 * self.fraction(Outcome::MaskedUndetected),
            100.0 * self.fraction(Outcome::MaskedDetected),
        )
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:9} | unmasked | unmasked | masked   | masked", "")?;
        writeln!(f, "{:9} | undet(SDC)| detected | undetect | detected(DME)", "type")?;
        writeln!(f, "{}", self.table_row())?;
        writeln!(f, "unmasked coverage: {:.1}%", 100.0 * self.unmasked_coverage())?;
        writeln!(f, "detection attribution:")?;
        write!(f, "{}", self.attribution)
    }
}

/// Compiles the workload once (Argus mode).
fn compile_workload(w: &Workload, ecfg: &EmbedConfig) -> Program {
    compile(&w.unit, Mode::Argus, ecfg)
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name))
}

struct GoldenRun {
    digest: u64,
    cycles: u64,
}

/// Everything a campaign computes once up front and shares across all
/// injections: the compiled image, the golden-run reference, the hang
/// window, and the sampled injection points. Immutable after construction,
/// so worker threads can share one instance (`&PreparedCampaign` is `Sync`).
pub struct PreparedCampaign {
    prog: Program,
    golden_digest: u64,
    golden_cycles: u64,
    window: u64,
    points: Vec<SamplePoint>,
}

impl PreparedCampaign {
    /// Number of planned injections.
    pub fn injections(&self) -> usize {
        self.points.len()
    }

    /// Golden (fault-free) run length in cycles.
    pub fn golden_cycles(&self) -> u64 {
        self.golden_cycles
    }
}

/// Salt separating the per-injection parameter streams (arm cycle +
/// structural-masking roll) from the site-sampling stream.
const INJECTION_STREAM_SALT: u64 = 0x5EED;

fn golden_run(prog: &Program, mcfg: MachineConfig) -> GoldenRun {
    let mut m = Machine::new(mcfg);
    prog.load(&mut m);
    let mut inj = FaultInjector::none();
    let res = m.run_to_halt(&mut inj, 500_000_000);
    assert!(res.halted, "golden run must halt");
    GoldenRun { digest: m.state_digest(), cycles: res.cycles }
}

/// One faulty run. Returns (first detection, exercised-at, halted, digest).
fn faulty_run(
    prog: &Program,
    cfg: &CampaignConfig,
    fault: argus_sim::fault::Fault,
    window: u64,
) -> (Option<DetectionEvent>, Option<u64>, bool, u64) {
    let mut m = Machine::new(cfg.mcfg);
    prog.load(&mut m);
    let mut argus = Argus::new(cfg.acfg);
    if let Some(d) = prog.entry_dcs {
        argus.expect_entry(d);
    }
    let mut inj = FaultInjector::with_fault(fault);
    let mut first: Option<DetectionEvent> = None;
    loop {
        match m.step(&mut inj) {
            StepOutcome::Committed(rec) => {
                let evs = argus.on_commit(&rec, &mut inj);
                if first.is_none() {
                    first = evs.into_iter().next();
                }
            }
            StepOutcome::Stalled => {
                if let Some(ev) = argus.on_stall(1, &mut inj) {
                    if first.is_none() {
                        first = Some(ev);
                    }
                }
            }
            StepOutcome::Halted => break,
        }
        if m.cycle() > window {
            break;
        }
    }
    // End-of-run scrub bounds the EDC detection latency for errors parked
    // in memory (§4.2).
    if first.is_none() {
        first = argus.scrub_memory(&m, prog.data_base, &mut inj);
    }
    (first, inj.first_flip_cycle(), m.halted(), m.state_digest())
}

/// Compiles the workload, takes the golden run, and samples the injection
/// points — the one-time setup shared by the serial and sharded engines.
///
/// # Panics
///
/// Panics if the configuration is inconsistent, the workload fails to
/// compile, or the golden run does not halt.
pub fn prepare_campaign(w: &Workload, cfg: &CampaignConfig) -> PreparedCampaign {
    assert!(cfg.mcfg.argus_mode, "campaigns run signature-embedded binaries");
    assert_eq!(
        cfg.ecfg.sig_width, cfg.acfg.sig_width,
        "embedding and checker signature widths must agree"
    );
    let prog = compile_workload(w, &cfg.ecfg);
    let golden = golden_run(&prog, cfg.mcfg);
    let window = golden.cycles * 2 + cfg.hang_slack;
    let inventory = full_inventory();
    let points = sample_points(&inventory, cfg.injections, cfg.seed);
    PreparedCampaign {
        prog,
        golden_digest: golden.digest,
        golden_cycles: golden.cycles,
        window,
        points,
    }
}

/// Runs and classifies the `index`-th injection of a prepared campaign.
///
/// All randomness for one injection comes from its own
/// [`SplitMix64::stream`] keyed by `(seed, index)`, so the result depends
/// only on the campaign configuration and the index — never on which thread
/// runs it or in what order. This is what makes sharded campaigns
/// bit-identical to serial ones.
///
/// # Panics
///
/// Panics if `index` is out of range.
pub fn run_injection(
    prep: &PreparedCampaign,
    cfg: &CampaignConfig,
    index: usize,
) -> InjectionResult {
    let point = prep.points[index];
    let mut rng = SplitMix64::stream(cfg.seed ^ INJECTION_STREAM_SALT, index as u64);
    // Arm somewhere in the first 3/4 of the golden execution so the
    // fault has time to be exercised and detected.
    let arm_cycle = rng.below((prep.golden_cycles * 3 / 4).max(1));
    let mut fault = point.fault(cfg.kind, arm_cycle);
    if rng.next_f64() < cfg.structural_mask {
        fault.sensitization = 0.0;
    }
    let (detection, exercised_at, halted, digest) = faulty_run(&prep.prog, cfg, fault, prep.window);

    let masked = halted && digest == prep.golden_digest;
    let detected = detection.is_some();
    let outcome = match (masked, detected) {
        (false, false) => Outcome::UnmaskedUndetected,
        (false, true) => Outcome::UnmaskedDetected,
        (true, false) => Outcome::MaskedUndetected,
        (true, true) => Outcome::MaskedDetected,
    };
    let detector = detection.as_ref().map(|d| d.checker);
    let detect_latency = match (&detection, exercised_at) {
        (Some(d), Some(x)) => Some(d.cycle.saturating_sub(x)),
        _ => None,
    };
    InjectionResult {
        point,
        arm_cycle,
        outcome,
        detector,
        detect_latency,
        exercised: exercised_at.is_some(),
    }
}

/// Runs a full injection campaign on one workload, serially.
///
/// # Panics
///
/// Panics if the workload fails to compile or the golden run does not halt.
pub fn run_campaign(w: &Workload, cfg: &CampaignConfig) -> CampaignReport {
    let prep = prepare_campaign(w, cfg);
    let mut results = Vec::with_capacity(prep.injections());
    let mut attribution = CounterSet::new();
    for index in 0..prep.injections() {
        let r = run_injection(&prep, cfg, index);
        if let Some(k) = r.detector {
            attribution.bump(&k.to_string());
        }
        results.push(r);
    }
    CampaignReport { results, kind: cfg.kind, attribution, golden_cycles: prep.golden_cycles }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_campaign(kind: FaultKind, n: usize) -> CampaignReport {
        run_campaign(
            &argus_workloads::stress(),
            &CampaignConfig { injections: n, kind, seed: 0xC0FE, ..Default::default() },
        )
    }

    #[test]
    fn campaign_runs_and_classifies() {
        let rep = small_campaign(FaultKind::Transient, 60);
        assert_eq!(rep.results.len(), 60);
        let total: usize = [
            Outcome::UnmaskedUndetected,
            Outcome::UnmaskedDetected,
            Outcome::MaskedUndetected,
            Outcome::MaskedDetected,
        ]
        .iter()
        .map(|&o| rep.count(o))
        .sum();
        assert_eq!(total, 60);
    }

    #[test]
    fn most_unmasked_errors_are_detected() {
        let rep = small_campaign(FaultKind::Permanent, 80);
        let unmasked =
            rep.count(Outcome::UnmaskedDetected) + rep.count(Outcome::UnmaskedUndetected);
        if unmasked >= 10 {
            assert!(
                rep.unmasked_coverage() > 0.80,
                "coverage {:.2} too low",
                rep.unmasked_coverage()
            );
        }
    }

    #[test]
    fn unexercised_transients_are_masked() {
        let rep = small_campaign(FaultKind::Transient, 60);
        for r in &rep.results {
            if !r.exercised {
                assert!(
                    matches!(r.outcome, Outcome::MaskedUndetected),
                    "unexercised fault at {} classified {:?}",
                    r.point.site.name,
                    r.outcome
                );
            }
        }
    }

    #[test]
    fn report_formats() {
        let rep = small_campaign(FaultKind::Transient, 20);
        let s = rep.to_string();
        assert!(s.contains("transient"));
        assert!(s.contains("coverage"));
    }
}
