//! The error-injection campaign and Table-1 classification.

use crate::sites::{full_inventory, sample_points, SamplePoint};
use argus_compiler::{compile, preplan, EmbedConfig, Mode, Program};
use argus_core::{Argus, ArgusConfig, CheckerKind, DetectionEvent};
use argus_invariants::{
    ExecView, Hook, InvariantCtx, InvariantEngine, InvariantMode, SnapshotView, StoreView,
};
pub use argus_machine::ExecStats;
use argus_machine::{Machine, MachineConfig, StepOutcome};
use argus_sim::fault::{FaultInjector, FaultKind};
use argus_sim::rng::SplitMix64;
use argus_sim::stats::CounterSet;
use argus_sim::supervise::{catch_supervised, HangCause, InjectionWatchdog, WatchdogConfig};
use argus_snapshot::{
    combined_fingerprint, MappedStore, MappedStoreWriter, PageCache, Snapshot, SnapshotBuilder,
    SnapshotStore, StoreStats, Workspace, WorkspaceStats, PAGE_WORDS,
};
use argus_workloads::Workload;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of injections.
    pub injections: usize,
    /// Transient or permanent bit inversions.
    pub kind: FaultKind,
    /// RNG seed (site sampling and arm-cycle choice).
    pub seed: u64,
    /// Checker configuration.
    pub acfg: ArgusConfig,
    /// Machine configuration (must be Argus mode).
    pub mcfg: MachineConfig,
    /// Extra cycles added to the hang window (the run is declared hung
    /// after `2 × golden_cycles + hang_slack` cycles).
    pub hang_slack: u64,
    /// Structural-masking probability: the fraction of sampled gate
    /// outputs whose faults can never reach an observable signal at all
    /// (untestable/redundant logic, off-path gates). These injections run
    /// but never corrupt anything — the masked-undetected population
    /// gate-level studies report.
    pub structural_mask: f64,
    /// Compiler/embedding configuration (must agree with `acfg` on the
    /// signature width and block-length bound; ablations sweep both
    /// together).
    pub ecfg: EmbedConfig,
    /// Checkpoint the golden run every this many cycles and fork each
    /// injection from the nearest snapshot at or before its arm cycle,
    /// instead of cold-booting and replaying the whole deterministic
    /// prefix. `None` (the default) keeps the cold-boot path. Results are
    /// bit-identical either way — this only trades golden-run memory for
    /// injection throughput.
    pub snapshot_every: Option<u64>,
    /// Watchdog cycle budget for one injection, as a multiple of the
    /// golden run length (plus `hang_slack`). The budget counts step-loop
    /// *iterations*, so it keeps firing even when the fault corrupts the
    /// simulated cycle counter that the ordinary hang window reads. The
    /// default (4.0) sits well above the hang window's factor of 2, so it
    /// never fires on a run the window would have classified — default
    /// results are bit-identical with or without the watchdog.
    pub inj_cycle_factor: f64,
    /// Wall-clock ceiling per injection — the backstop for true livelocks
    /// where even the iteration count stops being meaningful. `None`
    /// disables it.
    pub inj_wall_limit: Option<Duration>,
    /// Test-only fault injection into the *campaign machinery itself*:
    /// selected injection indices panic or livelock instead of running.
    /// `None` (always, outside resilience tests) leaves every injection
    /// untouched.
    pub chaos: Option<ChaosConfig>,
    /// How a snapshot-enabled injection obtains its machine/checker pair.
    /// Purely a performance knob: results are bit-identical across
    /// strategies (the equivalence suite pins this), so it is excluded
    /// from checkpoint fingerprints and resume stays legal across it.
    pub fork: ForkStrategy,
    /// Short-circuit structurally masked injections (`sensitization == 0`):
    /// such a fault provably never fires (`FaultInjector::fire_mask`
    /// draws against a zero sensitization), and an armed-but-never-firing
    /// fault is observably identical to no fault at all, so the run's
    /// classification is read off a once-per-campaign no-fault template
    /// instead of re-stepping the whole workload. Bit-identical by
    /// construction (the equivalence suite pins this too); the toggle
    /// exists for those tests and for A/B measurements.
    pub shortcut_inert: bool,
    /// Always-on invariant checking: read-only structural assertions over
    /// the machine, checker, snapshot, and bookkeeping state, evaluated at
    /// commit/block/snapshot hooks. Purely observational — checks never
    /// mutate observed state, so results are bit-identical across modes;
    /// `Sampled` (the default) strides the hooks so the overhead stays
    /// inside the bench gates, `Full` checks every hook.
    pub invariants: InvariantMode,
    /// Which backend holds the golden-run snapshot store when
    /// `snapshot_every` is set. Purely a memory/IO knob: forked state is
    /// bit-identical across backends (the equivalence suite pins this), so
    /// like [`ForkStrategy`] it is excluded from checkpoint fingerprints.
    pub store: StoreKind,
}

/// Which backend holds the golden-run snapshot store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// In-RAM content-addressed page pool ([`SnapshotStore`]): every
    /// distinct page resident for the campaign's lifetime. The library
    /// default (no filesystem dependency); the CLI defaults to `Mapped`.
    #[default]
    Ram,
    /// Out-of-core memory-mapped ARGSTORE file ([`MappedStore`]): page
    /// bodies live on disk behind one shared read-only map, workers keep
    /// only a small decoded-page cache resident, so peak RSS stays bounded
    /// however many checkpoints the golden run takes. Falls back to `Ram`
    /// (with a warning) when the store file cannot be written.
    Mapped,
}

impl StoreKind {
    /// Stable label (JSON reports, `--store` flag values).
    pub fn label(self) -> &'static str {
        match self {
            StoreKind::Ram => "ram",
            StoreKind::Mapped => "mmap",
        }
    }

    /// Parses a `--store` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ram" => Some(StoreKind::Ram),
            "mmap" => Some(StoreKind::Mapped),
            _ => None,
        }
    }
}

/// The golden-run snapshot store, whichever backend holds it. Shards and
/// remote-serving coordinators only need the common surface (length,
/// seek-by-cycle, stats); forking dispatches internally.
pub enum CampaignStore {
    /// In-RAM page pool.
    Ram(Arc<SnapshotStore>),
    /// Memory-mapped on-disk ARGSTORE.
    Mapped(Arc<MappedStore>),
}

impl CampaignStore {
    /// Which backend this is.
    pub fn kind(&self) -> StoreKind {
        match self {
            CampaignStore::Ram(_) => StoreKind::Ram,
            CampaignStore::Mapped(_) => StoreKind::Mapped,
        }
    }

    /// The mapped store, when that backend holds it (artifact serving).
    pub fn mapped(&self) -> Option<&Arc<MappedStore>> {
        match self {
            CampaignStore::Mapped(s) => Some(s),
            CampaignStore::Ram(_) => None,
        }
    }

    /// Number of checkpoints.
    pub fn len(&self) -> usize {
        match self {
            CampaignStore::Ram(s) => s.len(),
            CampaignStore::Mapped(s) => s.len(),
        }
    }

    /// Whether the store holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Page-sharing statistics.
    pub fn stats(&self) -> StoreStats {
        match self {
            CampaignStore::Ram(s) => s.stats(),
            CampaignStore::Mapped(s) => s.stats(),
        }
    }

    /// Bytes a store without page sharing would have used.
    pub fn materialized_bytes(&self) -> u64 {
        match self {
            CampaignStore::Ram(s) => s.materialized_bytes(),
            CampaignStore::Mapped(s) => s.materialized_bytes(),
        }
    }

    /// The latest snapshot index at or before `cycle`, if any.
    pub fn nearest_index_at_or_before(&self, cycle: u64) -> Option<usize> {
        match self {
            CampaignStore::Ram(s) => s.nearest_index_at_or_before(cycle),
            CampaignStore::Mapped(s) => s.nearest_index_at_or_before(cycle),
        }
    }

    /// Cycle stamp of snapshot `i`.
    pub fn cycle(&self, i: usize) -> Option<u64> {
        match self {
            CampaignStore::Ram(s) => s.get(i).map(Snapshot::cycle),
            CampaignStore::Mapped(s) => s.cycle(i),
        }
    }

    /// Capture-time fingerprint of snapshot `i`.
    pub fn fingerprint(&self, i: usize) -> Option<u64> {
        match self {
            CampaignStore::Ram(s) => s.get(i).map(Snapshot::fingerprint),
            CampaignStore::Mapped(s) => s.fingerprint(i),
        }
    }

    /// Plain-data observation for the `StoreOpen` invariant hook.
    fn view(&self) -> StoreView {
        match self {
            CampaignStore::Ram(s) => {
                let st = s.stats();
                StoreView {
                    backend: "ram".into(),
                    snapshots: s.len(),
                    pages_distinct: st.pages_distinct,
                    pages_total: st.pages_total,
                    table_lens: s.snapshots().iter().map(Snapshot::page_slots).collect(),
                    expected_lens: s
                        .snapshots()
                        .iter()
                        .map(|x| x.mem_words().div_ceil(PAGE_WORDS))
                        .collect(),
                    cycles: s.snapshots().iter().map(Snapshot::cycle).collect(),
                    max_page_id: None,
                    crc_checks: Vec::new(),
                }
            }
            CampaignStore::Mapped(s) => {
                let st = s.stats();
                let n = s.len();
                // Deterministic spot sample: up to 8 stored pages, evenly
                // strided, re-CRCed against the on-disk index.
                let pages = s.page_count();
                let step = (pages / 8).max(1);
                let crc_checks = (0..pages)
                    .step_by(step)
                    .take(8)
                    .filter_map(|id| s.check_page_crc(id as u32).map(|ok| (id as u32, ok)))
                    .collect();
                StoreView {
                    backend: "mmap".into(),
                    snapshots: n,
                    pages_distinct: st.pages_distinct,
                    pages_total: st.pages_total,
                    table_lens: (0..n).map(|i| s.page_ids(i).map_or(0, <[u32]>::len)).collect(),
                    expected_lens: (0..n)
                        .map(|i| s.mem_words(i).unwrap_or(0).div_ceil(PAGE_WORDS))
                        .collect(),
                    cycles: (0..n).filter_map(|i| s.cycle(i)).collect(),
                    max_page_id: (0..n).filter_map(|i| s.page_ids(i)).flatten().copied().max(),
                    crc_checks,
                }
            }
        }
    }
}

/// How an injection whose campaign has snapshots forks its run state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForkStrategy {
    /// Delta-restore into the worker's reusable [`CampaignWorkspace`]:
    /// one allocation and one warm predecode memo per worker, only
    /// touched pages rewritten. The default.
    #[default]
    Delta,
    /// Build a fresh machine + checker pair per injection and copy every
    /// page (the pre-workspace behaviour; kept for A/B measurement).
    Full,
    /// Ignore snapshots entirely and replay from cold boot (what a
    /// campaign without `snapshot_every` always does).
    Cold,
}

impl ForkStrategy {
    /// Stable label (JSON reports, bench output).
    pub fn label(self) -> &'static str {
        match self {
            ForkStrategy::Delta => "delta",
            ForkStrategy::Full => "full",
            ForkStrategy::Cold => "cold",
        }
    }
}

/// Deliberate campaign-machinery faults for resilience testing: the listed
/// injection indices misbehave instead of running, exercising the panic
/// quarantine and the watchdog exactly the way an organic bug would.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Injection indices that panic mid-run.
    pub panic_at: Vec<usize>,
    /// Injection indices that livelock until the watchdog fires.
    pub livelock_at: Vec<usize>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            injections: 1000,
            kind: FaultKind::Transient,
            seed: 0xA9_05,
            acfg: ArgusConfig::default(),
            mcfg: MachineConfig::default(),
            hang_slack: 2_000,
            structural_mask: 0.30,
            ecfg: EmbedConfig::default(),
            snapshot_every: None,
            inj_cycle_factor: 4.0,
            inj_wall_limit: Some(Duration::from_secs(60)),
            chaos: None,
            fork: ForkStrategy::default(),
            shortcut_inert: true,
            invariants: InvariantMode::default(),
            store: StoreKind::default(),
        }
    }
}

impl CampaignConfig {
    /// Returns a copy with the machine's main memory grown to the
    /// workload's [`Workload::min_mem_bytes`]. Call this at the campaign
    /// entry point — the same configuration must reach both
    /// [`prepare_campaign`] and every `run_injection*` call, or the forked
    /// machines would not match the golden snapshots.
    #[must_use]
    pub fn sized_for(&self, w: &Workload) -> Self {
        let mut cfg = self.clone();
        cfg.mcfg.mem.mem_bytes = cfg.mcfg.mem.mem_bytes.max(w.min_mem_bytes);
        cfg
    }

    /// Watchdog limits for one injection of a campaign whose golden run
    /// took `golden_cycles`.
    pub fn watchdog_config(&self, golden_cycles: u64) -> WatchdogConfig {
        let budget = (golden_cycles as f64 * self.inj_cycle_factor) as u64 + self.hang_slack;
        WatchdogConfig { cycle_budget: budget.max(1), wall_limit: self.inj_wall_limit }
    }
}

/// Classification quadrants (the columns of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Silent data corruption — the bad quadrant.
    UnmaskedUndetected,
    /// Detected genuine error.
    UnmaskedDetected,
    /// No architectural effect, no report.
    MaskedUndetected,
    /// Detected masked error (DME) — a spurious but safe recovery.
    MaskedDetected,
}

impl Outcome {
    /// All four quadrants in canonical (Table-1 column) order.
    pub const ALL: [Outcome; 4] = [
        Outcome::UnmaskedUndetected,
        Outcome::UnmaskedDetected,
        Outcome::MaskedUndetected,
        Outcome::MaskedDetected,
    ];

    /// Position in [`Outcome::ALL`]; stable across runs, used to index
    /// per-outcome count arrays in shard tallies and checkpoints.
    pub fn index(self) -> usize {
        match self {
            Outcome::UnmaskedUndetected => 0,
            Outcome::UnmaskedDetected => 1,
            Outcome::MaskedUndetected => 2,
            Outcome::MaskedDetected => 3,
        }
    }

    /// Stable snake_case label (JSON keys, report fields).
    pub fn label(self) -> &'static str {
        match self {
            Outcome::UnmaskedUndetected => "unmasked_undetected",
            Outcome::UnmaskedDetected => "unmasked_detected",
            Outcome::MaskedUndetected => "masked_undetected",
            Outcome::MaskedDetected => "masked_detected",
        }
    }
}

/// One injection's result.
#[derive(Debug, Clone)]
pub struct InjectionResult {
    /// The injected point.
    pub point: SamplePoint,
    /// Cycle at which the fault armed.
    pub arm_cycle: u64,
    /// Classification.
    pub outcome: Outcome,
    /// First checker to fire, if detected.
    pub detector: Option<CheckerKind>,
    /// Cycles from the fault's first actual corruption to detection.
    pub detect_latency: Option<u64>,
    /// Whether the fault ever corrupted a signal.
    pub exercised: bool,
}

/// One quarantined (panicked) injection, as recorded in shard checkpoints
/// and the final report: everything needed to replay it under a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// Campaign-wide injection index.
    pub index: u64,
    /// Campaign seed (with the index, fully determines the injection).
    pub seed: u64,
    /// The captured panic message.
    pub panic_msg: String,
}

/// What a *supervised* injection produced: a normal Table-1 classification,
/// or one of the two anomalies the supervision layer absorbs instead of
/// crashing the shard. Anomalies are deliberately **not** [`Outcome`]
/// variants — the four-quadrant tallies (and their bit-identity across
/// shard counts) stay exactly as they were; anomalies are counted beside
/// them.
#[derive(Debug, Clone)]
pub enum SupervisedOutcome {
    /// The injection ran to classification.
    Classified(InjectionResult),
    /// The watchdog declared the run hung; no classification exists.
    Hung {
        /// Campaign-wide injection index.
        index: u64,
        /// Which watchdog limit fired.
        cause: HangCause,
    },
    /// The injection panicked and was isolated.
    Quarantined(QuarantineRecord),
}

/// Aggregated campaign results.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-injection results.
    pub results: Vec<InjectionResult>,
    /// Fault kind injected.
    pub kind: FaultKind,
    /// First-detector attribution over all detected injections.
    pub attribution: CounterSet,
    /// Golden run length in cycles.
    pub golden_cycles: u64,
}

impl CampaignReport {
    /// Count of one outcome.
    pub fn count(&self, o: Outcome) -> usize {
        self.results.iter().filter(|r| r.outcome == o).count()
    }

    /// Fraction of one outcome (0.0 when empty).
    pub fn fraction(&self, o: Outcome) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.count(o) as f64 / self.results.len() as f64
        }
    }

    /// Coverage of unmasked errors: detected / (detected + undetected).
    pub fn unmasked_coverage(&self) -> f64 {
        let d = self.count(Outcome::UnmaskedDetected) as f64;
        let u = self.count(Outcome::UnmaskedUndetected) as f64;
        if d + u == 0.0 {
            1.0
        } else {
            d / (d + u)
        }
    }

    /// One formatted row in the style of Table 1.
    pub fn table_row(&self) -> String {
        format!(
            "{:9} | {:>8.2}% | {:>8.1}% | {:>8.1}% | {:>8.1}%",
            match self.kind {
                FaultKind::Transient => "transient",
                FaultKind::Permanent => "permanent",
            },
            100.0 * self.fraction(Outcome::UnmaskedUndetected),
            100.0 * self.fraction(Outcome::UnmaskedDetected),
            100.0 * self.fraction(Outcome::MaskedUndetected),
            100.0 * self.fraction(Outcome::MaskedDetected),
        )
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:9} | unmasked | unmasked | masked   | masked", "")?;
        writeln!(f, "{:9} | undet(SDC)| detected | undetect | detected(DME)", "type")?;
        writeln!(f, "{}", self.table_row())?;
        writeln!(f, "unmasked coverage: {:.1}%", 100.0 * self.unmasked_coverage())?;
        writeln!(f, "detection attribution:")?;
        write!(f, "{}", self.attribution)
    }
}

/// Compiles the workload once (Argus mode).
fn compile_workload(w: &Workload, ecfg: &EmbedConfig) -> Program {
    compile(&w.unit, Mode::Argus, ecfg)
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name))
}

struct GoldenRun {
    digest: u64,
    cycles: u64,
    /// Predecode/plan-cache counters the golden run accumulated.
    exec: ExecStats,
}

/// Everything a campaign computes once up front and shares across all
/// injections: the compiled image, the golden-run reference, the hang
/// window, and the sampled injection points. Immutable after construction,
/// so worker threads can share one instance (`&PreparedCampaign` is `Sync`).
pub struct PreparedCampaign {
    prog: Program,
    golden_digest: u64,
    golden_cycles: u64,
    window: u64,
    points: Vec<SamplePoint>,
    /// Golden-run checkpoints when `snapshot_every` is set; shards share
    /// the read-only store (an `Arc`'d RAM pool, or one mmap of the
    /// ARGSTORE file) and fork injections from it.
    snapshots: Option<CampaignStore>,
    /// Per-snapshot "restored once and matched its fingerprint" flags.
    /// Full-state verification is too expensive per fork, so each snapshot
    /// is verified the first time any worker forks from it and trusted
    /// afterwards.
    snapshot_verified: Vec<AtomicBool>,
    /// Per-snapshot "failed verification" flags; a poisoned snapshot is
    /// never forked from again — affected injections cold-boot instead,
    /// which is bit-identical, just slower.
    snapshot_poisoned: Vec<AtomicBool>,
    /// How many injections fell back to cold boot because their nearest
    /// snapshot was poisoned.
    snapshot_fallbacks: AtomicU64,
    /// Human-readable warnings from snapshot verification failures.
    snapshot_warnings: Mutex<Vec<String>>,
    /// Lazily computed no-fault reference outcome backing the
    /// structurally-masked short-circuit (see
    /// [`CampaignConfig::shortcut_inert`]). One cold-boot replay of the
    /// workload, shared by every worker.
    inert_template: OnceLock<InertTemplate>,
    /// Predecode/plan-cache counters from the golden run (after the
    /// lowering pass warmed the plan cache). Reported under the campaign
    /// report's volatile `"run"` key.
    golden_exec: ExecStats,
    /// The always-on invariant engine shared by every worker. Checks are
    /// read-only, so sharing one engine across threads only aggregates
    /// counters — it never couples run results.
    invariants: Arc<InvariantEngine>,
}

/// What a no-fault run of the campaign's faulty loop produces. A
/// structurally masked fault (`sensitization == 0.0`) never corrupts any
/// tapped value, so its run is observably identical to this template —
/// including the end-of-run scrub and the watchdog verdict, both of which
/// the template run exercises for real.
#[derive(Debug, Clone)]
struct InertTemplate {
    detection: Option<DetectionEvent>,
    halted: bool,
    digest: u64,
    hung: Option<HangCause>,
}

/// A worker's reusable injection state: the delta-restore [`Workspace`]
/// consecutive forked injections rewrite in place. One per worker thread;
/// dropping it just frees the resident machine.
#[derive(Debug, Default)]
pub struct CampaignWorkspace {
    ws: Workspace,
    /// Resident decoded-page cache for mapped-store restores. This — not
    /// the store — is what bounds a worker's peak RSS: page bodies stay on
    /// disk behind the shared map and only the entries here are
    /// materialized. Unused by the RAM backend.
    cache: PageCache,
    /// Predecode/plan-cache counters accumulated over every injection run
    /// through this workspace, whatever fork strategy each one took.
    exec: ExecStats,
}

impl CampaignWorkspace {
    /// An empty workspace; the first forked injection populates it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative delta-restore statistics (bench/test observability).
    pub fn stats(&self) -> WorkspaceStats {
        self.ws.stats()
    }

    /// The mapped-store page cache (hit/miss/residency observability).
    pub fn page_cache(&self) -> &PageCache {
        &self.cache
    }

    /// Cumulative predecode/plan-cache counters (campaign `run` reporting).
    pub fn exec_stats(&self) -> ExecStats {
        self.exec
    }

    /// Drains the accumulated predecode/plan-cache counters.
    pub fn take_exec_stats(&mut self) -> ExecStats {
        std::mem::take(&mut self.exec)
    }
}

impl PreparedCampaign {
    /// Number of planned injections.
    pub fn injections(&self) -> usize {
        self.points.len()
    }

    /// Golden (fault-free) run length in cycles.
    pub fn golden_cycles(&self) -> u64 {
        self.golden_cycles
    }

    /// The cycle at which injection `index` arms, derived from the same
    /// per-index RNG stream [`run_injection_in`] uses (each stream is
    /// seeded independently, so peeking here consumes nothing). Schedulers
    /// use this to sort a chunk of indices by arm cycle: injections that
    /// arm near each other fork from the same snapshot, so a warm
    /// workspace rewrites only run-dirty pages instead of cross-snapshot
    /// diffs. Pure per-index — execution order never changes any result.
    pub fn arm_cycle_of(&self, cfg: &CampaignConfig, index: usize) -> u64 {
        let mut rng = SplitMix64::stream(cfg.seed ^ INJECTION_STREAM_SALT, index as u64);
        self.draw_arm_cycle(&mut rng)
    }

    /// Draws the arm cycle from an injection's RNG stream: somewhere in
    /// the first 3/4 of the golden execution, so the fault has time to be
    /// exercised and detected. Single source of truth for
    /// [`Self::arm_cycle_of`] and the injection runner.
    fn draw_arm_cycle(&self, rng: &mut SplitMix64) -> u64 {
        rng.below((self.golden_cycles * 3 / 4).max(1))
    }

    /// The golden-run snapshot store, when the campaign was prepared with
    /// `snapshot_every` (whichever backend holds it).
    pub fn snapshot_store(&self) -> Option<&CampaignStore> {
        self.snapshots.as_ref()
    }

    /// How many injections cold-booted because their snapshot failed
    /// verification.
    pub fn snapshot_fallbacks(&self) -> u64 {
        self.snapshot_fallbacks.load(Ordering::Relaxed)
    }

    /// Predecode/plan-cache counters from the golden run.
    pub fn golden_exec(&self) -> ExecStats {
        self.golden_exec
    }

    /// The campaign's invariant engine (violation counts, report stats).
    pub fn invariants(&self) -> &Arc<InvariantEngine> {
        &self.invariants
    }

    /// The campaign's entry state: a fresh machine with the compiled image
    /// loaded and a checker armed with the entry DCS, at cycle 0 — exactly
    /// what every cold-booted injection starts from. Distributed campaigns
    /// serialize this pair as the content-addressed `golden-entry` artifact
    /// so a remote worker can verify that its locally reconstructed state
    /// is bit-identical to the coordinator's before leasing any work
    /// (catching version skew, a different workload, or a diverging
    /// compiler).
    pub fn entry_state(&self, cfg: &CampaignConfig) -> (Machine, Argus) {
        let mut m = Machine::new(cfg.mcfg);
        self.prog.load(&mut m);
        let mut argus = Argus::new(cfg.acfg);
        if let Some(d) = self.prog.entry_dcs {
            argus.expect_entry(d);
        }
        (m, argus)
    }

    /// Drains accumulated snapshot-corruption warnings.
    pub fn take_snapshot_warnings(&self) -> Vec<String> {
        let mut guard =
            self.snapshot_warnings.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        std::mem::take(&mut *guard)
    }

    /// Runs the snapshot-identity invariant against a freshly restored
    /// pair when the engine's restore clock says this one is due. Read-only
    /// (recomputes the combined fingerprint and compares it to the one the
    /// snapshot recorded at capture time), so forked runs are unaffected.
    fn check_snapshot_identity(&self, i: usize, m: &Machine, argus: &Argus) {
        if !self.invariants.snapshot_due() {
            return;
        }
        let Some(store) = self.snapshots.as_ref() else { return };
        let (Some(expected), Some(cycle)) = (store.fingerprint(i), store.cycle(i)) else {
            return;
        };
        let view = SnapshotView { expected, reconstructed: combined_fingerprint(m, argus), cycle };
        self.invariants.run_hook(Hook::SnapshotRestore, &InvariantCtx::Snapshot(view));
    }

    /// Poisons snapshot `i` after a failed restore and records why; the
    /// caller falls back to cold boot (bit-identical, just slower).
    fn poison_snapshot(&self, i: usize, why: &str) {
        self.snapshot_poisoned[i].store(true, Ordering::Relaxed);
        self.snapshot_fallbacks.fetch_add(1, Ordering::Relaxed);
        self.snapshot_warnings
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(format!("snapshot {i} failed verification, cold-booting: {why}"));
    }

    /// Forks a machine/checker pair from the nearest snapshot at or before
    /// `arm_cycle`, verifying the snapshot's fingerprint on first use.
    /// Returns `None` when no snapshot applies or the applicable one is
    /// corrupt — the caller cold-boots, which yields bit-identical results.
    fn fork_at(&self, arm_cycle: u64, cache: &mut PageCache) -> Option<(Machine, Argus)> {
        let store = self.snapshots.as_ref()?;
        let i = store.nearest_index_at_or_before(arm_cycle)?;
        if self.snapshot_poisoned[i].load(Ordering::Relaxed) {
            self.snapshot_fallbacks.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let verified = self.snapshot_verified[i].load(Ordering::Relaxed);
        // The RAM path is infallible once verified; the mapped path stays
        // fallible on every fork (a page body can fail its CRC on first
        // decode), so both arms surface a Result and share the
        // poison-and-fall-back handling below.
        let restored = match store {
            CampaignStore::Ram(s) => {
                let snap = s.get(i)?;
                if verified {
                    Ok(snap.restore_fresh())
                } else {
                    snap.try_restore_fresh()
                }
            }
            CampaignStore::Mapped(s) => {
                if verified {
                    s.restore_fresh(i, cache)
                } else {
                    s.try_restore_fresh(i, cache)
                }
            }
        };
        match restored {
            Ok(pair) => {
                self.snapshot_verified[i].store(true, Ordering::Relaxed);
                self.check_snapshot_identity(i, &pair.0, &pair.1);
                Some(pair)
            }
            Err(why) => {
                self.poison_snapshot(i, &why);
                None
            }
        }
    }

    /// Delta-forks into `ws` from the nearest snapshot at or before
    /// `arm_cycle`, verifying the snapshot's fingerprint on first use
    /// (with the `try_restore_into` full-restore fallback of whichever
    /// backend holds the store). Returns whether `ws` now holds the forked
    /// pair; `false` means no snapshot applies or the applicable one is
    /// corrupt, and the caller cold-boots — bit-identical, just slower.
    fn fork_into(&self, arm_cycle: u64, ws: &mut Workspace, cache: &mut PageCache) -> bool {
        let Some(store) = self.snapshots.as_ref() else { return false };
        let Some(i) = store.nearest_index_at_or_before(arm_cycle) else { return false };
        if self.snapshot_poisoned[i].load(Ordering::Relaxed) {
            self.snapshot_fallbacks.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let verified = self.snapshot_verified[i].load(Ordering::Relaxed);
        let restored = match store {
            CampaignStore::Ram(s) => match s.get(i) {
                None => return false,
                Some(snap) => {
                    if verified {
                        snap.restore_into(ws);
                        Ok(())
                    } else {
                        snap.try_restore_into(ws).map(|_| ())
                    }
                }
            },
            CampaignStore::Mapped(s) => {
                if verified {
                    s.restore_into(i, ws, cache)
                } else {
                    s.try_restore_into(i, ws, cache).map(|_| ())
                }
            }
        };
        match restored {
            Ok(()) => {
                self.snapshot_verified[i].store(true, Ordering::Relaxed);
                let (m, a) = ws.pair().expect("restore populated the workspace");
                self.check_snapshot_identity(i, m, a);
                true
            }
            Err(why) => {
                self.poison_snapshot(i, &why);
                false
            }
        }
    }

    /// The no-fault reference outcome, computed on first use by replaying
    /// the workload once from cold boot through the real faulty loop
    /// (watchdog, scrub and all) with a pass-through injector.
    fn inert_template(&self, cfg: &CampaignConfig) -> &InertTemplate {
        self.inert_template.get_or_init(|| {
            let mut wd = InjectionWatchdog::new(&cfg.watchdog_config(self.golden_cycles));
            let mut m = Machine::new(cfg.mcfg);
            self.prog.load(&mut m);
            let mut argus = Argus::new(cfg.acfg);
            if let Some(d) = self.prog.entry_dcs {
                argus.expect_entry(d);
            }
            let mut inj = FaultInjector::none();
            let out = faulty_loop(
                &mut m,
                &mut argus,
                &mut inj,
                self.window,
                self.prog.data_base,
                &mut wd,
                &self.invariants,
                None,
            );
            InertTemplate {
                detection: out.detection,
                halted: out.halted,
                digest: out.digest,
                hung: out.hung,
            }
        })
    }

    /// Test-only: flips one bit in the `index`-th snapshot's memory image
    /// so resilience tests can exercise the verification fallback. Returns
    /// `false` when the campaign has no snapshots, the index is out of
    /// range, or the store is already shared.
    #[doc(hidden)]
    pub fn corrupt_snapshot_for_test(&mut self, index: usize) -> bool {
        match self.snapshots.as_mut() {
            // The mapped file is sealed and mapped read-only; its
            // corruption paths are exercised by the snapshot crate's own
            // post-map mutation tests and the adversarial IO suite.
            Some(CampaignStore::Ram(store)) => match Arc::get_mut(store) {
                Some(store) => store.corrupt_page_for_test(index),
                None => false,
            },
            _ => false,
        }
    }
}

/// Salt separating the per-injection parameter streams (arm cycle +
/// structural-masking roll) from the site-sampling stream.
const INJECTION_STREAM_SALT: u64 = 0x5EED;

fn golden_run(prog: &Program, mcfg: MachineConfig) -> GoldenRun {
    let mut m = Machine::new(mcfg);
    prog.load(&mut m);
    // Lower every statically-reachable block into the plan cache up front;
    // `run_to_halt` then retires whole blocks per loop iteration wherever
    // the block-exec gates allow (bit-identical either way).
    preplan(prog, &mut m);
    let mut inj = FaultInjector::none();
    let res = m.run_to_halt(&mut inj, 500_000_000);
    assert!(res.halted, "golden run must halt");
    GoldenRun { digest: m.state_digest(), cycles: res.cycles, exec: m.take_exec_stats() }
}

/// The golden run's checkpoint sink, whichever backend the campaign
/// selected. The RAM builder cannot fail; the mapped writer surfaces IO
/// errors, which [`prepare_campaign`] degrades to the RAM backend.
enum CaptureSink {
    Ram(SnapshotBuilder),
    Mapped(MappedStoreWriter),
}

impl CaptureSink {
    fn capture_now(&mut self, m: &Machine, argus: &Argus) -> io::Result<()> {
        match self {
            CaptureSink::Ram(b) => {
                b.capture_now(m, argus);
                Ok(())
            }
            CaptureSink::Mapped(w) => w.capture_now(m, argus),
        }
    }

    fn maybe_capture(&mut self, m: &Machine, argus: &Argus) -> io::Result<()> {
        match self {
            CaptureSink::Ram(b) => {
                b.maybe_capture(m, argus);
                Ok(())
            }
            CaptureSink::Mapped(w) => w.maybe_capture(m, argus).map(|_| ()),
        }
    }
}

/// The golden run again, but stepping the checker in lockstep and
/// checkpointing every `every` cycles into `sink`. The checker runs
/// because its state (signature file, CFC expectation, watchdog) evolves
/// over the fault-free prefix and a forked injection must resume it
/// mid-flight; it never mutates the machine, so the trajectory — and the
/// golden digest — are identical to [`golden_run`].
///
/// Cycle 0 (image loaded, entry DCS armed, nothing executed) is always
/// captured, so every arm cycle has a snapshot at or before it. `Err` can
/// only come from a mapped sink's IO.
fn golden_run_with_snapshots(
    prog: &Program,
    mcfg: MachineConfig,
    acfg: ArgusConfig,
    sink: &mut CaptureSink,
) -> io::Result<GoldenRun> {
    let mut m = Machine::new(mcfg);
    prog.load(&mut m);
    let mut argus = Argus::new(acfg);
    if let Some(d) = prog.entry_dcs {
        argus.expect_entry(d);
    }
    sink.capture_now(&m, &argus)?;
    preplan(prog, &mut m);
    let mut inj = FaultInjector::none();
    loop {
        // Checker-batched block execution: the golden run is pristine, so
        // whenever the machine can retire a compiled block and the checker
        // can verify it as one batch (`block_ready`), both advance in one
        // call. Snapshots land on block boundaries — still step boundaries,
        // so forked injections resume exactly as before.
        if let Some(gate) = m.plan_block(&inj, 500_000_000) {
            if argus.block_ready(&gate, &inj) {
                if let Some(commit) = m.exec_block(&mut inj, &gate) {
                    let plan = m.plan_at(gate.addr).expect("completed block keeps its plan");
                    let events = argus.on_block(plan, &commit, &mut inj);
                    debug_assert!(events.is_empty(), "golden run raised a false positive");
                    sink.maybe_capture(&m, &argus)?;
                    continue;
                }
            }
        }
        match m.step(&mut inj) {
            StepOutcome::Committed(rec) => {
                argus.on_commit(&rec, &mut inj);
            }
            StepOutcome::Stalled => {
                argus.on_stall(1, &mut inj);
            }
            StepOutcome::Halted => break,
        }
        sink.maybe_capture(&m, &argus)?;
        assert!(m.cycle() < 500_000_000, "golden run must halt");
    }
    debug_assert!(argus.events().is_empty(), "golden run raised a false positive");
    Ok(GoldenRun { digest: m.state_digest(), cycles: m.cycle(), exec: m.take_exec_stats() })
}

/// The mapped-backend golden capture: stream checkpoints into a temp
/// ARGSTORE file, seal and map it, then unlink the path — the map keeps
/// the bytes alive, nothing stays in the directory listing, and the
/// kernel reclaims the space when the campaign drops the store.
fn mapped_golden_capture(
    prog: &Program,
    cfg: &CampaignConfig,
    every: u64,
) -> io::Result<(GoldenRun, MappedStore)> {
    let writer = MappedStoreWriter::create_temp(every)?;
    let tmp = writer.path().to_path_buf();
    let mut sink = CaptureSink::Mapped(writer);
    let sealed = (|| {
        let golden = golden_run_with_snapshots(prog, cfg.mcfg, cfg.acfg, &mut sink)?;
        let CaptureSink::Mapped(writer) = sink else { unreachable!() };
        Ok((golden, writer.finish()?))
    })();
    let _ = std::fs::remove_file(&tmp);
    sealed
}

/// What one faulty run produced, before classification.
struct FaultyOutcome {
    detection: Option<DetectionEvent>,
    exercised_at: Option<u64>,
    halted: bool,
    digest: u64,
    /// `Some` when the watchdog abandoned the run; the other fields are
    /// then meaningless and the run is unclassifiable.
    hung: Option<HangCause>,
    /// Predecode/plan-cache counters the run accumulated (drained from the
    /// machine, so workspace-resident machines never double-count).
    exec: ExecStats,
}

/// The faulty-run step loop, shared by the cold-boot and forked paths.
///
/// The watchdog is ticked once per iteration *before* stepping, so it
/// bounds the loop even when a fault corrupts the cycle counter that the
/// `window` check reads.
#[allow(clippy::too_many_arguments)]
fn faulty_loop(
    m: &mut Machine,
    argus: &mut Argus,
    inj: &mut FaultInjector,
    window: u64,
    data_base: u32,
    wd: &mut InjectionWatchdog,
    inv: &InvariantEngine,
    scrub_since: Option<u64>,
) -> FaultyOutcome {
    let mut first: Option<DetectionEvent> = None;
    // Invariant-hook strides, advanced only while the run is still
    // pristine (no flip has fired): a fault is *allowed* to corrupt the
    // very state the invariants assert over, so post-flip state is out of
    // scope — divergence detection there belongs to the checker itself.
    // Checks are read-only, so the run's outcome is stride-independent.
    let commit_stride = inv.mode().commit_stride();
    let block_stride = inv.mode().block_stride();
    let mut commits: u64 = 0;
    let mut blocks: u64 = 0;
    loop {
        // Block-compiled fast path: retire a whole basic block per loop
        // iteration when every gate passes. `plan_block` refuses unless the
        // block provably finishes inside both `window` and the injector's
        // quiescent horizon (so no tap inside it could have fired), and the
        // checker — while still live — additionally requires a block it can
        // verify as one batch (`block_ready`: pristine run, simple
        // store-free block, watchdog checker idle). Post-detection only
        // the machine-side gates apply, mirroring the skipped `on_commit`
        // below. `tick_many` settles the supervision-watchdog debt for the
        // interpreter iterations the block replaced (quiescent execution
        // never stalls, so retired ops == replaced iterations), keeping
        // the hung/not-hung verdict bit-identical to the one-step loop.
        if let Some(gate) = m.plan_block(inj, window) {
            if first.is_some() || argus.block_ready(&gate, inj) {
                if let Some(commit) = m.exec_block(inj, &gate) {
                    if let Some(cause) = wd.tick_many(u64::from(commit.executed)) {
                        return FaultyOutcome {
                            detection: None,
                            exercised_at: inj.first_flip_cycle(),
                            halted: false,
                            digest: 0,
                            hung: Some(cause),
                            exec: m.take_exec_stats(),
                        };
                    }
                    if first.is_none() {
                        let plan = m.plan_at(gate.addr).expect("completed block keeps its plan");
                        first = argus.on_block(plan, &commit, inj).into_iter().next();
                        if commit_stride != 0 && inj.first_flip_cycle().is_none() {
                            commits += u64::from(commit.executed);
                            blocks += 1;
                            if blocks.is_multiple_of(block_stride) {
                                inv.run_hook(
                                    Hook::BlockEnd,
                                    &InvariantCtx::Exec(ExecView {
                                        machine: m,
                                        argus,
                                        entry_armed: inv.entry_armed(),
                                        block: Some(plan),
                                    }),
                                );
                            }
                            if commits >= commit_stride {
                                commits = 0;
                                inv.run_hook(
                                    Hook::Commit,
                                    &InvariantCtx::Exec(ExecView {
                                        machine: m,
                                        argus,
                                        entry_armed: inv.entry_armed(),
                                        block: None,
                                    }),
                                );
                            }
                        }
                    }
                    if m.cycle() > window {
                        break;
                    }
                    continue;
                }
            }
        }
        if let Some(cause) = wd.tick() {
            return FaultyOutcome {
                detection: None,
                exercised_at: inj.first_flip_cycle(),
                halted: false,
                digest: 0,
                hung: Some(cause),
                exec: m.take_exec_stats(),
            };
        }
        // Once the first detection is recorded the checker is done: only
        // `first` is ever reported, the fault has provably already fired
        // (a pre-flip run is bit-identical to the golden run, which raises
        // no false positives, so a detection implies a prior flip — and
        // `first_flip_cycle` keeps the first), and checker taps never feed
        // back into architectural state. Skipping `on_commit` from here on
        // changes no reported field and lets the run finish at bare-machine
        // speed — the bulk of a detected run's cycles come after detection.
        match m.step(inj) {
            StepOutcome::Committed(rec) => {
                if first.is_none() {
                    first = argus.on_commit(&rec, inj).into_iter().next();
                    if commit_stride != 0 && inj.first_flip_cycle().is_none() {
                        commits += 1;
                        if commits >= commit_stride {
                            commits = 0;
                            inv.run_hook(
                                Hook::Commit,
                                &InvariantCtx::Exec(ExecView {
                                    machine: m,
                                    argus,
                                    entry_armed: inv.entry_armed(),
                                    block: None,
                                }),
                            );
                        }
                        if rec.block_end {
                            blocks += 1;
                            if blocks.is_multiple_of(block_stride) {
                                inv.run_hook(
                                    Hook::BlockEnd,
                                    &InvariantCtx::Exec(ExecView {
                                        machine: m,
                                        argus,
                                        entry_armed: inv.entry_armed(),
                                        block: None,
                                    }),
                                );
                            }
                        }
                    }
                }
            }
            StepOutcome::Stalled => {
                if first.is_none() {
                    first = argus.on_stall(1, inj);
                }
            }
            StepOutcome::Halted => break,
        }
        if m.cycle() > window {
            break;
        }
    }
    // End-of-run scrub bounds the EDC detection latency for errors parked
    // in memory (§4.2). A delta-forked run passes its fork generation so
    // the scrub skips pages still holding golden-run content (valid EDC
    // by construction — observationally identical, see
    // `Argus::scrub_memory_dirty`).
    if first.is_none() {
        first = match scrub_since {
            Some(since) => argus.scrub_memory_dirty(m, data_base, inj, since),
            None => argus.scrub_memory(m, data_base, inj),
        };
    }
    FaultyOutcome {
        detection: first,
        exercised_at: inj.first_flip_cycle(),
        halted: m.halted(),
        digest: m.state_digest_cached(),
        hung: None,
        exec: m.take_exec_stats(),
    }
}

/// One faulty run from cold boot.
fn faulty_run(
    prog: &Program,
    cfg: &CampaignConfig,
    fault: argus_sim::fault::Fault,
    window: u64,
    wd: &mut InjectionWatchdog,
    inv: &InvariantEngine,
) -> FaultyOutcome {
    let mut m = Machine::new(cfg.mcfg);
    prog.load(&mut m);
    let mut argus = Argus::new(cfg.acfg);
    if let Some(d) = prog.entry_dcs {
        argus.expect_entry(d);
    }
    let mut inj = FaultInjector::with_fault(fault);
    faulty_loop(&mut m, &mut argus, &mut inj, window, prog.data_base, wd, inv, None)
}

/// One faulty run forked from a golden-run snapshot instead of cold boot.
///
/// Bit-identical to [`faulty_run`] because the fault is inert before its
/// arm cycle: `FaultInjector` passes every tap through unchanged (and
/// keeps no internal state) until `cycle >= arm_cycle`, snapshots are
/// taken at step boundaries, and the snapshot's cycle stamp is at or
/// before the arm cycle — so everything skipped was identical anyway and
/// a fresh injector is indistinguishable from one that sat through it.
fn faulty_run_forked(
    pair: (Machine, Argus),
    fault: argus_sim::fault::Fault,
    window: u64,
    data_base: u32,
    wd: &mut InjectionWatchdog,
    inv: &InvariantEngine,
) -> FaultyOutcome {
    let (mut m, mut argus) = pair;
    debug_assert!(m.cycle() <= fault.arm_cycle, "forked past the arm cycle");
    let mut inj = FaultInjector::with_fault(fault);
    faulty_loop(&mut m, &mut argus, &mut inj, window, data_base, wd, inv, None)
}

/// Compiles the workload, takes the golden run, and samples the injection
/// points — the one-time setup shared by the serial and sharded engines.
///
/// # Panics
///
/// Panics if the configuration is inconsistent, the workload fails to
/// compile, or the golden run does not halt.
pub fn prepare_campaign(w: &Workload, cfg: &CampaignConfig) -> PreparedCampaign {
    assert!(cfg.mcfg.argus_mode, "campaigns run signature-embedded binaries");
    assert!(
        cfg.mcfg.mem.mem_bytes >= w.min_mem_bytes,
        "{} needs at least {} bytes of main memory but the campaign machine has {}; \
         size the configuration with CampaignConfig::sized_for",
        w.name,
        w.min_mem_bytes,
        cfg.mcfg.mem.mem_bytes,
    );
    assert_eq!(
        cfg.ecfg.sig_width, cfg.acfg.sig_width,
        "embedding and checker signature widths must agree"
    );
    let prog = compile_workload(w, &cfg.ecfg);
    let mut startup_warnings: Vec<String> = Vec::new();
    let (golden, snapshots) = match cfg.snapshot_every {
        Some(every) => {
            let mapped = if cfg.store == StoreKind::Mapped {
                match mapped_golden_capture(&prog, cfg, every) {
                    Ok(ok) => Some(ok),
                    Err(e) => {
                        startup_warnings.push(format!(
                            "mmap snapshot store unavailable ({e}); campaign degraded to the RAM store"
                        ));
                        None
                    }
                }
            } else {
                None
            };
            match mapped {
                Some((golden, store)) => (golden, Some(CampaignStore::Mapped(Arc::new(store)))),
                None => {
                    let mut sink = CaptureSink::Ram(SnapshotBuilder::new(every));
                    let golden = golden_run_with_snapshots(&prog, cfg.mcfg, cfg.acfg, &mut sink)
                        .expect("the RAM snapshot builder cannot fail");
                    let CaptureSink::Ram(builder) = sink else { unreachable!() };
                    (golden, Some(CampaignStore::Ram(Arc::new(builder.finish()))))
                }
            }
        }
        None => (golden_run(&prog, cfg.mcfg), None),
    };
    let window = golden.cycles * 2 + cfg.hang_slack;
    let inventory = full_inventory();
    let points = sample_points(&inventory, cfg.injections, cfg.seed);
    let nsnaps = snapshots.as_ref().map_or(0, CampaignStore::len);
    let invariants = Arc::new(InvariantEngine::new(cfg.invariants));
    invariants.set_entry_armed(prog.entry_dcs.is_some());
    if invariants.enabled() {
        if let Some(store) = &snapshots {
            invariants.run_hook(Hook::StoreOpen, &InvariantCtx::Store(store.view()));
        }
    }
    PreparedCampaign {
        prog,
        golden_digest: golden.digest,
        golden_cycles: golden.cycles,
        golden_exec: golden.exec,
        window,
        points,
        snapshots,
        snapshot_verified: (0..nsnaps).map(|_| AtomicBool::new(false)).collect(),
        snapshot_poisoned: (0..nsnaps).map(|_| AtomicBool::new(false)).collect(),
        snapshot_fallbacks: AtomicU64::new(0),
        snapshot_warnings: Mutex::new(startup_warnings),
        inert_template: OnceLock::new(),
        invariants,
    }
}

/// [`prepare_campaign`] for a process that already holds the campaign's
/// sealed ARGSTORE — a remote worker that fetched it from the coordinator
/// or found it in its on-disk artifact cache. The golden run is still
/// replayed (its digest and warmed plan cache are needed), but every
/// checkpoint capture and page intern — the expensive half at XL scale —
/// is skipped in favor of the adopted store.
///
/// # Errors
///
/// Returns an error when the store does not plausibly describe this
/// campaign: no snapshots, no cycle-0 checkpoint, checkpoints beyond the
/// golden run's end, or a cycle-0 fingerprint differing from the locally
/// reconstructed entry state. Callers fall back to [`prepare_campaign`],
/// which rebuilds the store from scratch.
///
/// # Panics
///
/// Panics on the same configuration inconsistencies as
/// [`prepare_campaign`].
pub fn prepare_campaign_with_store(
    w: &Workload,
    cfg: &CampaignConfig,
    store: Arc<MappedStore>,
) -> io::Result<PreparedCampaign> {
    assert!(cfg.mcfg.argus_mode, "campaigns run signature-embedded binaries");
    assert!(
        cfg.mcfg.mem.mem_bytes >= w.min_mem_bytes,
        "{} needs at least {} bytes of main memory but the campaign machine has {}; \
         size the configuration with CampaignConfig::sized_for",
        w.name,
        w.min_mem_bytes,
        cfg.mcfg.mem.mem_bytes,
    );
    let prog = compile_workload(w, &cfg.ecfg);
    let golden = golden_run(&prog, cfg.mcfg);
    let bad = |msg: String| Err(io::Error::new(io::ErrorKind::InvalidData, msg));
    if store.is_empty() {
        return bad("adopted store holds no snapshots".into());
    }
    if store.cycle(0) != Some(0) {
        return bad("adopted store is missing the cycle-0 checkpoint".into());
    }
    if let Some(last) = store.cycle(store.len() - 1) {
        if last > golden.cycles {
            return bad(format!(
                "adopted store checkpoints cycle {last}, past this binary's golden run \
                 ({} cycles) — version or config skew",
                golden.cycles
            ));
        }
    }
    let entry_print = {
        let mut m = Machine::new(cfg.mcfg);
        prog.load(&mut m);
        let mut argus = Argus::new(cfg.acfg);
        if let Some(d) = prog.entry_dcs {
            argus.expect_entry(d);
        }
        combined_fingerprint(&m, &argus)
    };
    if store.fingerprint(0) != Some(entry_print) {
        return bad(format!(
            "adopted store's entry fingerprint {:016x?} differs from the locally \
             reconstructed entry state {entry_print:016x} — refusing to fork from a \
             skewed campaign",
            store.fingerprint(0),
        ));
    }
    let window = golden.cycles * 2 + cfg.hang_slack;
    let inventory = full_inventory();
    let points = sample_points(&inventory, cfg.injections, cfg.seed);
    let snapshots = Some(CampaignStore::Mapped(store));
    let nsnaps = snapshots.as_ref().map_or(0, CampaignStore::len);
    let invariants = Arc::new(InvariantEngine::new(cfg.invariants));
    invariants.set_entry_armed(prog.entry_dcs.is_some());
    if invariants.enabled() {
        if let Some(store) = &snapshots {
            invariants.run_hook(Hook::StoreOpen, &InvariantCtx::Store(store.view()));
        }
    }
    Ok(PreparedCampaign {
        prog,
        golden_digest: golden.digest,
        golden_cycles: golden.cycles,
        golden_exec: golden.exec,
        window,
        points,
        snapshots,
        snapshot_verified: (0..nsnaps).map(|_| AtomicBool::new(false)).collect(),
        snapshot_poisoned: (0..nsnaps).map(|_| AtomicBool::new(false)).collect(),
        snapshot_fallbacks: AtomicU64::new(0),
        snapshot_warnings: Mutex::new(Vec::new()),
        inert_template: OnceLock::new(),
        invariants,
    })
}

/// Runs and classifies the `index`-th injection of a prepared campaign.
///
/// All randomness for one injection comes from its own
/// [`SplitMix64::stream`] keyed by `(seed, index)`, so the result depends
/// only on the campaign configuration and the index — never on which thread
/// runs it or in what order. This is what makes sharded campaigns
/// bit-identical to serial ones.
///
/// # Panics
///
/// Panics if `index` is out of range.
pub fn run_injection(
    prep: &PreparedCampaign,
    cfg: &CampaignConfig,
    index: usize,
) -> InjectionResult {
    run_injection_in(prep, cfg, index, &mut CampaignWorkspace::new())
}

/// [`run_injection`] routed through a worker's reusable
/// [`CampaignWorkspace`]: under [`ForkStrategy::Delta`] consecutive calls
/// on one workspace share a single machine allocation (and its warm
/// predecode memo) and rewrite only touched pages. Results are identical
/// to [`run_injection`] — the workspace is a pure performance carrier.
pub fn run_injection_in(
    prep: &PreparedCampaign,
    cfg: &CampaignConfig,
    index: usize,
    ws: &mut CampaignWorkspace,
) -> InjectionResult {
    match run_injection_watched(prep, cfg, index, ws) {
        Ok(r) => r,
        Err(cause) => panic!("injection {index} hung ({})", cause.label()),
    }
}

/// [`run_injection_in`] with the watchdog verdict surfaced instead of
/// panicking: `Err` means the run blew its budget and has no
/// classification.
fn run_injection_watched(
    prep: &PreparedCampaign,
    cfg: &CampaignConfig,
    index: usize,
    ws: &mut CampaignWorkspace,
) -> Result<InjectionResult, HangCause> {
    let point = prep.points[index];
    let mut rng = SplitMix64::stream(cfg.seed ^ INJECTION_STREAM_SALT, index as u64);
    let arm_cycle = prep.draw_arm_cycle(&mut rng);
    let mut fault = point.fault(cfg.kind, arm_cycle);
    if rng.next_f64() < cfg.structural_mask {
        fault.sensitization = 0.0;
    }
    if cfg.shortcut_inert && fault.sensitization == 0.0 {
        let t = prep.inert_template(cfg);
        if let Some(cause) = t.hung {
            return Err(cause);
        }
        return Ok(classify(
            point,
            arm_cycle,
            t.halted && t.digest == prep.golden_digest,
            t.detection.clone(),
            None,
        ));
    }
    let mut wd = InjectionWatchdog::new(&cfg.watchdog_config(prep.golden_cycles));
    let inv = prep.invariants.as_ref();
    let out = match cfg.fork {
        ForkStrategy::Cold => faulty_run(&prep.prog, cfg, fault, prep.window, &mut wd, inv),
        ForkStrategy::Full => match prep.fork_at(arm_cycle, &mut ws.cache) {
            Some(pair) => {
                faulty_run_forked(pair, fault, prep.window, prep.prog.data_base, &mut wd, inv)
            }
            None => faulty_run(&prep.prog, cfg, fault, prep.window, &mut wd, inv),
        },
        ForkStrategy::Delta => {
            if prep.fork_into(arm_cycle, &mut ws.ws, &mut ws.cache) {
                // Pages clean since this generation still hold golden-run
                // content; the end-of-run scrub may skip them.
                let fork_gen = ws.ws.clean_generation();
                let (m, argus) = ws.ws.pair_mut().expect("fork_into populated the workspace");
                debug_assert!(m.cycle() <= fault.arm_cycle, "forked past the arm cycle");
                let mut inj = FaultInjector::with_fault(fault);
                faulty_loop(
                    m,
                    argus,
                    &mut inj,
                    prep.window,
                    prep.prog.data_base,
                    &mut wd,
                    inv,
                    Some(fork_gen),
                )
            } else {
                faulty_run(&prep.prog, cfg, fault, prep.window, &mut wd, inv)
            }
        }
    };
    ws.exec.merge(&out.exec);
    if let Some(cause) = out.hung {
        return Err(cause);
    }

    let masked = out.halted && out.digest == prep.golden_digest;
    Ok(classify(point, arm_cycle, masked, out.detection, out.exercised_at))
}

/// Table-1 classification from a run's observables.
fn classify(
    point: SamplePoint,
    arm_cycle: u64,
    masked: bool,
    detection: Option<DetectionEvent>,
    exercised_at: Option<u64>,
) -> InjectionResult {
    let detected = detection.is_some();
    let outcome = match (masked, detected) {
        (false, false) => Outcome::UnmaskedUndetected,
        (false, true) => Outcome::UnmaskedDetected,
        (true, false) => Outcome::MaskedUndetected,
        (true, true) => Outcome::MaskedDetected,
    };
    let detector = detection.as_ref().map(|d| d.checker);
    let detect_latency = match (&detection, exercised_at) {
        (Some(d), Some(x)) => Some(d.cycle.saturating_sub(x)),
        _ => None,
    };
    InjectionResult {
        point,
        arm_cycle,
        outcome,
        detector,
        detect_latency,
        exercised: exercised_at.is_some(),
    }
}

/// One supervised injection, *without* panic isolation: chaos hooks and
/// the watchdog apply, but a panic propagates to the caller. This is the
/// strict-mode path — and the body that [`run_injection_supervised`] wraps
/// in its panic guard.
pub fn run_injection_guarded(
    prep: &PreparedCampaign,
    cfg: &CampaignConfig,
    index: usize,
) -> SupervisedOutcome {
    run_injection_guarded_in(prep, cfg, index, &mut CampaignWorkspace::new())
}

/// [`run_injection_guarded`] routed through a worker's reusable
/// [`CampaignWorkspace`] (see [`run_injection_in`]).
pub fn run_injection_guarded_in(
    prep: &PreparedCampaign,
    cfg: &CampaignConfig,
    index: usize,
    ws: &mut CampaignWorkspace,
) -> SupervisedOutcome {
    if let Some(chaos) = &cfg.chaos {
        if chaos.panic_at.contains(&index) {
            panic!("chaos: injected panic at injection {index}");
        }
        if chaos.livelock_at.contains(&index) {
            // A real livelock, supervised by a real watchdog: spin until
            // it fires, exactly as the step loop would.
            let mut wd = InjectionWatchdog::new(&cfg.watchdog_config(prep.golden_cycles));
            loop {
                if let Some(cause) = wd.tick() {
                    return SupervisedOutcome::Hung { index: index as u64, cause };
                }
                std::hint::spin_loop();
            }
        }
    }
    match run_injection_watched(prep, cfg, index, ws) {
        Ok(r) => SupervisedOutcome::Classified(r),
        Err(cause) => SupervisedOutcome::Hung { index: index as u64, cause },
    }
}

/// One fully supervised injection: chaos hooks, watchdog, and panic
/// isolation. A panic anywhere inside the injection becomes a
/// [`SupervisedOutcome::Quarantined`] record instead of unwinding the
/// worker; all mutable run state is rebuilt from scratch (or from an
/// immutable snapshot) on the next call, so nothing leaks across runs.
pub fn run_injection_supervised(
    prep: &PreparedCampaign,
    cfg: &CampaignConfig,
    index: usize,
) -> SupervisedOutcome {
    run_injection_supervised_in(prep, cfg, index, &mut CampaignWorkspace::new())
}

/// [`run_injection_supervised`] routed through a worker's reusable
/// [`CampaignWorkspace`]. Unwind-safe: every memory mutation is
/// generation-stamped at write time, so a run that panics (or is
/// abandoned) mid-flight leaves only pages the next delta restore already
/// knows to rewrite, and core/checker state is rewritten in full on every
/// restore anyway.
pub fn run_injection_supervised_in(
    prep: &PreparedCampaign,
    cfg: &CampaignConfig,
    index: usize,
    ws: &mut CampaignWorkspace,
) -> SupervisedOutcome {
    match catch_supervised(|| run_injection_guarded_in(prep, cfg, index, ws)) {
        Ok(out) => out,
        Err(panic_msg) => SupervisedOutcome::Quarantined(QuarantineRecord {
            index: index as u64,
            seed: cfg.seed,
            panic_msg,
        }),
    }
}

/// Runs a full injection campaign on one workload, serially.
///
/// # Panics
///
/// Panics if the workload fails to compile or the golden run does not halt.
pub fn run_campaign(w: &Workload, cfg: &CampaignConfig) -> CampaignReport {
    let cfg = &cfg.sized_for(w);
    let prep = prepare_campaign(w, cfg);
    let mut results = Vec::with_capacity(prep.injections());
    let mut attribution = CounterSet::new();
    let mut ws = CampaignWorkspace::new();
    for index in 0..prep.injections() {
        let r = run_injection_in(&prep, cfg, index, &mut ws);
        if let Some(k) = r.detector {
            attribution.bump(&k.to_string());
        }
        results.push(r);
    }
    CampaignReport { results, kind: cfg.kind, attribution, golden_cycles: prep.golden_cycles }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_campaign(kind: FaultKind, n: usize) -> CampaignReport {
        run_campaign(
            &argus_workloads::stress(),
            &CampaignConfig { injections: n, kind, seed: 0xC0FE, ..Default::default() },
        )
    }

    #[test]
    fn campaign_runs_and_classifies() {
        let rep = small_campaign(FaultKind::Transient, 60);
        assert_eq!(rep.results.len(), 60);
        let total: usize = [
            Outcome::UnmaskedUndetected,
            Outcome::UnmaskedDetected,
            Outcome::MaskedUndetected,
            Outcome::MaskedDetected,
        ]
        .iter()
        .map(|&o| rep.count(o))
        .sum();
        assert_eq!(total, 60);
    }

    #[test]
    fn most_unmasked_errors_are_detected() {
        let rep = small_campaign(FaultKind::Permanent, 80);
        let unmasked =
            rep.count(Outcome::UnmaskedDetected) + rep.count(Outcome::UnmaskedUndetected);
        if unmasked >= 10 {
            assert!(
                rep.unmasked_coverage() > 0.80,
                "coverage {:.2} too low",
                rep.unmasked_coverage()
            );
        }
    }

    #[test]
    fn unexercised_transients_are_masked() {
        let rep = small_campaign(FaultKind::Transient, 60);
        for r in &rep.results {
            if !r.exercised {
                assert!(
                    matches!(r.outcome, Outcome::MaskedUndetected),
                    "unexercised fault at {} classified {:?}",
                    r.point.site.name,
                    r.outcome
                );
            }
        }
    }

    #[test]
    fn snapshot_forking_is_bit_identical_to_cold_boot() {
        let w = argus_workloads::stress();
        let cold_cfg = CampaignConfig { injections: 40, seed: 0xF0_0D, ..Default::default() };
        let snap_cfg = CampaignConfig { snapshot_every: Some(500), ..cold_cfg.clone() };

        let cold = prepare_campaign(&w, &cold_cfg);
        let snap = prepare_campaign(&w, &snap_cfg);
        assert_eq!(cold.golden_cycles(), snap.golden_cycles());
        let store = snap.snapshot_store().expect("snapshots were requested");
        assert!(store.len() > 2, "interval 500 over {} cycles", snap.golden_cycles());

        for index in 0..cold.injections() {
            let a = run_injection(&cold, &cold_cfg, index);
            let b = run_injection(&snap, &snap_cfg, index);
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "injection {index} diverged between cold-boot and forked paths"
            );
        }
    }

    #[test]
    fn snapshot_store_shares_untouched_pages() {
        let w = argus_workloads::stress();
        let cfg =
            CampaignConfig { injections: 1, snapshot_every: Some(1_000), ..Default::default() };
        let prep = prepare_campaign(&w, &cfg);
        let store = prep.snapshot_store().unwrap();
        let stats = store.stats();
        assert!(
            stats.dedup_hits > 0,
            "consecutive snapshots should share unchanged pages (stats: {stats:?})"
        );
        assert!(4 * 1024 * (stats.unique_pages as u64) >= stats.unique_bytes);
        assert!(store.materialized_bytes() > stats.unique_bytes, "dedup saved nothing");
    }

    #[test]
    fn mapped_store_campaign_is_bit_identical_to_ram() {
        let w = argus_workloads::stress();
        let base = CampaignConfig {
            injections: 40,
            seed: 0xF0_0D,
            snapshot_every: Some(500),
            ..Default::default()
        };
        let ram = prepare_campaign(&w, &CampaignConfig { store: StoreKind::Ram, ..base.clone() });
        let mapped =
            prepare_campaign(&w, &CampaignConfig { store: StoreKind::Mapped, ..base.clone() });
        assert_eq!(ram.golden_cycles(), mapped.golden_cycles());
        let ram_store = ram.snapshot_store().unwrap();
        let map_store = mapped.snapshot_store().unwrap();
        assert_eq!(ram_store.kind(), StoreKind::Ram);
        assert_eq!(map_store.kind(), StoreKind::Mapped);
        assert_eq!(ram_store.len(), map_store.len(), "backends captured different checkpoints");
        for i in 0..ram_store.len() {
            assert_eq!(ram_store.cycle(i), map_store.cycle(i), "snapshot {i} cycle");
            assert_eq!(
                ram_store.fingerprint(i),
                map_store.fingerprint(i),
                "snapshot {i} fingerprint"
            );
        }
        let ram_cfg = CampaignConfig { store: StoreKind::Ram, ..base.clone() };
        let map_cfg = CampaignConfig { store: StoreKind::Mapped, ..base.clone() };
        let mut ram_ws = CampaignWorkspace::new();
        let mut map_ws = CampaignWorkspace::new();
        for index in 0..ram.injections() {
            let a = run_injection_in(&ram, &ram_cfg, index, &mut ram_ws);
            let b = run_injection_in(&mapped, &map_cfg, index, &mut map_ws);
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "injection {index} diverged between RAM and mapped stores"
            );
        }
        assert_eq!(mapped.snapshot_fallbacks(), 0, "{:?}", mapped.take_snapshot_warnings());
    }

    #[test]
    fn adopted_store_campaign_is_bit_identical() {
        let w = argus_workloads::stress();
        let cfg = CampaignConfig {
            injections: 25,
            seed: 0xF0_0D,
            snapshot_every: Some(500),
            store: StoreKind::Mapped,
            ..Default::default()
        };
        let fresh = prepare_campaign(&w, &cfg);
        let store = fresh.snapshot_store().unwrap().mapped().unwrap().clone();
        let adopted = prepare_campaign_with_store(&w, &cfg, store)
            .expect("a store from the same binary and config must adopt cleanly");
        assert_eq!(fresh.golden_cycles(), adopted.golden_cycles());
        let mut fresh_ws = CampaignWorkspace::new();
        let mut adopted_ws = CampaignWorkspace::new();
        for index in 0..fresh.injections() {
            let a = run_injection_in(&fresh, &cfg, index, &mut fresh_ws);
            let b = run_injection_in(&adopted, &cfg, index, &mut adopted_ws);
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "injection {index} diverged between the fresh and adopted stores"
            );
        }
        assert_eq!(adopted.snapshot_fallbacks(), 0, "{:?}", adopted.take_snapshot_warnings());

        // A store from a differently configured campaign must be refused
        // up front: a narrower signature width changes the embedded image,
        // so the cycle-0 fingerprints cannot match.
        let other = prepare_campaign(&w, &cfg);
        let store = other.snapshot_store().unwrap().mapped().unwrap().clone();
        let bad_cfg = CampaignConfig {
            acfg: ArgusConfig { sig_width: 4, ..Default::default() },
            ecfg: EmbedConfig { sig_width: 4, ..Default::default() },
            ..cfg.clone()
        };
        let err = prepare_campaign_with_store(&w, &bad_cfg, store);
        assert!(err.is_err(), "a fingerprint-skewed store must not be adopted");
    }

    #[test]
    fn mapped_store_fork_strategies_are_bit_identical() {
        let w = argus_workloads::stress();
        let base = CampaignConfig {
            injections: 30,
            seed: 0xF0_0D,
            snapshot_every: Some(500),
            shortcut_inert: false,
            store: StoreKind::Mapped,
            ..Default::default()
        };
        let delta = run_campaign(&w, &CampaignConfig { fork: ForkStrategy::Delta, ..base.clone() });
        let full = run_campaign(&w, &CampaignConfig { fork: ForkStrategy::Full, ..base.clone() });
        let cold = run_campaign(&w, &CampaignConfig { fork: ForkStrategy::Cold, ..base.clone() });
        assert_eq!(format!("{:?}", delta.results), format!("{:?}", full.results));
        assert_eq!(format!("{:?}", delta.results), format!("{:?}", cold.results));
    }

    #[test]
    fn mapped_store_dedups_and_stays_out_of_core() {
        let w = argus_workloads::stress();
        let cfg = CampaignConfig {
            injections: 1,
            snapshot_every: Some(1_000),
            store: StoreKind::Mapped,
            ..Default::default()
        };
        let prep = prepare_campaign(&w, &cfg);
        let store = prep.snapshot_store().unwrap();
        let stats = store.stats();
        assert!(stats.pages_total > stats.pages_distinct, "no cross-snapshot sharing: {stats:?}");
        assert!(stats.bytes_saved > 0, "{stats:?}");
        assert!(store.materialized_bytes() > 4096 * stats.pages_distinct);
        // The backing temp file is unlinked once mapped.
        let mapped = store.mapped().unwrap();
        assert!(!mapped.path().exists(), "campaign store file was not unlinked");
        // StoreOpen invariants ran clean over the fresh store.
        assert_eq!(prep.invariants().violations(), 0);
    }

    #[test]
    fn store_kind_labels_roundtrip() {
        for k in [StoreKind::Ram, StoreKind::Mapped] {
            assert_eq!(StoreKind::parse(k.label()), Some(k));
        }
        assert_eq!(StoreKind::parse("bogus"), None);
        assert_eq!(StoreKind::default(), StoreKind::Ram);
    }

    #[test]
    fn report_formats() {
        let rep = small_campaign(FaultKind::Transient, 20);
        let s = rep.to_string();
        assert!(s.contains("transient"));
        assert!(s.contains("coverage"));
    }

    #[test]
    fn supervised_matches_unsupervised_on_clean_runs() {
        let w = argus_workloads::stress();
        let cfg = CampaignConfig { injections: 12, seed: 0xBEEF, ..Default::default() };
        let prep = prepare_campaign(&w, &cfg);
        for index in 0..prep.injections() {
            let plain = run_injection(&prep, &cfg, index);
            match run_injection_supervised(&prep, &cfg, index) {
                SupervisedOutcome::Classified(r) => {
                    assert_eq!(format!("{plain:?}"), format!("{r:?}"), "injection {index}");
                }
                other => panic!("clean injection {index} became {other:?}"),
            }
        }
    }

    #[test]
    fn chaos_panic_is_quarantined_with_message() {
        let w = argus_workloads::stress();
        let cfg = CampaignConfig {
            injections: 4,
            chaos: Some(ChaosConfig { panic_at: vec![2], livelock_at: vec![] }),
            ..Default::default()
        };
        let prep = prepare_campaign(&w, &cfg);
        match run_injection_supervised(&prep, &cfg, 2) {
            SupervisedOutcome::Quarantined(q) => {
                assert_eq!(q.index, 2);
                assert_eq!(q.seed, cfg.seed);
                assert!(q.panic_msg.contains("chaos: injected panic at injection 2"));
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        // Neighbours are untouched.
        assert!(matches!(
            run_injection_supervised(&prep, &cfg, 1),
            SupervisedOutcome::Classified(_)
        ));
    }

    #[test]
    fn chaos_livelock_is_classified_hung() {
        let w = argus_workloads::stress();
        let cfg = CampaignConfig {
            injections: 4,
            chaos: Some(ChaosConfig { panic_at: vec![], livelock_at: vec![0] }),
            ..Default::default()
        };
        let prep = prepare_campaign(&w, &cfg);
        match run_injection_supervised(&prep, &cfg, 0) {
            SupervisedOutcome::Hung { index, cause } => {
                assert_eq!(index, 0);
                assert_eq!(cause, HangCause::CycleBudget);
            }
            other => panic!("expected hung, got {other:?}"),
        }
    }

    #[test]
    fn chaos_panic_propagates_in_guarded_mode() {
        let w = argus_workloads::stress();
        let cfg = CampaignConfig {
            injections: 2,
            chaos: Some(ChaosConfig { panic_at: vec![1], livelock_at: vec![] }),
            ..Default::default()
        };
        let prep = prepare_campaign(&w, &cfg);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_injection_guarded(&prep, &cfg, 1)
        }));
        assert!(caught.is_err(), "guarded (strict) mode must propagate panics");
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_cold_boot() {
        let w = argus_workloads::stress();
        let cold_cfg = CampaignConfig { injections: 20, seed: 0xD00D, ..Default::default() };
        let snap_cfg = CampaignConfig { snapshot_every: Some(500), ..cold_cfg.clone() };

        let cold = prepare_campaign(&w, &cold_cfg);
        let mut snap = prepare_campaign(&w, &snap_cfg);
        let nsnaps = snap.snapshot_store().unwrap().len();
        assert!(nsnaps > 1);
        // Corrupt every snapshot: all forks must now fall back.
        for i in 0..nsnaps {
            assert!(snap.corrupt_snapshot_for_test(i), "snapshot {i} not corruptible");
        }
        for index in 0..cold.injections() {
            let a = run_injection(&cold, &cold_cfg, index);
            let b = run_injection(&snap, &snap_cfg, index);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "injection {index} diverged");
        }
        assert!(snap.snapshot_fallbacks() > 0, "no injection hit the poisoned store");
        let warnings = snap.take_snapshot_warnings();
        assert!(!warnings.is_empty());
        assert!(warnings[0].contains("failed verification"));
        assert!(snap.take_snapshot_warnings().is_empty(), "warnings drain once");
    }

    #[test]
    fn fork_strategies_are_bit_identical() {
        let w = argus_workloads::stress();
        let base = CampaignConfig {
            injections: 40,
            seed: 0xF0_0D,
            snapshot_every: Some(500),
            shortcut_inert: false,
            ..Default::default()
        };
        let delta = run_campaign(&w, &CampaignConfig { fork: ForkStrategy::Delta, ..base.clone() });
        let full = run_campaign(&w, &CampaignConfig { fork: ForkStrategy::Full, ..base.clone() });
        let cold = run_campaign(&w, &CampaignConfig { fork: ForkStrategy::Cold, ..base.clone() });
        assert_eq!(format!("{:?}", delta.results), format!("{:?}", full.results));
        assert_eq!(format!("{:?}", delta.results), format!("{:?}", cold.results));
    }

    #[test]
    fn inert_shortcut_is_bit_identical() {
        let w = argus_workloads::stress();
        // structural_mask 1.0 exercises the shortcut on every injection;
        // the default 0.30 exercises the mixed case.
        for mask in [0.30, 1.0] {
            let base = CampaignConfig {
                injections: 30,
                seed: 0xAB_BA,
                snapshot_every: Some(500),
                structural_mask: mask,
                ..Default::default()
            };
            let fast = run_campaign(&w, &CampaignConfig { shortcut_inert: true, ..base.clone() });
            let slow = run_campaign(&w, &CampaignConfig { shortcut_inert: false, ..base.clone() });
            assert_eq!(
                format!("{:?}", fast.results),
                format!("{:?}", slow.results),
                "shortcut diverged at mask {mask}"
            );
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_workspaces() {
        let w = argus_workloads::stress();
        let cfg = CampaignConfig {
            injections: 25,
            seed: 0x1CE,
            snapshot_every: Some(500),
            ..Default::default()
        };
        let prep = prepare_campaign(&w, &cfg);
        let mut shared = CampaignWorkspace::new();
        for index in 0..prep.injections() {
            let reused = run_injection_in(&prep, &cfg, index, &mut shared);
            let fresh = run_injection(&prep, &cfg, index);
            assert_eq!(format!("{reused:?}"), format!("{fresh:?}"), "injection {index}");
        }
        let stats = shared.stats();
        assert!(stats.restores > 0, "snapshot campaign never used the workspace: {stats:?}");
        assert!(stats.pages_skipped > 0, "delta restores never skipped a clean page: {stats:?}");
    }

    #[test]
    fn watchdog_budget_scales_with_factor() {
        let cfg = CampaignConfig { inj_cycle_factor: 1.5, hang_slack: 100, ..Default::default() };
        let wd = cfg.watchdog_config(1000);
        assert_eq!(wd.cycle_budget, 1600);
        assert_eq!(wd.wall_limit, cfg.inj_wall_limit);
    }
}
