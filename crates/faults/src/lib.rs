//! # argus-faults — the error-injection framework
//!
//! Reproduces the paper's §4.1 methodology: single transient and permanent
//! bit-inversion errors at randomly sampled signal sites across the whole
//! design (core datapath, control, memory interface, *and* the Argus-1
//! checker hardware), classified along two axes against a golden run:
//!
//! * **detected?** — did any Argus-1 checker fire?
//! * **masked?** — did the final architectural state still match the
//!   golden run?
//!
//! giving the four quadrants of Table 1 (silent data corruption =
//! unmasked ∧ undetected; DME = masked ∧ detected), the per-checker
//! detection attribution of §4.1.1, and the detection-latency data of
//! §4.2.
//!
//! # Examples
//!
//! ```no_run
//! use argus_faults::campaign::{run_campaign, CampaignConfig};
//! use argus_sim::fault::FaultKind;
//! let report = run_campaign(
//!     &argus_workloads::stress(),
//!     &CampaignConfig { injections: 100, kind: FaultKind::Transient, ..Default::default() },
//! );
//! println!("{}", report.table_row());
//! ```

pub mod campaign;
pub mod latency;
pub mod sites;

pub use campaign::{
    prepare_campaign, prepare_campaign_with_store, run_campaign, run_injection,
    run_injection_guarded, run_injection_guarded_in, run_injection_in, run_injection_supervised,
    run_injection_supervised_in, CampaignConfig, CampaignReport, CampaignStore, CampaignWorkspace,
    ChaosConfig, ForkStrategy, InjectionResult, Outcome, PreparedCampaign, QuarantineRecord,
    StoreKind, SupervisedOutcome,
};
