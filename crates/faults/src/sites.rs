//! The full fault-site inventory and weighted sampling.

use argus_sim::fault::{Fault, FaultKind, SiteDesc};
use argus_sim::rng::SplitMix64;

/// The complete design inventory: core sites plus Argus checker sites.
pub fn full_inventory() -> Vec<SiteDesc> {
    let mut v = argus_machine::sites::core_sites();
    v.extend(argus_core::sites::argus_sites());
    v
}

/// One sampled injection point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplePoint {
    /// The site description.
    pub site: SiteDesc,
    /// Bit position within the signal.
    pub bit: u8,
}

impl SamplePoint {
    /// Materializes a fault at this point.
    pub fn fault(&self, kind: FaultKind, arm_cycle: u64) -> Fault {
        Fault {
            site: self.site.name,
            bit: self.bit,
            kind,
            arm_cycle,
            flavor: self.site.flavor,
            width: self.site.width,
            sensitization: self.site.sensitization,
        }
    }
}

/// Samples `n` injection points, site-weighted (≈ gate-count share) with a
/// uniformly random bit per site — the analogue of the paper's random
/// sample of 5,000 gate outputs from ~40,000.
pub fn sample_points(inventory: &[SiteDesc], n: usize, seed: u64) -> Vec<SamplePoint> {
    let weights: Vec<f64> = inventory.iter().map(|s| s.weight).collect();
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let idx = rng.weighted_index(&weights).expect("inventory has positive weights");
            let site = inventory[idx];
            let bit = rng.below(site.width as u64) as u8;
            SamplePoint { site, bit }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_covers_core_and_checkers() {
        let inv = full_inventory();
        assert!(inv.len() > 50);
        assert!(inv.iter().any(|s| s.unit.is_argus_hardware()));
        assert!(inv.iter().any(|s| !s.unit.is_argus_hardware()));
    }

    #[test]
    fn sampling_is_deterministic_and_in_range() {
        let inv = full_inventory();
        let a = sample_points(&inv, 200, 42);
        let b = sample_points(&inv, 200, 42);
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.site.name, y.site.name);
            assert_eq!(x.bit, y.bit);
            assert!(x.bit < x.site.width);
        }
    }

    #[test]
    fn sampling_respects_weights_roughly() {
        // Register-file cells carry ~8/total of the weight; they should be
        // sampled far more often than the watchdog counter (~0.3).
        let inv = full_inventory();
        let pts = sample_points(&inv, 5000, 7);
        let rf = pts.iter().filter(|p| p.site.name.starts_with("rf_cell")).count();
        let wd = pts.iter().filter(|p| p.site.name == "wd_count").count();
        assert!(rf > wd * 3, "rf {rf} vs wd {wd}");
    }

    #[test]
    fn fault_materialization() {
        let inv = full_inventory();
        let p = sample_points(&inv, 1, 1)[0];
        let f = p.fault(FaultKind::Permanent, 99);
        assert_eq!(f.site, p.site.name);
        assert_eq!(f.arm_cycle, 99);
        assert_eq!(f.width, p.site.width);
    }
}
