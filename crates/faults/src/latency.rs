//! Detection-latency measurement (§4.2).
//!
//! The paper reports qualitative bounds: computation errors are caught the
//! cycle after the erroneous computation; dataflow errors at the end of the
//! current basic block; inter-block control-flow errors by the end of the
//! *next* block; memory (EDC) errors only when the word is next loaded.
//! This module aggregates per-checker latency histograms from campaign
//! results and offers targeted single-site probes for each class.

use crate::campaign::{run_campaign, CampaignConfig, CampaignReport};
use argus_core::CheckerKind;
use argus_sim::stats::Histogram;
use std::collections::BTreeMap;

/// Latency histograms keyed by detecting checker.
#[derive(Debug, Clone, Default)]
pub struct LatencyReport {
    /// Checker → histogram of (detection cycle − first corruption cycle).
    pub per_checker: BTreeMap<String, Histogram>,
}

impl LatencyReport {
    /// Builds the report from campaign results. Only genuine detections
    /// (unmasked errors) are counted — checker-hardware false alarms (DMEs)
    /// would conflate spurious-alarm timing with §4.2's detection latency.
    pub fn from_campaign(rep: &CampaignReport) -> Self {
        let mut per_checker: BTreeMap<String, Histogram> = BTreeMap::new();
        for r in &rep.results {
            if r.outcome != crate::campaign::Outcome::UnmaskedDetected {
                continue;
            }
            if let (Some(k), Some(lat)) = (r.detector, r.detect_latency) {
                per_checker.entry(k.to_string()).or_default().record(lat);
            }
        }
        Self { per_checker }
    }

    /// Histogram for one checker, if it detected anything.
    pub fn checker(&self, k: CheckerKind) -> Option<&Histogram> {
        self.per_checker.get(&k.to_string())
    }

    /// Formats the §4.2-style summary.
    pub fn summary(&self) -> String {
        let mut s = String::from("detection latency (cycles from first corruption):\n");
        for (k, h) in &self.per_checker {
            s.push_str(&format!("  {k:12} {h}\n"));
        }
        s
    }
}

/// Runs a campaign and derives the latency report in one step.
pub fn measure_latency(w: &argus_workloads::Workload, cfg: &CampaignConfig) -> LatencyReport {
    LatencyReport::from_campaign(&run_campaign(w, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_sim::fault::FaultKind;

    #[test]
    fn latency_report_builds_and_orders_checkers_sensibly() {
        let cfg = CampaignConfig {
            injections: 120,
            kind: FaultKind::Permanent,
            seed: 0x1A7,
            ..Default::default()
        };
        let rep = run_campaign(&argus_workloads::stress(), &cfg);
        let lat = LatencyReport::from_campaign(&rep);
        assert!(!lat.per_checker.is_empty(), "some detections expected");
        // Computation-checker detections are same-cycle/next-cycle events;
        // their mean latency must be far below the DCS (block-granular)
        // mean when both are present.
        if let (Some(cc), Some(dcs)) =
            (lat.checker(CheckerKind::Computation), lat.checker(CheckerKind::Dcs))
        {
            if cc.count() >= 5 && dcs.count() >= 5 {
                assert!(cc.mean() <= dcs.mean() + 1.0, "cc {} vs dcs {}", cc.mean(), dcs.mean());
            }
        }
        let s = lat.summary();
        assert!(s.contains("latency"));
    }
}
