//! Appendix B, empirically: Argus-1 detects (nearly) everything an ideal
//! checker detects, except for the documented exceptions — finite-signature
//! aliasing, the modulo checker's aliasing, parity's even-bit blind spot,
//! and the memory-ordering/stale-store class.
//!
//! We run a lockstep golden core (the "ideal Argus") next to the real
//! checker under sampled faults and compare who caught what.

use argus_compiler::{compile, EmbedConfig, Mode};
use argus_core::ideal::IdealChecker;
use argus_core::{Argus, ArgusConfig};
use argus_faults::sites::{full_inventory, sample_points};
use argus_machine::{Machine, MachineConfig, StepOutcome};
use argus_sim::fault::{FaultInjector, FaultKind};

#[test]
fn argus_tracks_the_ideal_checker() {
    let w = argus_workloads::stress();
    let prog = compile(&w.unit, Mode::Argus, &EmbedConfig::default()).unwrap();
    let pristine = {
        let mut m = Machine::new(MachineConfig::default());
        prog.load(&mut m);
        m
    };
    let golden_cycles = {
        let mut m = pristine.clone();
        m.run_to_halt(&mut FaultInjector::none(), 100_000_000).cycles
    };

    let inventory = full_inventory();
    let points = sample_points(&inventory, 220, 0x1DEA);
    let mut ideal_caught = 0u32;
    let mut both_caught = 0u32;
    let mut argus_missed: Vec<&'static str> = Vec::new();

    for (k, p) in points.iter().enumerate() {
        let fault = p.fault(FaultKind::Permanent, 37 * k as u64 % (golden_cycles / 2));
        let mut m = pristine.clone();
        let mut ideal = IdealChecker::new(pristine.clone());
        let mut argus = Argus::new(ArgusConfig::default());
        argus.expect_entry(prog.entry_dcs.unwrap());
        let mut inj = FaultInjector::with_fault(fault);
        let mut ideal_hit = false;
        let mut argus_hit = false;
        loop {
            match m.step(&mut inj) {
                StepOutcome::Committed(rec) => {
                    if !argus_hit && !argus.on_commit(&rec, &mut inj).is_empty() {
                        argus_hit = true;
                    }
                    if !ideal_hit && ideal.on_commit(&rec).is_some() {
                        ideal_hit = true;
                    }
                }
                StepOutcome::Stalled => {
                    if argus.on_stall(1, &mut inj).is_some() {
                        argus_hit = true;
                    }
                }
                StepOutcome::Halted => break,
            }
            if m.cycle() > golden_cycles * 2 + 2_000 {
                break;
            }
        }
        if !argus_hit && argus.scrub_memory(&m, prog.data_base, &mut inj).is_some() {
            argus_hit = true;
        }
        if ideal_hit {
            ideal_caught += 1;
            if argus_hit {
                both_caught += 1;
            } else {
                argus_missed.push(p.site.name);
            }
        }
    }

    assert!(ideal_caught > 30, "sample produced too few ideal detections");
    let ratio = both_caught as f64 / ideal_caught as f64;
    assert!(
        ratio > 0.90,
        "Argus-1 caught only {both_caught}/{ideal_caught} of ideal detections; missed at {argus_missed:?}"
    );
}

#[test]
fn argus_only_detections_are_masked_errors() {
    // The converse: when Argus fires but the ideal checker never sees an
    // architectural deviation, the event must be a detected *masked* error
    // (checker-hardware faults) — by definition harmless.
    let w = argus_workloads::stress();
    let prog = compile(&w.unit, Mode::Argus, &EmbedConfig::default()).unwrap();
    let pristine = {
        let mut m = Machine::new(MachineConfig::default());
        prog.load(&mut m);
        m
    };
    // A fault in the CC adder checker itself: false alarm, no divergence.
    let fault = argus_sim::fault::Fault {
        site: argus_core::sites::CC_ADDER_OUT,
        bit: 3,
        kind: FaultKind::Permanent,
        arm_cycle: 0,
        flavor: argus_sim::fault::SiteFlavor::Single,
        width: 32,
        sensitization: 1.0,
    };
    let mut m = pristine.clone();
    let mut ideal = IdealChecker::new(pristine);
    let mut argus = Argus::new(ArgusConfig::default());
    argus.expect_entry(prog.entry_dcs.unwrap());
    let mut inj = FaultInjector::with_fault(fault);
    loop {
        match m.step(&mut inj) {
            StepOutcome::Committed(rec) => {
                argus.on_commit(&rec, &mut inj);
                assert!(ideal.on_commit(&rec).is_none(), "checker fault corrupted the core!");
            }
            StepOutcome::Stalled => {}
            StepOutcome::Halted => break,
        }
    }
    assert!(
        argus.first_detection().is_some(),
        "a permanently broken checker comparator must false-alarm"
    );
}
