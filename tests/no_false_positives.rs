//! §4.1.2: "To confirm that Argus-1 never incurs false positives, we also
//! performed experiments in which we injected no errors. Argus-1 never
//! reported an error in these experiments."
//!
//! Every workload, every cache configuration, several signature widths,
//! plus the end-of-run memory scrub — all must stay silent on fault-free
//! runs.

use argus_compiler::{compile, EmbedConfig, Mode};
use argus_core::{Argus, ArgusConfig};
use argus_machine::{Machine, MachineConfig, StepOutcome};
use argus_mem::MemConfig;
use argus_sim::fault::FaultInjector;
use argus_workloads::Workload;

fn run_silent(w: &Workload, mcfg: MachineConfig, acfg: ArgusConfig, ecfg: EmbedConfig) {
    let prog = compile(&w.unit, Mode::Argus, &ecfg).unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let mut m = Machine::new(mcfg);
    prog.load(&mut m);
    let mut argus = Argus::new(acfg);
    argus.expect_entry(prog.entry_dcs.expect("argus build has an entry DCS"));
    let mut inj = FaultInjector::none();
    loop {
        match m.step(&mut inj) {
            StepOutcome::Committed(rec) => {
                let evs = argus.on_commit(&rec, &mut inj);
                assert!(evs.is_empty(), "{}: false positive {evs:?}", w.name);
            }
            StepOutcome::Stalled => {
                assert!(argus.on_stall(1, &mut inj).is_none());
            }
            StepOutcome::Halted => break,
        }
        assert!(m.cycle() < 200_000_000, "{}: runaway", w.name);
    }
    assert!(m.halted(), "{}: did not halt", w.name);
    let scrub = argus.scrub_memory(&m, prog.data_base, &mut inj);
    assert!(scrub.is_none(), "{}: scrub false positive {scrub:?}", w.name);
    w.check(&m).unwrap_or_else(|e| panic!("self-check: {e}"));
}

#[test]
fn all_workloads_default_config() {
    let mut ws = argus_workloads::suite();
    ws.push(argus_workloads::stress());
    for w in &ws {
        run_silent(w, MachineConfig::default(), ArgusConfig::default(), EmbedConfig::default());
    }
}

#[test]
fn all_workloads_two_way_caches() {
    for w in argus_workloads::suite() {
        run_silent(
            &w,
            MachineConfig { mem: MemConfig::default().two_way(), ..Default::default() },
            ArgusConfig::default(),
            EmbedConfig::default(),
        );
    }
}

#[test]
fn stress_across_signature_widths() {
    let w = argus_workloads::stress();
    for width in [3u32, 4, 5] {
        run_silent(
            &w,
            MachineConfig::default(),
            ArgusConfig { sig_width: width, ..Default::default() },
            EmbedConfig { sig_width: width, ..Default::default() },
        );
    }
}

#[test]
fn stress_across_split_limits() {
    let w = argus_workloads::stress();
    for limit in [8u32, 12, 24, 48] {
        run_silent(
            &w,
            MachineConfig::default(),
            ArgusConfig::default(),
            EmbedConfig { split_limit: limit, ..Default::default() },
        );
    }
}

#[test]
fn stress_with_alternate_modulus() {
    let w = argus_workloads::stress();
    for m in [3u32, 7, 127] {
        run_silent(
            &w,
            MachineConfig::default(),
            ArgusConfig { modulus: m, ..Default::default() },
            EmbedConfig::default(),
        );
    }
}
