//! Property-based integration tests: randomly generated programs must
//! compile in both modes, produce identical architectural results, and
//! never trip the checker on fault-free runs.

use argus_compiler::{compile, EmbedConfig, Mode, ProgramBuilder};
use argus_core::{Argus, ArgusConfig};
use argus_isa::instr::{AluImmOp, AluOp, Cond, Instr, ShiftOp};
use argus_isa::reg::{r, Reg};
use argus_machine::{Machine, MachineConfig, StepOutcome};
use argus_sim::fault::FaultInjector;
use proptest::prelude::*;

/// One random, always-terminating statement for the generator. Registers
/// are confined to r3..r15 so pointers/link stay intact.
#[derive(Debug, Clone)]
enum GenOp {
    Alu(AluOp, u8, u8, u8),
    Imm(AluImmOp, u8, u8, u16),
    Shift(ShiftOp, u8, u8, u8),
    Mul(u8, u8, u8),
    Div(u8, u8, u8),
    Compare(Cond, u8, u8),
    StoreLoad(u8, u8, u8),
    /// A bounded countdown loop of `n` ALU ops.
    Loop(u8, Vec<(AluOp, u8, u8, u8)>),
}

fn reg_idx() -> impl Strategy<Value = u8> {
    3u8..16
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (
            prop_oneof![
                Just(AluOp::Add),
                Just(AluOp::Sub),
                Just(AluOp::And),
                Just(AluOp::Or),
                Just(AluOp::Xor),
                Just(AluOp::Sll),
                Just(AluOp::Srl),
                Just(AluOp::Sra)
            ],
            reg_idx(),
            reg_idx(),
            reg_idx()
        )
            .prop_map(|(op, d, a, b)| GenOp::Alu(op, d, a, b)),
        (
            prop_oneof![
                Just(AluImmOp::Addi),
                Just(AluImmOp::Andi),
                Just(AluImmOp::Ori),
                Just(AluImmOp::Xori)
            ],
            reg_idx(),
            reg_idx(),
            any::<u16>()
        )
            .prop_map(|(op, d, a, imm)| GenOp::Imm(op, d, a, imm)),
        (
            prop_oneof![Just(ShiftOp::Sll), Just(ShiftOp::Srl), Just(ShiftOp::Sra)],
            reg_idx(),
            reg_idx(),
            0u8..32
        )
            .prop_map(|(op, d, a, sh)| GenOp::Shift(op, d, a, sh)),
        (reg_idx(), reg_idx(), reg_idx()).prop_map(|(d, a, b)| GenOp::Mul(d, a, b)),
        (reg_idx(), reg_idx(), reg_idx()).prop_map(|(d, a, b)| GenOp::Div(d, a, b)),
        (
            prop_oneof![Just(Cond::Eq), Just(Cond::Ltu), Just(Cond::Gts), Just(Cond::Les)],
            reg_idx(),
            reg_idx()
        )
            .prop_map(|(c, a, b)| GenOp::Compare(c, a, b)),
        (reg_idx(), reg_idx(), 0u8..32).prop_map(|(s, d, off)| GenOp::StoreLoad(s, d, off)),
        (
            2u8..6,
            prop::collection::vec(
                (
                    prop_oneof![Just(AluOp::Add), Just(AluOp::Xor), Just(AluOp::Sub)],
                    reg_idx(),
                    reg_idx(),
                    reg_idx()
                ),
                1..4
            )
        )
            .prop_map(|(n, body)| GenOp::Loop(n, body)),
    ]
}

fn build_program(ops: &[GenOp]) -> argus_compiler::ProgramUnit {
    let mut b = ProgramBuilder::new();
    // Seed the registers and a scratch data area.
    for k in 3u8..16 {
        b.li(r(k), 0x1111_u32.wrapping_mul(k as u32) | 1);
    }
    b.li(r(2), 0x8_0000); // scratch pointer
    for (i, op) in ops.iter().enumerate() {
        match op {
            GenOp::Alu(op, d, a, bb) => {
                b.push(Instr::Alu { op: *op, rd: r(*d), ra: r(*a), rb: r(*bb) });
            }
            GenOp::Imm(op, d, a, imm) => {
                b.push(Instr::AluImm { op: *op, rd: r(*d), ra: r(*a), imm: *imm });
            }
            GenOp::Shift(op, d, a, sh) => {
                b.push(Instr::ShiftImm { op: *op, rd: r(*d), ra: r(*a), sh: *sh });
            }
            GenOp::Mul(d, a, bb) => {
                b.mul(r(*d), r(*a), r(*bb));
            }
            GenOp::Div(d, a, bb) => {
                // Guarantee a nonzero divisor without branching.
                b.ori(r(*bb), r(*bb), 1);
                b.div(r(*d), r(*a), r(*bb));
            }
            GenOp::Compare(c, a, bb) => {
                b.sf(*c, r(*a), r(*bb));
            }
            GenOp::StoreLoad(s, d, off) => {
                b.sw(r(2), r(*s), *off as i16 * 4);
                b.lw(r(*d), r(2), *off as i16 * 4);
            }
            GenOp::Loop(n, body) => {
                let lp = format!("gl{i}");
                b.li(r(16), *n as u32);
                b.label(&lp);
                for (op, d, a, bb) in body {
                    b.push(Instr::Alu { op: *op, rd: r(*d), ra: r(*a), rb: r(*bb) });
                }
                b.addi(r(16), r(16), -1);
                b.sfi(Cond::Gts, r(16), 0);
                b.bf(&lp);
                b.nop();
            }
        }
    }
    b.halt();
    b.into_unit()
}

fn run_mode(unit: &argus_compiler::ProgramUnit, argus_mode: bool) -> ([u32; 13], bool) {
    let mode = if argus_mode { Mode::Argus } else { Mode::Baseline };
    let prog = compile(unit, mode, &EmbedConfig::default()).expect("compiles");
    let mut m = Machine::new(MachineConfig { argus_mode, ..Default::default() });
    prog.load(&mut m);
    let mut clean = true;
    if argus_mode {
        let mut argus = Argus::new(ArgusConfig::default());
        argus.expect_entry(prog.entry_dcs.unwrap());
        let mut inj = FaultInjector::none();
        loop {
            match m.step(&mut inj) {
                StepOutcome::Committed(rec) => {
                    if !argus.on_commit(&rec, &mut inj).is_empty() {
                        clean = false;
                    }
                }
                StepOutcome::Stalled => {}
                StepOutcome::Halted => break,
            }
            assert!(m.cycle() < 10_000_000, "runaway generated program");
        }
        if argus.scrub_memory(&m, prog.data_base, &mut inj).is_some() {
            clean = false;
        }
    } else {
        m.run_to_halt(&mut FaultInjector::none(), 10_000_000);
    }
    let mut regs = [0u32; 13];
    for k in 3u8..16 {
        regs[(k - 3) as usize] = m.reg(Reg::new(k));
    }
    (regs, clean)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_programs_agree_across_modes(ops in prop::collection::vec(gen_op(), 1..24)) {
        let unit = build_program(&ops);
        let (base_regs, _) = run_mode(&unit, false);
        let (argus_regs, clean) = run_mode(&unit, true);
        prop_assert!(clean, "false positive on a fault-free generated program");
        prop_assert_eq!(base_regs, argus_regs);
    }
}
