//! End-to-end coverage tests: one targeted fault per error class, each
//! caught by the checker the paper assigns to that class, plus an overall
//! coverage floor from a small campaign.

use argus_compiler::{compile, EmbedConfig, Mode};
use argus_core::{Argus, ArgusConfig, CheckerKind};
use argus_faults::campaign::{run_campaign, CampaignConfig};
use argus_machine::{Machine, MachineConfig, StepOutcome};
use argus_sim::fault::{Fault, FaultInjector, FaultKind, SiteFlavor};

fn first_detection(fault: Fault) -> Option<CheckerKind> {
    let w = argus_workloads::stress();
    let prog = compile(&w.unit, Mode::Argus, &EmbedConfig::default()).unwrap();
    let mut m = Machine::new(MachineConfig::default());
    prog.load(&mut m);
    let mut argus = Argus::new(ArgusConfig::default());
    argus.expect_entry(prog.entry_dcs.unwrap());
    let mut inj = FaultInjector::with_fault(fault);
    loop {
        match m.step(&mut inj) {
            StepOutcome::Committed(rec) => {
                if let Some(ev) = argus.on_commit(&rec, &mut inj).into_iter().next() {
                    return Some(ev.checker);
                }
            }
            StepOutcome::Stalled => {
                if let Some(ev) = argus.on_stall(1, &mut inj) {
                    return Some(ev.checker);
                }
            }
            StepOutcome::Halted => break,
        }
        if m.cycle() > 2_000_000 {
            break;
        }
    }
    argus.scrub_memory(&m, prog.data_base, &mut inj).map(|ev| ev.checker)
}

fn permanent(site: &'static str, bit: u8, width: u8) -> Fault {
    Fault {
        site,
        bit,
        kind: FaultKind::Permanent,
        arm_cycle: 100,
        flavor: SiteFlavor::Single,
        width,
        sensitization: 1.0,
    }
}

#[test]
fn alu_internals_caught_by_computation_checker() {
    use argus_machine::sites::*;
    for site in [ALU_ADDER_OUT, ALU_LOGIC_OUT, ALU_SHIFT_OUT, MUL_LO, DIV_Q] {
        assert_eq!(
            first_detection(permanent(site, 2, 32)),
            Some(CheckerKind::Computation),
            "site {site}"
        );
    }
}

#[test]
fn register_storage_caught_by_parity() {
    assert_eq!(
        first_detection(permanent(argus_machine::machine::RF_CELL_SITES[30], 9, 32)),
        Some(CheckerKind::Parity)
    );
}

#[test]
fn operand_bus_caught_by_parity() {
    use argus_machine::sites::*;
    assert_eq!(first_detection(permanent(EX_OPA_BUS, 5, 32)), Some(CheckerKind::Parity));
}

#[test]
fn decode_trunk_caught_by_dcs() {
    // A trunk fault corrupts FU, sub-checker and SHS unit consistently —
    // only the DCS comparison can see it (§3.3's opcode distribution).
    use argus_machine::sites::*;
    let got = first_detection(permanent(ID_OPC_TRUNK, 27, 32));
    assert!(
        matches!(got, Some(CheckerKind::Dcs) | Some(CheckerKind::Parity)),
        "trunk fault detected by {got:?}"
    );
}

#[test]
fn branch_direction_caught_via_dcs() {
    use argus_machine::sites::*;
    assert_eq!(first_detection(permanent(BR_TAKEN, 0, 1)), Some(CheckerKind::Dcs));
}

#[test]
fn stuck_pipeline_caught_by_watchdog() {
    use argus_machine::sites::*;
    assert_eq!(first_detection(permanent(CTL_STALL_RELEASE, 0, 1)), Some(CheckerKind::Watchdog));
}

#[test]
fn wrong_memory_row_caught_by_parity() {
    use argus_machine::sites::*;
    assert_eq!(first_detection(permanent(DMEM_ROW_ADDR, 6, 14)), Some(CheckerKind::Parity));
}

#[test]
fn load_alignment_caught_by_computation_checker() {
    use argus_machine::sites::*;
    assert_eq!(first_detection(permanent(LSU_ALIGN_OUT, 3, 32)), Some(CheckerKind::Computation));
}

#[test]
fn campaign_coverage_floor() {
    let rep = run_campaign(
        &argus_workloads::stress(),
        &CampaignConfig {
            injections: 600,
            kind: FaultKind::Permanent,
            seed: 0xF100D,
            ..Default::default()
        },
    );
    assert!(
        rep.unmasked_coverage() > 0.93,
        "coverage {:.3} below floor (paper: 0.988)",
        rep.unmasked_coverage()
    );
}

#[test]
fn every_checker_contributes() {
    let rep = run_campaign(
        &argus_workloads::stress(),
        &CampaignConfig {
            injections: 1500,
            kind: FaultKind::Permanent,
            seed: 0xA77B,
            ..Default::default()
        },
    );
    for checker in ["computation", "parity", "dcs"] {
        assert!(
            rep.attribution.get(checker) > 0,
            "{checker} never detected anything: {}",
            rep.attribution
        );
    }
    // The paper's ranking: computation > parity > dcs.
    assert!(rep.attribution.get("computation") > rep.attribution.get("dcs"));
}
