//! Every workload's Argus image must pass static binary verification (the
//! loader-side signature self-consistency check), and verification must be
//! sensitive: corrupting any semantic bit of any instruction in a small
//! image must break it.

use argus_compiler::binver::{verify_image, VerifyError};
use argus_compiler::{compile, EmbedConfig, Mode};
use argus_isa::decode::decode;
use argus_isa::encode::unused_bit_positions;
use argus_isa::instr::Instr;

#[test]
fn all_workload_images_verify() {
    let ecfg = EmbedConfig::default();
    let mut ws = argus_workloads::suite();
    ws.push(argus_workloads::stress());
    for w in &ws {
        let prog = compile(&w.unit, Mode::Argus, &ecfg).unwrap();
        let rep = verify_image(&prog, &ecfg)
            .unwrap_or_else(|e| panic!("{}: verification failed: {e}", w.name));
        assert!(rep.blocks > 3, "{}: suspiciously few blocks", w.name);
        assert!(rep.slots_checked > 0, "{}: nothing was checked", w.name);
    }
}

#[test]
fn verification_is_sensitive_to_semantic_bit_flips() {
    // Build a small program and flip every semantic bit of every
    // instruction word in turn; each flip must be either caught by the
    // verifier or produce a still-consistent image only when the flipped
    // bit is genuinely unused (not part of the embedded stream).
    let mut b = argus_compiler::ProgramBuilder::new();
    b.li(argus_isa::Reg::new(3), 7);
    b.add(argus_isa::Reg::new(4), argus_isa::Reg::new(3), argus_isa::Reg::new(3));
    b.label("next");
    b.sub(argus_isa::Reg::new(5), argus_isa::Reg::new(4), argus_isa::Reg::new(3));
    b.halt();
    let ecfg = EmbedConfig::default();
    let prog = compile(&b.unit(), Mode::Argus, &ecfg).unwrap();
    verify_image(&prog, &ecfg).expect("pristine image verifies");

    let mut caught = 0u32;
    let mut total = 0u32;
    for (k, &w) in prog.code.iter().enumerate() {
        let unused: Vec<u32> = unused_bit_positions(w);
        for bit in 0..32u32 {
            if unused.contains(&bit) {
                continue;
            }
            let flipped = w ^ (1 << bit);
            // Only bits that actually change the decoded instruction are
            // semantic; formats with ignored bits (halt, nop padding, a
            // zero-slot Sig's payload) are genuinely dead storage.
            if decode(flipped) == decode(w) {
                continue;
            }
            // A Signature word's payload/count bits beyond the slots in use
            // are dead storage too (appended after every consumed slot);
            // slot-carrying payload corruption is exercised separately by
            // the compiler's own `corrupting_an_embedded_slot` test. Only
            // the end-of-block bit is structurally semantic here.
            if matches!(decode(w), Instr::Sig { .. }) && bit != 23 {
                continue;
            }
            let mut bad = prog.clone();
            bad.code[k] ^= 1 << bit;
            total += 1;
            if verify_image(&bad, &ecfg).is_err() {
                caught += 1;
            }
        }
    }
    // Residual escapes are 5-bit DCS aliases (≈1/32 per corrupted block).
    let rate = caught as f64 / total as f64;
    assert!(rate > 0.85, "verifier caught only {caught}/{total} semantic bit flips");
    let _ = matches!(decode(0), Instr::Nop); // keep Instr import used
}

#[test]
fn verifier_reports_block_length_violations() {
    let mut b = argus_compiler::ProgramBuilder::new();
    for _ in 0..40 {
        b.add(argus_isa::Reg::new(3), argus_isa::Reg::new(3), argus_isa::Reg::new(4));
    }
    b.halt();
    // Compile with a permissive split limit but verify against a strict
    // block-length bound: the long block must be flagged.
    let loose = EmbedConfig { split_limit: 48, max_block_len: 64, ..Default::default() };
    let strict = EmbedConfig { max_block_len: 16, ..loose };
    let prog = compile(&b.unit(), Mode::Argus, &loose).unwrap();
    match verify_image(&prog, &strict) {
        Err(VerifyError::BlockTooLong { .. }) => {}
        other => panic!("expected BlockTooLong, got {other:?}"),
    }
}
