#!/usr/bin/env bash
# Canary-matrix gate: prove the invariant registry (and, where the
# registry is blind by design, campaign divergence) actually detects
# real checker bugs — not just that it stays quiet on healthy runs.
#
# The `canary` cargo feature compiles ~8 deliberately seeded bugs into
# the checkers and orchestrator, each dormant until its name is set in
# ARGUS_CANARY. This script builds that binary once, proves it is
# byte-identical to the clean binary while dormant, then arms each
# canary in turn and asserts it is caught either by a *named* invariant
# in `run.invariants.per_invariant` or by a divergence in the
# deterministic report payload. Any undetected canary fails the gate
# and is listed by name.
#
# Usage: scripts/canary_matrix.sh [path-to-clean-argus-binary]
set -euo pipefail

BIN="${1:-target/release/argus}"
if [[ ! -x "$BIN" ]]; then
    echo "error: $BIN not found or not executable (cargo build --release first)" >&2
    exit 1
fi

echo "== build canary binary (separate target dir; clean binary untouched) =="
CARGO_TARGET_DIR=target/canary cargo build --release -p argus-cli --features canary
CBIN=target/canary/release/argus

WORK="$(mktemp -d)"
SERVE_PID=""
WORKER_PID=""
cleanup() {
    [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null
    [[ -n "$WORKER_PID" ]] && kill -9 "$WORKER_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

FAILED=()

# Deterministic payload: the report minus the volatile "run" key.
payload() { # payload FILE
    python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
doc.pop("run", None)
print(json.dumps(doc, sort_keys=True))' "$1"
}

# Count of violations attributed to a named invariant in run.invariants.
inv_count() { # inv_count FILE INVARIANT
    python3 -c '
import json, sys
inv = json.load(open(sys.argv[1])).get("run", {}).get("invariants", {})
print(inv.get("per_invariant", {}).get(sys.argv[2], 0))' "$1" "$2"
}

check_invariant() { # check_invariant CANARY INVARIANT ARGS...
    local canary="$1" invariant="$2"
    shift 2
    ARGUS_CANARY="$canary" "$CBIN" campaign "$@" --invariants full --json --quiet \
        > "$WORK/armed.json"
    local hits
    hits="$(inv_count "$WORK/armed.json" "$invariant")"
    if [[ "$hits" -gt 0 ]]; then
        echo "DETECTED  $canary -> invariant '$invariant' ($hits violations)"
    else
        echo "MISSED    $canary: invariant '$invariant' reported 0 violations" >&2
        FAILED+=("$canary")
    fi
}

check_divergence() { # check_divergence CANARY ARGS...
    local canary="$1"
    shift
    "$CBIN" campaign "$@" --json --quiet > "$WORK/clean.json"
    ARGUS_CANARY="$canary" "$CBIN" campaign "$@" --json --quiet > "$WORK/armed.json"
    if [[ "$(payload "$WORK/clean.json")" != "$(payload "$WORK/armed.json")" ]]; then
        echo "DETECTED  $canary -> deterministic report payload diverged"
    else
        echo "MISSED    $canary: report identical to clean run" >&2
        FAILED+=("$canary")
    fi
}

echo "== dormant canary build must match the clean binary exactly =="
"$BIN"  campaign -n 60 --seed 9 --json --quiet > "$WORK/plain.json"
"$CBIN" campaign -n 60 --seed 9 --json --quiet > "$WORK/dormant.json"
if [[ "$(payload "$WORK/plain.json")" != "$(payload "$WORK/dormant.json")" ]]; then
    echo "error: canary build diverges from the clean binary with no canary armed" >&2
    exit 1
fi
echo "dormant canary build is payload-identical to the clean binary"

echo "== checker canaries: named-invariant detection =="
check_invariant canary-shs-stale-table-row  shs-fused-tables-match-reference \
    -n 60 --seed 9
check_invariant canary-cfc-drop-expectation cfc-expectation-armed \
    -n 60 --seed 9
check_invariant canary-watchdog-never-fires watchdog-within-budget \
    -n 60 --seed 9

echo "== checker canaries: campaign-divergence detection =="
# These corrupt signatures that the invariants deliberately do not
# re-derive (that would duplicate the checker); the end-to-end outcome
# distribution is the detector. The (n, seed) pairs are the smallest
# configurations where the stress workload provably exposes each bug.
check_divergence canary-parity-skip-loads   -n 400 --seed 9
check_divergence canary-dcs-skip-last-block -n 500 --seed 123

echo "== orchestrator canaries: ledger-invariant detection =="
# chunk=1 with 4 shards forces work-stealing on every injection.
check_invariant canary-tally-drop-on-steal tally-accounts-done \
    -n 60 --seed 9 --shards 4 --chunk 1

echo "== resume canary: quarantine ledger dropped on checkpoint load =="
# Seed quarantine records via deliberate panics, checkpoint the finished
# run, then resume with the canary armed: the post-load checkpoint audit
# must see a tally that no longer accounts for the done ranges.
CKPT="$WORK/canary.ckpt.json"
"$CBIN" campaign -n 60 --seed 9 --shards 2 --chaos-panic-at 7,23 \
    --checkpoint "$CKPT" --json --quiet > /dev/null
ARGUS_CANARY=canary-quarantine-drop-on-resume "$CBIN" campaign \
    -n 60 --seed 9 --shards 2 --checkpoint "$CKPT" --resume \
    --invariants full --json --quiet > "$WORK/armed.json"
hits="$(inv_count "$WORK/armed.json" tally-accounts-done)"
if [[ "$hits" -gt 0 ]]; then
    echo "DETECTED  canary-quarantine-drop-on-resume -> invariant 'tally-accounts-done' ($hits violations)"
else
    echo "MISSED    canary-quarantine-drop-on-resume: invariant 'tally-accounts-done' reported 0 violations" >&2
    FAILED+=("canary-quarantine-drop-on-resume")
fi

echo "== distributed canary: duplicate completion merged past the dedup gate =="
ARGUS_CANARY=canary-lease-double-complete "$CBIN" serve --addr 127.0.0.1:0 \
    --workers 1 --state-dir "$WORK/state" --lease-ttl-ms 2000 \
    2> "$WORK/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 100); do
    grep -qo 'listening on http://[0-9.]*:[0-9]*' "$WORK/serve.log" && break
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "error: daemon died on startup:" >&2
        cat "$WORK/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
PORT="$(grep -o 'listening on http://[0-9.]*:[0-9]*' "$WORK/serve.log" \
    | head -n1 | sed 's/.*://')"
[[ -n "$PORT" ]] || { echo "error: daemon never reported its address" >&2; exit 1; }
curl -s -X POST "http://127.0.0.1:$PORT/jobs" \
    -d '{"n": 600, "seed": 9, "distributed": true, "budget": 0, "chunk": 16, "invariants": "full"}' \
    > "$WORK/submit.json"
JOB="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["id"])' "$WORK/submit.json")"
# The worker process carries no armed canary: the seeded bug lives in
# the daemon's dedup gate, so a clean worker is the honest configuration.
"$CBIN" worker --connect "127.0.0.1:$PORT" --workers 2 --poll-ms 50 \
    --name canary-w1 > "$WORK/worker.log" 2>&1 &
WORKER_PID=$!
STATE=""
for _ in $(seq 1 600); do
    STATE="$(curl -s "http://127.0.0.1:$PORT/jobs/$JOB" \
        | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')"
    [[ "$STATE" == "done" || "$STATE" == "failed" ]] && break
    sleep 0.2
done
[[ "$STATE" == "done" ]] || { echo "error: distributed job ended '$STATE'" >&2; exit 1; }
curl -s "http://127.0.0.1:$PORT/jobs/$JOB/report" > "$WORK/armed.json"
hits="$(inv_count "$WORK/armed.json" tally-accounts-done)"
if [[ "$hits" -gt 0 ]]; then
    echo "DETECTED  canary-lease-double-complete -> invariant 'tally-accounts-done' ($hits violations)"
else
    echo "MISSED    canary-lease-double-complete: invariant 'tally-accounts-done' reported 0 violations" >&2
    FAILED+=("canary-lease-double-complete")
fi
kill -TERM "$WORKER_PID" 2>/dev/null && wait "$WORKER_PID" 2>/dev/null || true
WORKER_PID=""
kill -TERM "$SERVE_PID" 2>/dev/null && wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

echo
if [[ "${#FAILED[@]}" -gt 0 ]]; then
    echo "FAIL: ${#FAILED[@]} canary(ies) went undetected:" >&2
    printf '  %s\n' "${FAILED[@]}" >&2
    exit 1
fi
echo "PASS: all 8 canaries detected (dormant build payload-identical)"
