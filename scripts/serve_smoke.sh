#!/usr/bin/env bash
# Daemon smoke gate: start `argus serve`, submit two campaigns at
# different priorities over HTTP, SIGKILL the daemon mid-run, restart it
# on the same state dir, and require both jobs to finish with reports
# byte-identical (modulo wall-clock/scheduling metadata under "run") to
# one-shot `argus campaign --json` runs of the same specs. Finishes with
# a SIGTERM drain that must exit 0.
#
# Usage: scripts/serve_smoke.sh [path-to-argus-binary]
set -euo pipefail

BIN="${1:-target/release/argus}"
if [[ ! -x "$BIN" ]]; then
    echo "error: $BIN not found or not executable (cargo build --release first)" >&2
    exit 1
fi

N_BIG=20000
N_SMALL=400
SEED_BIG=4242
SEED_SMALL=99
WORK="$(mktemp -d)"
STATE="$WORK/state"
PORT_FILE="$WORK/port"
SERVE_PID=""
trap '[[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

# Tiny HTTP/JSON helper (python3 stdlib only; the environment is offline).
api() { # api METHOD PATH [BODY]
    python3 - "$(cat "$PORT_FILE")" "$@" <<'EOF'
import http.client, sys
port, method, path = int(sys.argv[1]), sys.argv[2], sys.argv[3]
body = sys.argv[4] if len(sys.argv) > 4 else None
conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
conn.request(method, path, body=body)
resp = conn.getresponse()
payload = resp.read().decode()
print(resp.status)
print(payload)
EOF
}

start_daemon() {
    "$BIN" serve --addr 127.0.0.1:0 --workers 2 --state-dir "$STATE" \
        --checkpoint-interval-ms 100 2> "$WORK/serve.log" &
    SERVE_PID=$!
    # The daemon prints its bound address to stderr; extract the port.
    for _ in $(seq 1 100); do
        if grep -qo 'listening on http://[0-9.]*:[0-9]*' "$WORK/serve.log"; then
            grep -o 'listening on http://[0-9.]*:[0-9]*' "$WORK/serve.log" \
                | head -n1 | sed 's/.*://' > "$PORT_FILE"
            return 0
        fi
        if ! kill -0 "$SERVE_PID" 2>/dev/null; then
            echo "error: daemon died on startup:" >&2
            cat "$WORK/serve.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    echo "error: daemon never reported its address" >&2
    exit 1
}

job_state() { # job_state ID
    api GET "/jobs/$1" | python3 -c 'import json,sys; sys.stdin.readline(); print(json.load(sys.stdin)["state"])'
}

wait_state() { # wait_state ID WANT TRIES
    local id="$1" want="$2" tries="$3" state
    for _ in $(seq 1 "$tries"); do
        state="$(job_state "$id")"
        [[ "$state" == "$want" ]] && return 0
        sleep 0.2
    done
    echo "error: job $id stuck in '$state' waiting for '$want'" >&2
    exit 1
}

echo "== one-shot reference runs =="
"$BIN" campaign -n "$N_BIG" --seed "$SEED_BIG" --shards 2 --json --quiet \
    > "$WORK/ref_big.json"
"$BIN" campaign -n "$N_SMALL" --seed "$SEED_SMALL" --shards 2 --json --quiet \
    > "$WORK/ref_small.json"

echo "== start daemon, submit two campaigns at different priorities =="
start_daemon
out="$(api POST /jobs "{\"n\": $N_BIG, \"seed\": $SEED_BIG, \"priority\": 1}")"
[[ "$(head -n1 <<<"$out")" == 201 ]] || { echo "submit big failed: $out" >&2; exit 1; }
BIG_ID="$(tail -n1 <<<"$out" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')"
out="$(api POST /jobs "{\"n\": $N_SMALL, \"seed\": $SEED_SMALL, \"priority\": 8}")"
[[ "$(head -n1 <<<"$out")" == 201 ]] || { echo "submit small failed: $out" >&2; exit 1; }
SMALL_ID="$(tail -n1 <<<"$out" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')"
echo "submitted big=$BIG_ID (priority 1), small=$SMALL_ID (priority 8)"

echo "== SIGKILL the daemon once the big job is checkpointing =="
wait_state "$BIG_ID" running 150
for _ in $(seq 1 300); do
    [[ -s "$STATE/job-$BIG_ID.ckpt.json" ]] && break
    sleep 0.1
done
[[ -s "$STATE/job-$BIG_ID.ckpt.json" ]] || {
    echo "error: no checkpoint appeared for job $BIG_ID within 30s" >&2; exit 1;
}
sleep 0.2
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
echo "killed daemon pid $SERVE_PID mid-campaign"

echo "== restart on the same state dir; both jobs must finish =="
start_daemon
grep -q "resuming" "$WORK/serve.log" || {
    echo "error: restarted daemon did not report resuming jobs" >&2
    cat "$WORK/serve.log" >&2
    exit 1
}
wait_state "$SMALL_ID" done 600
wait_state "$BIG_ID" done 3000

api GET "/jobs/$BIG_ID/report" | tail -n +2 > "$WORK/got_big.json"
api GET "/jobs/$SMALL_ID/report" | tail -n +2 > "$WORK/got_small.json"

echo "== compare daemon reports against one-shot runs =="
python3 - "$WORK/ref_big.json" "$WORK/got_big.json" \
          "$WORK/ref_small.json" "$WORK/got_small.json" <<'EOF'
import json, sys

def payload(path):
    with open(path) as f:
        doc = json.load(f)
    doc.pop("run", None)  # wall-clock / scheduling / recovery metadata
    return doc

for name, ref_path, got_path in [
    ("big", sys.argv[1], sys.argv[2]),
    ("small", sys.argv[3], sys.argv[4]),
]:
    ref, got = payload(ref_path), payload(got_path)
    if ref != got:
        for key in sorted(set(ref) | set(got)):
            if ref.get(key) != got.get(key):
                print(f"MISMATCH {name}.{key}: one-shot={ref.get(key)!r} daemon={got.get(key)!r}")
        sys.exit(1)
    print(f"{name}: daemon report identical to one-shot run (SIGKILL+resume included)")
EOF

echo "== graceful drain: SIGTERM must checkpoint and exit 0 =="
kill -TERM "$SERVE_PID"
for _ in $(seq 1 100); do
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "error: daemon ignored SIGTERM for 10s" >&2
    exit 1
fi
wait "$SERVE_PID" && RC=0 || RC=$?
[[ "$RC" == 0 ]] || { echo "error: SIGTERM drain exited $RC, want 0" >&2; exit 1; }
SERVE_PID=""

echo "serve_smoke: OK"
