#!/usr/bin/env bash
# Distributed smoke gate: start `argus serve`, submit a remote-only
# distributed campaign, attach three `argus worker` processes over
# loopback, SIGKILL one of them mid-run, and require the finished report
# to be byte-identical (modulo wall-clock/scheduling metadata under
# "run") to a one-shot `argus campaign --json` run of the same spec.
# The surviving workers drain on SIGTERM and must exit 0, as must the
# daemon.
#
# Usage: scripts/distributed_smoke.sh [path-to-argus-binary]
set -euo pipefail

BIN="${1:-target/release/argus}"
if [[ ! -x "$BIN" ]]; then
    echo "error: $BIN not found or not executable (cargo build --release first)" >&2
    exit 1
fi

N=6000
SEED=7171
WORK="$(mktemp -d)"
STATE="$WORK/state"
PORT_FILE="$WORK/port"
SERVE_PID=""
WORKER_PIDS=()
cleanup() {
    [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null
    for pid in "${WORKER_PIDS[@]:-}"; do
        [[ -n "$pid" ]] && kill -9 "$pid" 2>/dev/null
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

# Tiny HTTP/JSON helper (python3 stdlib only; the environment is offline).
api() { # api METHOD PATH [BODY]
    python3 - "$(cat "$PORT_FILE")" "$@" <<'EOF'
import http.client, sys
port, method, path = int(sys.argv[1]), sys.argv[2], sys.argv[3]
body = sys.argv[4] if len(sys.argv) > 4 else None
conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
conn.request(method, path, body=body)
resp = conn.getresponse()
payload = resp.read().decode()
print(resp.status)
print(payload)
EOF
}

job_state() { # job_state ID
    api GET "/jobs/$1" | python3 -c 'import json,sys; sys.stdin.readline(); print(json.load(sys.stdin)["state"])'
}

wait_state() { # wait_state ID WANT TRIES
    local id="$1" want="$2" tries="$3" state
    for _ in $(seq 1 "$tries"); do
        state="$(job_state "$id")"
        [[ "$state" == "$want" ]] && return 0
        if [[ "$state" == "failed" || "$state" == "cancelled" ]]; then
            echo "error: job $id ended '$state' waiting for '$want'" >&2
            exit 1
        fi
        sleep 0.2
    done
    echo "error: job $id stuck in '$state' waiting for '$want'" >&2
    exit 1
}

echo "== one-shot reference run =="
"$BIN" campaign -n "$N" --seed "$SEED" --shards 2 --json --quiet > "$WORK/ref.json"

echo "== start daemon, submit a remote-only distributed campaign =="
# Short lease TTL so the SIGKILLed worker's chunks reissue quickly.
"$BIN" serve --addr 127.0.0.1:0 --workers 1 --state-dir "$STATE" \
    --checkpoint-interval-ms 100 --lease-ttl-ms 1000 2> "$WORK/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 100); do
    if grep -qo 'listening on http://[0-9.]*:[0-9]*' "$WORK/serve.log"; then
        grep -o 'listening on http://[0-9.]*:[0-9]*' "$WORK/serve.log" \
            | head -n1 | sed 's/.*://' > "$PORT_FILE"
        break
    fi
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "error: daemon died on startup:" >&2
        cat "$WORK/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
[[ -s "$PORT_FILE" ]] || { echo "error: daemon never reported its address" >&2; exit 1; }

# budget 0: the daemon contributes no local workers — all progress comes
# over the wire, so killing a worker genuinely threatens the campaign.
out="$(api POST /jobs "{\"n\": $N, \"seed\": $SEED, \"distributed\": true, \"budget\": 0, \"chunk\": 16}")"
[[ "$(head -n1 <<<"$out")" == 201 ]] || { echo "submit failed: $out" >&2; exit 1; }
JOB_ID="$(tail -n1 <<<"$out" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')"
wait_state "$JOB_ID" running 150
echo "submitted distributed job $JOB_ID"

echo "== attach 3 workers over loopback =="
PORT="$(cat "$PORT_FILE")"
for i in 1 2 3; do
    "$BIN" worker --connect "127.0.0.1:$PORT" --workers 1 --poll-ms 100 \
        --name "smoke-w$i" > "$WORK/worker$i.log" 2>&1 &
    WORKER_PIDS[$i]=$!
done

echo "== SIGKILL worker 3 once the campaign is moving =="
for _ in $(seq 1 300); do
    done_count="$(api GET "/jobs/$JOB_ID" | python3 -c '
import json, sys
sys.stdin.readline()
doc = json.load(sys.stdin)
print(doc.get("progress", {}).get("done", 0))')"
    [[ "$done_count" -gt 0 ]] && break
    sleep 0.1
done
[[ "$done_count" -gt 0 ]] || { echo "error: no injection completed within 30s" >&2; exit 1; }
kill -9 "${WORKER_PIDS[3]}"
wait "${WORKER_PIDS[3]}" 2>/dev/null || true
echo "killed worker pid ${WORKER_PIDS[3]} mid-campaign ($done_count injections in)"
WORKER_PIDS[3]=""

echo "== survivors must finish the campaign (expired leases reissue) =="
wait_state "$JOB_ID" done 3000
api GET "/jobs/$JOB_ID/report" | tail -n +2 > "$WORK/got.json"

echo "== compare distributed report against the one-shot run =="
python3 - "$WORK/ref.json" "$WORK/got.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    ref = json.load(f)
with open(sys.argv[2]) as f:
    got = json.load(f)

remote = got.get("run", {}).get("remote", {})
ref.pop("run", None)   # wall-clock / scheduling / recovery metadata
got.pop("run", None)
if ref != got:
    for key in sorted(set(ref) | set(got)):
        if ref.get(key) != got.get(key):
            print(f"MISMATCH {key}: one-shot={ref.get(key)!r} distributed={got.get(key)!r}")
    sys.exit(1)
print("report identical to one-shot run (3 workers, one SIGKILLed)")
if remote.get("workers_seen", 0) < 3:
    print(f"MISMATCH run.remote.workers_seen: want >= 3, got {remote.get('workers_seen')!r}")
    sys.exit(1)
print(f"remote accounting: {remote}")
EOF

echo "== surviving workers drain on SIGTERM and exit 0 =="
for i in 1 2; do
    kill -TERM "${WORKER_PIDS[$i]}"
done
for i in 1 2; do
    wait "${WORKER_PIDS[$i]}" && RC=0 || RC=$?
    [[ "$RC" == 0 ]] || {
        echo "error: worker $i exited $RC on SIGTERM, want 0" >&2
        cat "$WORK/worker$i.log" >&2
        exit 1
    }
    WORKER_PIDS[$i]=""
done

echo "== daemon drains on SIGTERM and exits 0 =="
kill -TERM "$SERVE_PID"
for _ in $(seq 1 100); do
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "error: daemon ignored SIGTERM for 10s" >&2
    exit 1
fi
wait "$SERVE_PID" && RC=0 || RC=$?
[[ "$RC" == 0 ]] || { echo "error: SIGTERM drain exited $RC, want 0" >&2; exit 1; }
SERVE_PID=""

echo "distributed_smoke: OK"
