#!/usr/bin/env bash
# Crash-equivalence gate: SIGKILL a sharded campaign mid-run, resume it
# from its checkpoint, and require the stitched final JSON report to be
# identical (modulo wall-clock and recovery metadata) to a clean
# single-pass run of the same campaign.
#
# Usage: scripts/crash_resume.sh [path-to-argus-binary]
set -euo pipefail

BIN="${1:-target/release/argus}"
if [[ ! -x "$BIN" ]]; then
    echo "error: $BIN not found or not executable (cargo build --release first)" >&2
    exit 1
fi

N=20000
SEED=1337
SHARDS=4
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
CKPT="$WORK/campaign.ckpt.json"

echo "== clean single-pass run =="
"$BIN" campaign -n "$N" --seed "$SEED" --shards "$SHARDS" --json --quiet \
    > "$WORK/clean.json"

echo "== crashy run (SIGKILL once the first checkpoint lands) =="
"$BIN" campaign -n "$N" --seed "$SEED" --shards "$SHARDS" --chunk 8 \
    --checkpoint "$CKPT" --checkpoint-interval-ms 100 --json --quiet \
    > "$WORK/crashed.json" 2>/dev/null &
PID=$!

# Wait for the first periodic flush, give it a little more headway, then
# kill -9 — no signal handler runs, exactly like a crash or power cut.
for _ in $(seq 1 300); do
    [[ -s "$CKPT" ]] && break
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "error: campaign finished before a checkpoint was flushed; raise N" >&2
        exit 1
    fi
    sleep 0.1
done
[[ -s "$CKPT" ]] || { echo "error: no checkpoint appeared within 30s" >&2; exit 1; }
sleep 0.2
if ! kill -9 "$PID" 2>/dev/null; then
    echo "error: campaign finished before it could be killed; raise N" >&2
    exit 1
fi
wait "$PID" 2>/dev/null || true
echo "killed pid $PID with checkpoint at $CKPT"

# Resume under a different worker count and lease size than the crashed
# run: the work-stealing scheduler owes the same report for any number of
# workers, so a checkpoint must be portable across both knobs.
echo "== resume to completion (different shard count) =="
"$BIN" campaign -n "$N" --seed "$SEED" --shards 7 --chunk 3 \
    --checkpoint "$CKPT" --resume --json --quiet \
    > "$WORK/resumed.json"

echo "== compare reports =="
python3 - "$WORK/clean.json" "$WORK/resumed.json" "$N" <<'EOF'
import json, sys

clean_path, resumed_path, n = sys.argv[1], sys.argv[2], int(sys.argv[3])
clean = json.load(open(clean_path))
resumed = json.load(open(resumed_path))

# The resumed run must actually have been interrupted: some injections
# were recovered from the checkpoint rather than re-run.
this_run = resumed["run"]["completed_this_run"]
assert 0 < this_run < n, f"resume did no stitching (completed_this_run={this_run})"
print(f"resume re-ran {this_run}/{n} injections; {n - this_run} came from the checkpoint")

# Everything run-shaped (wall clock, worker/lease/steal accounting,
# recovery metadata) lives under the "run" key and legitimately differs
# between a clean pass and a crash+resume — here even the worker count
# differs on purpose. Every tally outside it must not.
VOLATILE = {"run"}
a = {k: v for k, v in clean.items() if k not in VOLATILE}
b = {k: v for k, v in resumed.items() if k not in VOLATILE}
for key in sorted(set(a) | set(b)):
    if a.get(key) != b.get(key):
        print(f"MISMATCH {key}: clean={a.get(key)!r} resumed={b.get(key)!r}")
        sys.exit(1)
print("crash+resume report is identical to the clean run")

# The invariant registry audited both runs (default sampled mode) and
# must be clean on both sides: a resume that lost or double-counted
# ledger state shows up here as a tally/quarantine violation.
for label, doc in (("clean", clean), ("resumed", resumed)):
    inv = doc["run"]["invariants"]
    assert inv["mode"] == "sampled", f"{label}: invariants mode {inv['mode']!r}, want 'sampled'"
    assert inv["checks_run"] > 0, f"{label}: invariant registry never ran"
    if inv["violations"] != 0:
        print(f"INVARIANT VIOLATIONS in {label} run: {inv['per_invariant']}")
        sys.exit(1)
print("invariant registry clean on both runs "
      f"(clean: {clean['run']['invariants']['checks_run']} checks, "
      f"resumed: {resumed['run']['invariants']['checks_run']} checks)")
EOF

echo "crash_resume: OK"
