//! Offline, vendored mini-criterion.
//!
//! The real `criterion` crate cannot be fetched in this build environment,
//! so this crate provides the subset of its API that the workspace's
//! Criterion benches use: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark runs a short warm-up followed
//! by `sample_size` timed batches and prints the mean time per iteration.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How batched setup output is sized; accepted and ignored (every batch has
/// one setup call per iteration here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Times one benchmark body.
pub struct Bencher {
    iters: u64,
    /// Accumulated measured time, excluding batched setup.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` on fresh state from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Warm-up pass (also lets the closure fault in caches / lazy init).
        let mut warm = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut warm);
        let per_iter = warm.elapsed.max(Duration::from_nanos(1));
        // Aim for ~20ms of measurement per sample, at least one iteration.
        let iters = (Duration::from_millis(20).as_nanos() / per_iter.as_nanos()).max(1) as u64;
        let mut total = Duration::ZERO;
        let mut n = 0u64;
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            total += b.elapsed;
            n += b.iters;
        }
        let mean_ns = total.as_nanos() as f64 / n.max(1) as f64;
        println!("{name:40} {:>12.1} ns/iter ({n} iters)", mean_ns);
        self
    }
}

/// Declares a benchmark group; mirrors criterion's two accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_nothing(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1u32 + 1)));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn runs_to_completion() {
        let mut c = Criterion::default().sample_size(2);
        bench_nothing(&mut c);
    }

    criterion_group!(smoke, bench_nothing);

    #[test]
    fn group_macro_expands() {
        smoke();
    }
}
