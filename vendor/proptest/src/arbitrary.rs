//! `any::<T>()` for the primitive types the workspace tests use.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_signs_and_bools() {
        let mut rng = TestRng::new(3);
        let mut neg = false;
        let mut pos = false;
        let (mut t, mut f) = (false, false);
        for _ in 0..500 {
            let x: i16 = any::<i16>().sample(&mut rng);
            neg |= x < 0;
            pos |= x > 0;
            if any::<bool>().sample(&mut rng) {
                t = true;
            } else {
                f = true;
            }
        }
        assert!(neg && pos && t && f);
    }
}
