//! Offline, vendored mini-proptest.
//!
//! The build environment for this workspace has no network access, so the
//! real `proptest` crate cannot be fetched. This crate implements the small
//! subset of its API that the workspace's property tests use, with the same
//! spelling, so the test code is unchanged:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`], [`prop_oneof!`],
//! * `any::<T>()`, integer-range strategies, tuple strategies, [`Just`],
//!   `prop::collection::vec`, and `Strategy::prop_map`.
//!
//! Differences from real proptest: generation is a fixed deterministic
//! SplitMix64 stream seeded per test (reproducible across runs and
//! platforms), there is no shrinking, and no failure persistence file.

pub mod arbitrary;
pub mod collection;
pub mod rng;
pub mod strategy;
pub mod test_runner;

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}
