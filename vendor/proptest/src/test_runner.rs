//! Config, case errors, and the `proptest!` / `prop_assert*` macros.

use std::fmt;

/// Runner configuration (only the knobs the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config requiring `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why one generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// An input rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Reject(m) => write!(f, "rejected: {m}"),
            Self::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that draws inputs from the strategies until the
/// configured number of cases passes (rejections via `prop_assume!` are
/// re-drawn, with a bounded retry budget).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::rng::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let budget = config.cases.saturating_mul(16).max(64);
                while passed < config.cases && attempts < budget {
                    attempts += 1;
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            ::std::panic!(
                                "proptest `{}` failed at case {}: {}",
                                stringify!($name), attempts, msg
                            );
                        }
                    }
                }
                ::std::assert!(
                    passed >= config.cases,
                    "proptest `{}`: only {}/{} cases passed within {} attempts (over-rejection)",
                    stringify!($name), passed, config.cases, budget
                );
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            l, r, ::std::format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} == {:?}: {}",
            l, r, ::std::format!($($fmt)+)
        );
    }};
}

/// Rejects the current case (re-drawn, not a failure) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn assume_redraws(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "failed at case")]
        fn failing_property_panics(x in 0u32..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }
}
