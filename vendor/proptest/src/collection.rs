//! Collection strategies (`prop::collection::vec`).

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Admissible element counts for [`vec`]: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self { min: r.start, max: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self { min: *r.start(), max: *r.end() + 1 }
    }
}

/// Strategy for `Vec<T>` with element strategy `S`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let n = self.size.min + if span <= 1 { 0 } else { rng.below(span) as usize };
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)`: vectors whose length is drawn
/// from `size` and whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn fixed_and_ranged_sizes() {
        let mut rng = TestRng::new(17);
        for _ in 0..100 {
            assert_eq!(vec(any::<u16>(), 4).sample(&mut rng).len(), 4);
            let n = vec(any::<u8>(), 1..30).sample(&mut rng).len();
            assert!((1..30).contains(&n));
        }
    }
}
