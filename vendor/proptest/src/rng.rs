//! Deterministic generator behind every strategy: SplitMix64.

/// A tiny deterministic PRNG (SplitMix64). Each `proptest!` test derives one
/// from a hash of its own name, so runs are reproducible everywhere.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Seeds a generator from an arbitrary string (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_name_sensitive() {
        assert_eq!(TestRng::new(1).next_u64(), TestRng::new(1).next_u64());
        assert_ne!(TestRng::from_name("a").next_u64(), TestRng::from_name("b").next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut r = TestRng::new(9);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
