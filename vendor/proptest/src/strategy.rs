//! The `Strategy` trait and the combinators the workspace uses.

use crate::rng::TestRng;

/// A generator of values of one type. Unlike real proptest there is no
/// intermediate value tree and no shrinking: a strategy just samples.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { sample: Box::new(move |rng| self.sample(rng)) }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `Strategy::prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    sample: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct OneOf<T> {
    /// The alternatives; must be non-empty.
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Uniform choice among strategy alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf {
            arms: vec![$($crate::strategy::Strategy::boxed($strat)),+],
        }
    };
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + off as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as i128 - self.start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(5);
        for _ in 0..2000 {
            let x = (3u8..16).sample(&mut rng);
            assert!((3..16).contains(&x));
            let y = (-(1i32 << 25)..(1i32 << 25)).sample(&mut rng);
            assert!((-(1i32 << 25)..(1i32 << 25)).contains(&y));
            let z = (1u32..).sample(&mut rng);
            assert!(z >= 1);
        }
    }

    #[test]
    fn map_and_just() {
        let mut rng = TestRng::new(1);
        let s = Just(21u32).prop_map(|x| x * 2);
        assert_eq!(s.sample(&mut rng), 42);
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::new(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::new(2);
        let (a, b, c, d) = (0u8..8, 3u8..8, 3u8..8, 3u8..8).sample(&mut rng);
        assert!(a < 8 && (3..8).contains(&b) && (3..8).contains(&c) && (3..8).contains(&d));
    }
}
