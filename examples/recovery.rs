//! The full Argus story: detect with the checkers, recover with
//! checkpoints. Runs a self-checking workload under a transient ALU fault
//! and shows the rollback outrunning it, then under a permanent fault and
//! shows recovery escalating to "unrecoverable".
//!
//! ```sh
//! cargo run --release -p argus-suite --example recovery
//! ```

use argus_core::recovery::{run_with_recovery, RecoveryConfig, RecoveryOutcome};
use argus_suite::prelude::*;

fn scenario(kind: FaultKind) {
    let w = stress();
    let prog = compile(&w.unit, Mode::Argus, &EmbedConfig::default()).unwrap();
    let mut m = Machine::new(MachineConfig::default());
    prog.load(&mut m);
    let mut inj = FaultInjector::with_fault(Fault {
        site: argus_machine::sites::ALU_ADDER_OUT,
        bit: 9,
        kind,
        arm_cycle: 2_000,
        flavor: SiteFlavor::Single,
        width: 32,
        sensitization: 1.0,
    });
    let (m, out) = run_with_recovery(
        m,
        ArgusConfig::default(),
        prog.entry_dcs.unwrap(),
        &mut inj,
        RecoveryConfig { checkpoint_interval: 128, ..Default::default() },
    );
    println!("{kind:?} ALU fault → {out:?}");
    match out {
        RecoveryOutcome::Completed { .. } => match w.check(&m) {
            Ok(()) => println!("  workload self-check PASSED after recovery\n"),
            Err(e) => println!("  workload self-check failed: {e}\n"),
        },
        _ => println!("  (a real system would now reconfigure or decommission the core)\n"),
    }
}

fn main() {
    println!("checkpoint/rollback recovery on the stress workload\n");
    scenario(FaultKind::Transient);
    scenario(FaultKind::Permanent);
}
