//! Runs a small §4.1-style error-injection campaign on the stress-test
//! microbenchmark and prints the Table-1 quadrants, detection attribution,
//! and detection-latency summary.
//!
//! ```sh
//! cargo run --release -p argus-suite --example fault_injection -- 1000
//! ```

use argus_faults::latency::LatencyReport;
use argus_suite::prelude::*;

fn main() {
    let injections: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(800);
    println!("running 2 × {injections} injections on the stress microbenchmark…\n");
    for kind in [FaultKind::Transient, FaultKind::Permanent] {
        let rep =
            run_campaign(&stress(), &CampaignConfig { injections, kind, ..Default::default() });
        println!("{rep}");
        println!("{}", LatencyReport::from_campaign(&rep).summary());
    }
}
