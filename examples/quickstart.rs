//! Quickstart: write a program, compile it with signature embedding, run
//! it under the full Argus-1 checker, then inject a fault and watch the
//! checker catch it.
//!
//! ```sh
//! cargo run --release -p argus-suite --example quickstart
//! ```

use argus_suite::prelude::*;

fn main() {
    // 1. Write a small program with the macro-assembler: sum 1..=100.
    let mut b = ProgramBuilder::new();
    b.li(Reg::new(3), 0); // sum
    b.li(Reg::new(4), 1); // i
    b.li(Reg::new(5), 100); // bound
    b.label("loop");
    b.add(Reg::new(3), Reg::new(3), Reg::new(4));
    b.addi(Reg::new(4), Reg::new(4), 1);
    b.sf(Cond::Leu, Reg::new(4), Reg::new(5));
    b.bf("loop");
    b.nop();
    b.halt();
    let unit = b.unit();

    // 2. Compile twice: a plain baseline binary and an Argus-1 binary with
    //    DCSs embedded in unused instruction bits / Signature instructions.
    let ecfg = EmbedConfig::default();
    let base = compile(&unit, Mode::Baseline, &ecfg).expect("baseline compiles");
    let argus_prog = compile(&unit, Mode::Argus, &ecfg).expect("argus compiles");
    println!(
        "static instructions: baseline {}, argus {} (+{} signature words)",
        base.stats.static_instrs, argus_prog.stats.static_instrs, argus_prog.stats.sig_instrs
    );

    // 3. Run the protected binary under the checker — no faults, no alarms.
    let mut m = Machine::new(MachineConfig::default());
    argus_prog.load(&mut m);
    let mut checker = Argus::new(ArgusConfig::default());
    checker.expect_entry(argus_prog.entry_dcs.unwrap());
    let mut inj = FaultInjector::none();
    loop {
        match m.step(&mut inj) {
            StepOutcome::Committed(rec) => {
                checker.on_commit(&rec, &mut inj);
            }
            StepOutcome::Stalled => {
                checker.on_stall(1, &mut inj);
            }
            StepOutcome::Halted => break,
        }
    }
    println!(
        "clean run: sum = {}, {} cycles, detections: {}",
        m.reg(Reg::new(3)),
        m.cycle(),
        checker.events().len()
    );
    assert_eq!(m.reg(Reg::new(3)), 5050);
    assert!(checker.events().is_empty());

    // 4. Same program, but with a permanent fault inside the ALU adder.
    let mut m = Machine::new(MachineConfig::default());
    argus_prog.load(&mut m);
    let mut checker = Argus::new(ArgusConfig::default());
    checker.expect_entry(argus_prog.entry_dcs.unwrap());
    let mut inj = FaultInjector::with_fault(Fault {
        site: argus_machine::sites::ALU_ADDER_OUT,
        bit: 4,
        kind: FaultKind::Permanent,
        arm_cycle: 50,
        flavor: SiteFlavor::Single,
        width: 32,
        sensitization: 1.0,
    });
    let detection = loop {
        match m.step(&mut inj) {
            StepOutcome::Committed(rec) => {
                if let Some(ev) = checker.on_commit(&rec, &mut inj).into_iter().next() {
                    break Some(ev);
                }
            }
            StepOutcome::Stalled => {
                checker.on_stall(1, &mut inj);
            }
            StepOutcome::Halted => break None,
        }
    };
    let ev = detection.expect("the computation checker must fire");
    println!("injected ALU fault detected: {ev}");
    assert_eq!(ev.checker, CheckerKind::Computation);
}
