//! A guided tour of the signature machinery: how SHSs evolve, how the DCS
//! is folded and embedded, and what the compiled code actually looks like.
//!
//! ```sh
//! cargo run --release -p argus-suite --example signature_tour
//! ```

use argus_core::dcs::DcsUnit;
use argus_core::shs::{ShsEngine, ShsFile};
use argus_isa::decode::decode;
use argus_isa::encode::unused_bit_positions;
use argus_suite::prelude::*;

fn main() {
    // --- SHS evolution over one basic block ------------------------------
    let engine = ShsEngine::new(5);
    let dcs = DcsUnit::new(5);
    let mut file = ShsFile::new(5);
    let block = [
        Instr::Alu { op: AluOp::Add, rd: Reg::new(1), ra: Reg::new(2), rb: Reg::new(3) },
        Instr::Alu { op: AluOp::Sub, rd: Reg::new(4), ra: Reg::new(1), rb: Reg::new(2) },
    ];
    println!("SHS evolution (5-bit signatures, CRC5 + substitution):");
    for i in &block {
        engine.apply_static(&mut file, i);
        println!(
            "  after `{i}`: SHS(r1)={:2} SHS(r4)={:2}",
            file.reg(Reg::new(1)),
            file.reg(Reg::new(4))
        );
    }
    println!("  block DCS = {:#04x}\n", dcs.compute(&file));

    // --- the compiled image: where the bits hide -------------------------
    let mut b = ProgramBuilder::new();
    b.add(Reg::new(1), Reg::new(2), Reg::new(3));
    b.sub(Reg::new(4), Reg::new(1), Reg::new(2));
    b.label("next");
    b.addi(Reg::new(5), Reg::new(4), 7);
    b.halt();
    let prog = compile(&b.unit(), Mode::Argus, &EmbedConfig::default()).unwrap();
    println!("compiled Argus image ({} words):", prog.code.len());
    for (k, &w) in prog.code.iter().enumerate() {
        let i = decode(w);
        let unused = unused_bit_positions(w);
        let embedded: String =
            unused.iter().map(|&p| if (w >> p) & 1 == 1 { '1' } else { '0' }).collect();
        println!(
            "  {:#06x}: {w:#010x}  {:24} unused bits [{}]",
            prog.code_base + 4 * k as u32,
            i.to_string(),
            embedded
        );
    }
    println!(
        "\nentry DCS (what the loader's indirect jump would carry): {:#04x}",
        prog.entry_dcs.unwrap()
    );
}
