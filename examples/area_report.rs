//! Prints the Table-2 area comparison and the Argus-1 block-by-block
//! inventory from the analytical area model.
//!
//! ```sh
//! cargo run --release -p argus-suite --example area_report
//! ```

use argus_area::core_model::{argus_additions, baseline_core, total_gates, ArgusParams};

fn main() {
    println!("{}", argus_area::table2());

    println!("baseline core inventory:");
    for c in baseline_core() {
        println!("  {:28} {:>7.0} gates", c.name, c.gates);
    }
    println!("  {:28} {:>7.0} gates\n", "TOTAL", total_gates(&baseline_core()));

    println!("Argus-1 additions (w=5, M=31):");
    let adds = argus_additions(ArgusParams::default());
    for c in &adds {
        println!("  {:28} {:>7.0} gates", c.name, c.gates);
    }
    println!("  {:28} {:>7.0} gates", "TOTAL", total_gates(&adds));
}
