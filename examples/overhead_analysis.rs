//! Measures the performance cost of signature embedding on the whole
//! MediaBench-like suite (the data behind Figures 5–7) for one cache
//! configuration.
//!
//! ```sh
//! cargo run --release -p argus-suite --example overhead_analysis -- 2
//! ```

use argus_bench::{mean_of, measure_suite};

fn main() {
    let ways: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    println!("8KB {ways}-way caches; all runs self-checked in both modes\n");
    println!(
        "{:12} {:>8} {:>8} {:>9} {:>9} {:>9}",
        "benchmark", "static%", "dynamic%", "runtime%", "base cyc", "argus cyc"
    );
    let rows = measure_suite(ways);
    for r in &rows {
        println!(
            "{:12} {:>7.2}% {:>7.2}% {:>8.2}% {:>9} {:>9}",
            r.name,
            r.static_pct(),
            r.dynamic_pct(),
            r.runtime_pct(),
            r.cycles_base,
            r.cycles_argus
        );
    }
    println!(
        "{:12} {:>7.2}% {:>7.2}% {:>8.2}%",
        "mean",
        mean_of(&rows, |r| r.static_pct()),
        mean_of(&rows, |r| r.dynamic_pct()),
        mean_of(&rows, |r| r.runtime_pct()),
    );
    println!("\npaper: static ≈7%, dynamic ≈3.5%, runtime ≈3.9% (1-way) / 3.2% (2-way)");
}
